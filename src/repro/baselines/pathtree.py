"""A DataGuide-style path tree baseline [5, 7].

The path tree is the trie of all root-to-node label paths; each trie node
stores the number of document elements whose path type it is.  Chain
queries are answered exactly (match the chain against the trie and sum the
counts of the target positions); branch predicates degrade to *schema
existence* — a trie node passes a predicate when the trie, not necessarily
every instance, contains the branch — which is exactly the over-estimation
the paper's Equation 2 was designed to beat.

Implementation note: the trie is materialized as an
:class:`~repro.xmltree.document.XmlDocument`, which lets the exact pattern
matcher in :mod:`repro.xpath.evaluator` double as the trie matcher.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.transform import UnsupportedQueryError
from repro.xmltree.document import XmlDocument
from repro.xmltree.node import XmlNode
from repro.xpath.ast import Query
from repro.xpath.evaluator import Evaluator

NODE_BYTES = 8  # label ref + count + child pointer amortized


class PathTree:
    """Trie of root-to-node label paths with per-node element counts."""

    def __init__(self, trie_document: XmlDocument, counts: List[int]):
        self._trie = trie_document
        self._counts = counts
        self._matcher = Evaluator(trie_document)

    @classmethod
    def build(cls, document: XmlDocument) -> "PathTree":
        trie_root = XmlNode(document.root.tag)
        # element pre -> its trie node; counts keyed later by trie pre.
        trie_of: List[XmlNode] = [trie_root] * len(document)
        raw_counts: Dict[int, int] = {}

        def bump(trie_node: XmlNode) -> None:
            raw_counts[id(trie_node)] = raw_counts.get(id(trie_node), 0) + 1

        bump(trie_root)
        child_index: Dict[int, Dict[str, XmlNode]] = {id(trie_root): {}}
        for node in document:
            if node.parent is None:
                continue
            parent_trie = trie_of[node.parent.pre]
            children = child_index[id(parent_trie)]
            trie_node = children.get(node.tag)
            if trie_node is None:
                trie_node = parent_trie.append(XmlNode(node.tag))
                children[node.tag] = trie_node
                child_index[id(trie_node)] = {}
            trie_of[node.pre] = trie_node
            bump(trie_node)
        trie_document = XmlDocument(trie_root, name="pathtree")
        counts = [0] * len(trie_document)
        for trie_node in trie_document:
            counts[trie_node.pre] = raw_counts[id(trie_node)]
        return cls(trie_document, counts)

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Number of trie nodes (distinct root-to-node path types)."""
        return len(self._trie)

    def size_bytes(self) -> int:
        return len(self._trie) * NODE_BYTES

    def count_at(self, label_path: str) -> int:
        """Element count of one exact path type, e.g. ``"Root/A/B"``."""
        labels = label_path.split("/")
        node = self._trie.root
        if node.tag != labels[0]:
            return 0
        for label in labels[1:]:
            node = next((c for c in node.children if c.tag == label), None)
            if node is None:
                return 0
        return self._counts[node.pre]

    def estimate(self, query: Query) -> float:
        """Sum of counts over trie nodes matching the target position."""
        if query.has_order_axes():
            raise UnsupportedQueryError("the path tree does not cover order axes")
        pres = self._matcher.matching_pres(query, query.target)
        return float(sum(self._counts[pre] for pre in pres))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<PathTree %d nodes>" % len(self._trie)
