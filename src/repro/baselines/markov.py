"""Order-k Markov path statistics baseline [5, 11].

Stores the frequencies of every label path of length ≤ k (child steps) and
exact ancestor-descendant label-pair counts, then estimates chain queries
by stitching overlapping path fragments with the Markov assumption::

    f(a/b/c/d)  ≈  f(a/b/c) * f(b/c/d) / f(b/c)          (k = 3)

Descendant steps use the ancestor-descendant pair table; branch predicates
multiply capped expected-count factors (independence).  This is the family
the paper cites as prior work limited to simple paths — included here as a
second comparison point for the ablation benchmarks.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.transform import UnsupportedQueryError
from repro.xmltree.document import XmlDocument
from repro.xpath.ast import Query, QueryAxis, QueryNode

PATH_ENTRY_BYTES = 6  # label refs amortized + count
PAIR_ENTRY_BYTES = 8


class MarkovPathModel:
    """Markov path statistics of order ``k`` plus descendant pair counts."""

    def __init__(
        self,
        order: int,
        path_counts: Dict[Tuple[str, ...], int],
        descendant_counts: Dict[Tuple[str, str], int],
        tag_counts: Dict[str, int],
    ):
        if order < 1:
            raise ValueError("Markov order must be >= 1")
        self.order = order
        self.path_counts = path_counts
        self.descendant_counts = descendant_counts
        self.tag_counts = tag_counts

    @classmethod
    def build(cls, document: XmlDocument, order: int = 2) -> "MarkovPathModel":
        path_counts: Dict[Tuple[str, ...], int] = {}
        descendant_counts: Dict[Tuple[str, str], int] = {}
        tag_counts: Dict[str, int] = {}
        chains: List[Tuple[str, ...]] = [()] * len(document)
        for node in document:
            tag_counts[node.tag] = tag_counts.get(node.tag, 0) + 1
            parent_chain = chains[node.parent.pre] if node.parent is not None else ()
            # Keep only the last (order-1) ancestors: enough for length-k paths.
            chain = (parent_chain + (node.tag,))[-order:]
            chains[node.pre] = chain
            for length in range(1, len(chain) + 1):
                fragment = chain[-length:]
                path_counts[fragment] = path_counts.get(fragment, 0) + 1
            seen = set()
            ancestor = node.parent
            while ancestor is not None:
                pair = (ancestor.tag, node.tag)
                if pair not in seen:
                    seen.add(pair)
                    descendant_counts[pair] = descendant_counts.get(pair, 0) + 1
                ancestor = ancestor.parent
        return cls(order, path_counts, descendant_counts, tag_counts)

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------

    def size_bytes(self) -> int:
        return (
            len(self.path_counts) * PATH_ENTRY_BYTES
            + len(self.descendant_counts) * PAIR_ENTRY_BYTES
        )

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------

    def estimate(self, query: Query) -> float:
        if query.has_order_axes():
            raise UnsupportedQueryError("the Markov model does not cover order axes")
        spine = query.spine_to(query.target)
        estimate = self._chain_estimate(query, spine)
        for node in spine:
            for edge in node.edges:
                if edge.node in spine:
                    continue
                estimate *= self._branch_factor(node.tag, edge.axis, edge.node)
        return estimate

    def _chain_estimate(self, query: Query, spine: List[QueryNode]) -> float:
        """Markov-stitched estimate of the spine chain's end count."""
        count = float(self.tag_counts.get(spine[0].tag, 0))
        run: Tuple[str, ...] = (spine[0].tag,)
        for child in spine[1:]:
            link = query.parent_link(child)
            assert link is not None
            axis = link[0]
            if axis is QueryAxis.CHILD:
                extended = (run + (child.tag,))[-self.order:]
                prefix = extended[:-1]
                prefix_count = self.path_counts.get(prefix, 0)
                if prefix_count <= 0:
                    return 0.0
                count *= self.path_counts.get(extended, 0) / prefix_count
                run = extended
            else:  # descendant: fall back to the label-pair table
                upper = run[-1]
                upper_count = self.tag_counts.get(upper, 0)
                if upper_count <= 0:
                    return 0.0
                # Expected descendants tagged child.tag per upper element.
                pair = self.descendant_counts.get((upper, child.tag), 0)
                count *= pair / upper_count
                run = (child.tag,)
            if count <= 0:
                return 0.0
        return count

    def _branch_factor(self, context_tag: str, axis: QueryAxis, branch: QueryNode) -> float:
        """Capped expected-count factor of one branch predicate."""
        context_count = self.tag_counts.get(context_tag, 0)
        if context_count <= 0:
            return 0.0
        run = (context_tag,)
        expected = float(context_count)
        node = branch
        while True:
            if axis is QueryAxis.CHILD:
                extended = (run + (node.tag,))[-self.order:]
                prefix_count = self.path_counts.get(extended[:-1], 0)
                if prefix_count <= 0:
                    return 0.0
                expected *= self.path_counts.get(extended, 0) / prefix_count
                run = extended
            else:
                upper = run[-1]
                upper_count = self.tag_counts.get(upper, 0)
                if upper_count <= 0:
                    return 0.0
                expected *= self.descendant_counts.get((upper, node.tag), 0) / upper_count
                run = (node.tag,)
            for predicate in node.predicate_edges():
                expected *= self._branch_factor(node.tag, predicate.axis, predicate.node)
            inline = node.inline_edge()
            if inline is None:
                break
            axis = inline.axis
            node = inline.node
        return min(1.0, expected / context_count)
