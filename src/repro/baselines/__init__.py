"""Baseline estimators the paper compares against (or that inform ablations).

* :class:`~repro.baselines.xsketch.XSketch` — a graph-synopsis estimator in
  the spirit of Polyzotis & Garofalakis [12]: label-split summary graph,
  greedy context refinement under a byte budget, independence-based
  traversal estimation.  This is the paper's comparison baseline
  (Table 4, Figure 11).
* :class:`~repro.baselines.markov.MarkovPathModel` — order-k Markov path
  statistics after McHugh & Widom [11] / Aboulnaga et al. [5].
* :class:`~repro.baselines.pathtree.PathTree` — a DataGuide-style path tree
  with per-node counts [5, 7]; exact on simple queries, schema-existence
  approximation on branches.
* :class:`~repro.baselines.position.PositionHistogram` — the interval
  position histograms of [16], with their documented inability to
  distinguish parent-child from ancestor-descendant.
"""

from repro.baselines.markov import MarkovPathModel
from repro.baselines.position import PositionHistogram
from repro.baselines.pathtree import PathTree
from repro.baselines.xsketch import XSketch

__all__ = ["XSketch", "MarkovPathModel", "PathTree", "PositionHistogram"]
