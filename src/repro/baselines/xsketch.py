"""An XSketch-style graph synopsis baseline [12].

XSketch summarizes an XML document as a graph whose nodes are clusters of
elements and whose edges carry parent-child counts, refined greedily under
a memory budget.  Our implementation keeps the family's essential
mechanics (and its characteristic cost profile, which Table 4 contrasts
with the p-histogram):

* clusters are *label-context* equivalence classes: each cluster is keyed
  by the element's own tag plus a per-cluster number of ancestor tags
  (depth-0 = plain label-split graph);
* greedy refinement repeatedly splits the cluster whose elements disagree
  most about their parent clusters (the backward-stability violation that
  drives estimation error), until the byte budget is reached;
* estimation propagates expected match counts along synopsis edges under
  uniformity/independence assumptions: backward-conditional products for
  child steps, bounded closure for descendant steps, and capped
  expected-count factors for branch predicates.

Order axes are outside XSketch's model, as in the paper — the comparison
(Figure 11) runs on the no-order workload only.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.transform import UnsupportedQueryError
from repro.xmltree.document import XmlDocument
from repro.xpath.ast import Query, QueryAxis, QueryNode

NODE_BYTES = 8   # label ref + count
EDGE_BYTES = 8   # two cluster refs + count

ClusterKey = Tuple[str, ...]  # (tag, parent tag, grandparent tag, ...)


class XSketch:
    """A budgeted graph synopsis with greedy context refinement."""

    def __init__(
        self,
        counts: Dict[ClusterKey, int],
        edges: Dict[Tuple[ClusterKey, ClusterKey], int],
        root_key: ClusterKey,
        max_depth: int,
        rounds: int,
    ):
        self.counts = counts
        self.edges = edges
        self.root_key = root_key
        self.max_depth = max_depth
        self.construction_rounds = rounds
        # label -> clusters with that label (fast filtering)
        self._by_label: Dict[str, List[ClusterKey]] = {}
        for key in counts:
            self._by_label.setdefault(key[0], []).append(key)
        # children adjacency for the traversal
        self._children: Dict[ClusterKey, List[Tuple[ClusterKey, int]]] = {}
        for (parent, child), count in edges.items():
            self._children.setdefault(parent, []).append((child, count))

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        document: XmlDocument,
        budget_bytes: int,
        max_rounds: int = 10_000,
    ) -> "XSketch":
        """Greedy refinement until the synopsis reaches ``budget_bytes``."""
        nodes = list(document)
        # Ancestor label chains, self-first.
        chains: List[Tuple[str, ...]] = [()] * len(nodes)
        for node in nodes:
            if node.parent is None:
                chains[node.pre] = (node.tag,)
            else:
                chains[node.pre] = (node.tag,) + chains[node.parent.pre]
        # Per-cluster member lists; every cluster starts at context depth 1.
        members: Dict[ClusterKey, List[int]] = {}
        assignment: List[ClusterKey] = [()] * len(nodes)
        for node in nodes:
            key = chains[node.pre][:1]
            assignment[node.pre] = key
            members.setdefault(key, []).append(node.pre)

        rounds = 0
        while rounds < max_rounds:
            rounds += 1
            size = cls._size_of(members, assignment, nodes)
            if size >= budget_bytes:
                break
            target = cls._most_unstable(members, assignment, nodes, chains)
            if target is None:
                break
            # Split the cluster by one more ancestor label.
            depth = len(target) + 1
            for pre in members.pop(target):
                key = chains[pre][:depth]
                assignment[pre] = key
                members.setdefault(key, []).append(pre)

        counts = {key: len(pres) for key, pres in members.items()}
        edges: Dict[Tuple[ClusterKey, ClusterKey], int] = {}
        for node in nodes:
            if node.parent is None:
                continue
            pair = (assignment[node.parent.pre], assignment[node.pre])
            edges[pair] = edges.get(pair, 0) + 1
        return cls(
            counts,
            edges,
            assignment[document.root.pre],
            document.max_depth(),
            rounds,
        )

    @staticmethod
    def _size_of(members, assignment, nodes) -> int:
        edge_pairs = set()
        for node in nodes:
            if node.parent is not None:
                edge_pairs.add((assignment[node.parent.pre], assignment[node.pre]))
        return len(members) * NODE_BYTES + len(edge_pairs) * EDGE_BYTES

    @staticmethod
    def _most_unstable(members, assignment, nodes, chains) -> Optional[ClusterKey]:
        """The splittable cluster with the worst parent-cluster disagreement."""
        best_key = None
        best_score = 0
        for key, pres in members.items():
            if len(pres) < 2:
                continue
            # Splittable only if some member has a longer chain.
            depth = len(key)
            parent_keys = set()
            extendable = False
            for pre in pres:
                chain = chains[pre]
                if len(chain) > depth:
                    extendable = True
                node = nodes[pre]
                if node.parent is not None:
                    parent_keys.add(assignment[node.parent.pre])
            if not extendable or len(parent_keys) < 2:
                continue
            score = (len(parent_keys) - 1) * len(pres)
            if score > best_score:
                best_score = score
                best_key = key
        return best_key

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------

    def size_bytes(self) -> int:
        return len(self.counts) * NODE_BYTES + len(self.edges) * EDGE_BYTES

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------

    def estimate(self, query: Query) -> float:
        """Estimate the target selectivity of a no-order query."""
        if query.has_order_axes():
            raise UnsupportedQueryError("XSketch does not model order axes")
        spine = query.spine_to(query.target)
        weights = self._initial_weights(query)
        weights = self._apply_branches(weights, query, spine[0], spine)
        for parent, child in zip(spine, spine[1:]):
            link = query.parent_link(child)
            assert link is not None
            weights = self._step(weights, link[0], child.tag)
            weights = self._apply_branches(weights, query, child, spine)
            if not weights:
                return 0.0
        return sum(weights.values())

    def _initial_weights(self, query: Query) -> Dict[ClusterKey, float]:
        root_tag = query.root.tag
        if query.root_axis is QueryAxis.CHILD:
            if self.root_key[0] != root_tag:
                return {}
            # The document root lives in this cluster; assume one root.
            return {self.root_key: 1.0}
        return {
            key: float(self.counts[key]) for key in self._by_label.get(root_tag, ())
        }

    def _step(
        self, weights: Dict[ClusterKey, float], axis: QueryAxis, tag: str
    ) -> Dict[ClusterKey, float]:
        """Propagate expected match counts across one structural step."""
        if axis is QueryAxis.CHILD:
            reached = self._child_step(weights)
        else:
            reached = self._descendant_step(weights)
        return {key: w for key, w in reached.items() if key[0] == tag and w > 0}

    def _child_step(self, weights: Dict[ClusterKey, float]) -> Dict[ClusterKey, float]:
        out: Dict[ClusterKey, float] = {}
        for key, weight in weights.items():
            total = self.counts[key]
            if total <= 0:
                continue
            fraction = weight / total
            for child, count in self._children.get(key, ()):
                out[child] = out.get(child, 0.0) + count * fraction
        return out

    def _descendant_step(self, weights: Dict[ClusterKey, float]) -> Dict[ClusterKey, float]:
        """Bounded closure over child edges (cycles cut by document depth)."""
        out: Dict[ClusterKey, float] = {}
        frontier = dict(weights)
        for _ in range(self.max_depth):
            frontier = self._child_step(frontier)
            if not frontier:
                break
            for key, weight in frontier.items():
                out[key] = out.get(key, 0.0) + weight
            # Cap runaway expectation through synopsis cycles.
            frontier = {
                key: min(weight, float(self.counts[key])) for key, weight in frontier.items()
            }
        return out

    def _apply_branches(
        self,
        weights: Dict[ClusterKey, float],
        query: Query,
        node: QueryNode,
        spine: List[QueryNode],
    ) -> Dict[ClusterKey, float]:
        """Scale weights by the probability that branch predicates match."""
        spine_ids = {n.node_id for n in spine}
        for edge in node.edges:
            if edge.node.node_id in spine_ids:
                continue
            factored: Dict[ClusterKey, float] = {}
            for key, weight in weights.items():
                expected = self._branch_expectation(key, edge.axis, edge.node)
                probability = min(1.0, expected)
                if probability > 0:
                    factored[key] = weight * probability
            weights = factored
        return weights

    def _branch_expectation(
        self, key: ClusterKey, axis: QueryAxis, branch: QueryNode
    ) -> float:
        """Expected number of branch-chain matches per element of ``key``."""
        weights = self._step({key: 1.0}, axis, branch.tag)
        node = branch
        while weights:
            for predicate in node.predicate_edges():
                weights = {
                    k: w
                    * min(1.0, self._branch_expectation(k, predicate.axis, predicate.node))
                    for k, w in weights.items()
                }
            inline = node.inline_edge()
            if inline is None:
                break
            weights = self._step(weights, inline.axis, inline.node.tag)
            node = inline.node
        return sum(weights.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<XSketch %d clusters, %d edges, %d bytes>" % (
            len(self.counts),
            len(self.edges),
            self.size_bytes(),
        )
