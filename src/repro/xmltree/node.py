"""Ordered element-tree node model.

The estimation system views an XML document as an *ordered tree of element
nodes*: sibling order is significant (it drives the order-axis statistics)
and text content is carried along but never queried.  Nodes are cheap,
slotted objects because the dataset generators create hundreds of thousands
of them.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional


class XmlNode:
    """A single element node in an ordered XML tree.

    Attributes
    ----------
    tag:
        The element name, e.g. ``"SPEECH"``.
    attributes:
        Attribute name/value mapping (may be empty).
    text:
        Concatenated character data directly under this element.
    children:
        Ordered list of child *element* nodes.
    parent:
        The parent element, or ``None`` for the root.
    pre:
        Pre-order (document-order) index, assigned when the node is adopted
        into an :class:`~repro.xmltree.document.XmlDocument`.  ``-1`` until
        then.
    sibling_index:
        Position among the parent's children (0-based); 0 for the root.
    """

    __slots__ = ("tag", "attributes", "text", "children", "parent", "pre", "sibling_index")

    def __init__(self, tag: str, attributes: Optional[Dict[str, str]] = None, text: str = ""):
        if not tag:
            raise ValueError("element tag must be a non-empty string")
        self.tag = tag
        self.attributes: Dict[str, str] = attributes or {}
        self.text = text
        self.children: List[XmlNode] = []
        self.parent: Optional[XmlNode] = None
        self.pre = -1
        self.sibling_index = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def append(self, child: "XmlNode") -> "XmlNode":
        """Attach ``child`` as the last child of this node and return it."""
        if child.parent is not None:
            raise ValueError("node %r already has a parent" % child.tag)
        child.parent = self
        child.sibling_index = len(self.children)
        self.children.append(child)
        return child

    def extend(self, children: List["XmlNode"]) -> "XmlNode":
        """Attach every node in ``children`` in order; return ``self``."""
        for child in children:
            self.append(child)
        return self

    # ------------------------------------------------------------------
    # Structure predicates
    # ------------------------------------------------------------------

    @property
    def is_leaf(self) -> bool:
        """True when the node has no element children.

        Text-only elements are leaves of the *label-path* tree: the path
        encoding scheme assigns their root-to-leaf path a single bit.
        """
        return not self.children

    @property
    def is_root(self) -> bool:
        return self.parent is None

    @property
    def depth(self) -> int:
        """Number of ancestors (root has depth 0)."""
        depth = 0
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------

    def iter_preorder(self) -> Iterator["XmlNode"]:
        """Yield this node and all element descendants in document order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            # Reversed push keeps left-to-right document order.
            stack.extend(reversed(node.children))

    def iter_descendants(self) -> Iterator["XmlNode"]:
        """Yield all element descendants (excluding ``self``) in order."""
        walker = self.iter_preorder()
        next(walker)  # drop self
        return walker

    def iter_ancestors(self) -> Iterator["XmlNode"]:
        """Yield parent, grandparent, ..., root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def iter_following_siblings(self) -> Iterator["XmlNode"]:
        if self.parent is None:
            return iter(())
        return iter(self.parent.children[self.sibling_index + 1:])

    def iter_preceding_siblings(self) -> Iterator["XmlNode"]:
        """Yield preceding siblings, nearest first."""
        if self.parent is None:
            return iter(())
        return reversed(self.parent.children[: self.sibling_index])

    # ------------------------------------------------------------------
    # Label paths
    # ------------------------------------------------------------------

    def label_path(self) -> str:
        """The root-to-node label path, e.g. ``"Root/A/B/D"``."""
        labels = [self.tag]
        for ancestor in self.iter_ancestors():
            labels.append(ancestor.tag)
        return "/".join(reversed(labels))

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------

    def subtree_size(self) -> int:
        """Number of element nodes in the subtree rooted here."""
        return sum(1 for _ in self.iter_preorder())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<XmlNode %s pre=%d children=%d>" % (self.tag, self.pre, len(self.children))
