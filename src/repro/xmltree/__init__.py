"""XML substrate: ordered element-tree model, parser, builder and statistics.

This package implements everything the estimation system needs from an XML
store, built from scratch:

* :class:`~repro.xmltree.node.XmlNode` — an ordered element-tree node with
  document order, sibling order and parent links.
* :class:`~repro.xmltree.document.XmlDocument` — a finalized document with
  pre-order numbering and indexed access by tag.
* :func:`~repro.xmltree.parser.parse_xml` — a pure-Python XML parser
  (elements, attributes, text, comments, CDATA, processing instructions,
  predefined and numeric entities).
* :func:`~repro.xmltree.builder.el` — a programmatic tree builder used
  heavily by tests and dataset generators.
* :mod:`~repro.xmltree.stats` — document statistics (Table 1 of the paper).
"""

from repro.xmltree.builder import el
from repro.xmltree.document import XmlDocument
from repro.xmltree.node import XmlNode
from repro.xmltree.parser import XmlParseError, parse_xml
from repro.xmltree.serializer import serialize
from repro.xmltree.stats import DocumentStats, document_stats

__all__ = [
    "XmlNode",
    "XmlDocument",
    "parse_xml",
    "XmlParseError",
    "el",
    "serialize",
    "DocumentStats",
    "document_stats",
]
