"""Finalized XML documents.

An :class:`XmlDocument` freezes an element tree built with
:class:`~repro.xmltree.node.XmlNode`: it assigns pre-order (document-order)
numbers, builds a tag index, and exposes the whole-document views the
statistics collectors need.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.xmltree.node import XmlNode


class XmlDocument:
    """An immutable-by-convention XML document.

    Parameters
    ----------
    root:
        The root element of a fully built tree.  The constructor walks the
        tree once to assign ``pre`` numbers and index nodes by tag; the tree
        must not be mutated afterwards.
    name:
        Optional human-readable name (dataset generators set this).
    """

    def __init__(self, root: XmlNode, name: str = ""):
        if root.parent is not None:
            raise ValueError("document root must not have a parent")
        self.root = root
        self.name = name
        self._nodes: List[XmlNode] = []
        self._by_tag: Dict[str, List[XmlNode]] = {}
        self.renumber()

    def renumber(self) -> None:
        """(Re)assign pre-order numbers and rebuild the tag index.

        Called by the constructor; exposed for the incremental-maintenance
        extension, which appends subtrees to an already-built document.
        """
        self._nodes = []
        self._by_tag = {}
        for pre, node in enumerate(self.root.iter_preorder()):
            node.pre = pre
            self._nodes.append(node)
            self._by_tag.setdefault(node.tag, []).append(node)

    # ------------------------------------------------------------------
    # Whole-document views
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Total number of element nodes."""
        return len(self._nodes)

    def __iter__(self) -> Iterator[XmlNode]:
        """Iterate every element node in document order."""
        return iter(self._nodes)

    def node_at(self, pre: int) -> XmlNode:
        """Return the node with pre-order number ``pre``."""
        return self._nodes[pre]

    def nodes_with_tag(self, tag: str) -> List[XmlNode]:
        """All element nodes with the given tag, in document order."""
        return self._by_tag.get(tag, [])

    @property
    def distinct_tags(self) -> List[str]:
        """Sorted list of distinct element tags."""
        return sorted(self._by_tag)

    def tag_count(self, tag: str) -> int:
        return len(self._by_tag.get(tag, ()))

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    def iter_leaves(self) -> Iterator[XmlNode]:
        """Yield leaf elements (no element children) in document order."""
        return (node for node in self._nodes if node.is_leaf)

    def distinct_root_to_leaf_paths(self) -> List[str]:
        """Distinct root-to-leaf label paths in order of first occurrence.

        This is exactly the set the encoding table of the path encoding
        scheme enumerates (Figure 1(b) of the paper).
        """
        seen = set()
        ordered: List[str] = []
        for leaf in self.iter_leaves():
            path = leaf.label_path()
            if path not in seen:
                seen.add(path)
                ordered.append(path)
        return ordered

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------

    def max_depth(self) -> int:
        """Depth of the deepest element (root = 0)."""
        best = 0
        # Iterative depth computation: parents appear before children in
        # document order, so a single forward pass suffices.
        depths: Dict[int, int] = {self.root.pre: 0}
        for node in self._nodes[1:]:
            parent = node.parent
            depth = depths[parent.pre] + 1 if parent is not None else 0
            depths[node.pre] = depth
            if depth > best:
                best = depth
        return best

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or self.root.tag
        return "<XmlDocument %s: %d elements, %d tags>" % (
            label,
            len(self._nodes),
            len(self._by_tag),
        )


def document_from_root(root: XmlNode, name: str = "") -> XmlDocument:
    """Convenience wrapper mirroring :class:`XmlDocument` construction."""
    return XmlDocument(root, name=name)
