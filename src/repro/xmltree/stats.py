"""Document statistics (the quantities of Table 1 in the paper).

For each dataset the paper reports the serialized size, the number of
distinct element tags and the total number of elements; the path-encoding
experiments additionally need the number of distinct root-to-leaf paths and
structural shape measures (depth, fanout) that the synthetic generators are
calibrated against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.xmltree.document import XmlDocument
from repro.xmltree.serializer import serialized_size_bytes


@dataclass(frozen=True)
class DocumentStats:
    """Summary statistics of one XML document."""

    name: str
    size_bytes: int
    distinct_tags: int
    total_elements: int
    distinct_paths: int
    max_depth: int
    max_fanout: int
    avg_fanout: float
    leaf_count: int

    @property
    def size_kb(self) -> float:
        return self.size_bytes / 1024.0

    @property
    def size_mb(self) -> float:
        return self.size_bytes / (1024.0 * 1024.0)

    def as_row(self) -> Dict[str, object]:
        """Row for Table 1 style reporting."""
        return {
            "dataset": self.name,
            "size": "%.2f MB" % self.size_mb if self.size_mb >= 1 else "%.1f KB" % self.size_kb,
            "#distinct_eles": self.distinct_tags,
            "#eles": self.total_elements,
            "#distinct_paths": self.distinct_paths,
            "max_depth": self.max_depth,
        }


def document_stats(document: XmlDocument, include_size: bool = True) -> DocumentStats:
    """Compute :class:`DocumentStats` for ``document``.

    ``include_size=False`` skips the (comparatively expensive) serialization
    pass and reports 0 bytes; accuracy experiments that do not need Table 1
    use this.
    """
    internal_nodes = 0
    total_children = 0
    max_fanout = 0
    leaf_count = 0
    for node in document:
        fanout = len(node.children)
        if fanout:
            internal_nodes += 1
            total_children += fanout
            if fanout > max_fanout:
                max_fanout = fanout
        else:
            leaf_count += 1
    return DocumentStats(
        name=document.name or document.root.tag,
        size_bytes=serialized_size_bytes(document) if include_size else 0,
        distinct_tags=len(document.distinct_tags),
        total_elements=len(document),
        distinct_paths=len(document.distinct_root_to_leaf_paths()),
        max_depth=document.max_depth(),
        max_fanout=max_fanout,
        avg_fanout=(total_children / internal_nodes) if internal_nodes else 0.0,
        leaf_count=leaf_count,
    )
