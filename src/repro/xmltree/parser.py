"""A pure-Python XML parser producing :class:`~repro.xmltree.node.XmlNode` trees.

The parser covers the slice of XML the reproduction needs (and that the
paper's datasets use): elements, attributes, character data, comments,
CDATA sections, processing instructions, an (ignored) DOCTYPE declaration,
the five predefined entities and numeric character references.

It is a hand-written recursive scanner rather than a wrapper around
``xml.etree`` so that the whole substrate is self-contained and the tests
can exercise malformed-input behaviour precisely.

Besides the tree-building :func:`parse_xml`, the same tokenization is
exposed as the event stream :func:`scan_events` (start/end element pairs,
no tree, no attribute decoding) — the substrate of the streaming synopsis
builder in :mod:`repro.build`, whose memory stays bounded by the open
element stack instead of the document size.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import ParseError
from repro.xmltree.document import XmlDocument
from repro.xmltree.node import XmlNode

_PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

_NAME_START_EXTRA = set("_:")
_NAME_EXTRA = set("_:.-")


class XmlParseError(ParseError):
    """Raised on malformed XML input, with the byte offset of the problem."""

    def __init__(self, message: str, position: int):
        super().__init__("%s (at offset %d)" % (message, position))
        self.raw_message = message
        self.position = position

    def __reduce__(self):
        # Default exception pickling replays __init__ with ``args`` (the
        # single formatted string), which does not match this two-argument
        # signature — and a parse error must survive the trip back from a
        # multiprocessing pool worker intact.
        return (type(self), (self.raw_message, self.position))


def _is_name_start(char: str) -> bool:
    return char.isalpha() or char in _NAME_START_EXTRA


def _is_name_char(char: str) -> bool:
    return char.isalnum() or char in _NAME_EXTRA


class _Scanner:
    """Single-pass scanner over the document text."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.length = len(text)

    # -- primitives ----------------------------------------------------

    def eof(self) -> bool:
        return self.pos >= self.length

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < self.length else ""

    def startswith(self, prefix: str) -> bool:
        return self.text.startswith(prefix, self.pos)

    def expect(self, literal: str) -> None:
        if not self.startswith(literal):
            raise XmlParseError("expected %r" % literal, self.pos)
        self.pos += len(literal)

    def skip_whitespace(self) -> None:
        while self.pos < self.length and self.text[self.pos].isspace():
            self.pos += 1

    def read_name(self) -> str:
        start = self.pos
        if self.eof() or not _is_name_start(self.peek()):
            raise XmlParseError("expected a name", self.pos)
        self.pos += 1
        while self.pos < self.length and _is_name_char(self.text[self.pos]):
            self.pos += 1
        return self.text[start:self.pos]

    def read_until(self, terminator: str, context: str) -> str:
        end = self.text.find(terminator, self.pos)
        if end < 0:
            raise XmlParseError("unterminated %s" % context, self.pos)
        value = self.text[self.pos:end]
        self.pos = end + len(terminator)
        return value

    # -- entity expansion ----------------------------------------------

    def decode_text(self, raw: str, base: int) -> str:
        """Expand entity and character references in ``raw``."""
        if "&" not in raw:
            return raw
        out = []
        i = 0
        while i < len(raw):
            char = raw[i]
            if char != "&":
                out.append(char)
                i += 1
                continue
            end = raw.find(";", i + 1)
            if end < 0:
                raise XmlParseError("unterminated entity reference", base + i)
            body = raw[i + 1:end]
            out.append(self._expand_entity(body, base + i))
            i = end + 1
        return "".join(out)

    @staticmethod
    def _expand_entity(body: str, position: int) -> str:
        if body.startswith("#x") or body.startswith("#X"):
            try:
                return chr(int(body[2:], 16))
            except ValueError:
                raise XmlParseError("bad hex character reference &%s;" % body, position)
        if body.startswith("#"):
            try:
                return chr(int(body[1:]))
            except ValueError:
                raise XmlParseError("bad character reference &%s;" % body, position)
        try:
            return _PREDEFINED_ENTITIES[body]
        except KeyError:
            raise XmlParseError("unknown entity &%s;" % body, position)


def _skip_misc(scanner: _Scanner, allow_doctype: bool) -> None:
    """Skip whitespace, comments, PIs and (optionally) one DOCTYPE."""
    while True:
        scanner.skip_whitespace()
        if scanner.startswith("<!--"):
            scanner.pos += 4
            scanner.read_until("-->", "comment")
        elif scanner.startswith("<?"):
            scanner.pos += 2
            scanner.read_until("?>", "processing instruction")
        elif allow_doctype and scanner.startswith("<!DOCTYPE"):
            _skip_doctype(scanner)
        else:
            return


def _skip_doctype(scanner: _Scanner) -> None:
    """Skip a DOCTYPE declaration, including an internal subset."""
    depth = 0
    start = scanner.pos
    while not scanner.eof():
        char = scanner.text[scanner.pos]
        scanner.pos += 1
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        elif char == ">" and depth <= 0:
            return
    raise XmlParseError("unterminated DOCTYPE", start)


def _parse_attributes(scanner: _Scanner) -> Dict[str, str]:
    attributes: Dict[str, str] = {}
    while True:
        scanner.skip_whitespace()
        if scanner.eof():
            raise XmlParseError("unterminated start tag", scanner.pos)
        if scanner.peek() in (">", "/"):
            return attributes
        name = scanner.read_name()
        scanner.skip_whitespace()
        scanner.expect("=")
        scanner.skip_whitespace()
        quote = scanner.peek()
        if quote not in ("'", '"'):
            raise XmlParseError("attribute value must be quoted", scanner.pos)
        scanner.pos += 1
        base = scanner.pos
        raw = scanner.read_until(quote, "attribute value")
        if name in attributes:
            raise XmlParseError("duplicate attribute %r" % name, base)
        attributes[name] = scanner.decode_text(raw, base)


def _parse_element(scanner: _Scanner) -> XmlNode:
    scanner.expect("<")
    tag = scanner.read_name()
    attributes = _parse_attributes(scanner)
    node = XmlNode(tag, attributes)
    if scanner.startswith("/>"):
        scanner.pos += 2
        return node
    scanner.expect(">")
    _parse_content(scanner, node)
    return node


def _parse_content(scanner: _Scanner, node: XmlNode) -> None:
    """Parse element content up to and including the matching end tag."""
    text_parts = []
    while True:
        if scanner.eof():
            raise XmlParseError("missing end tag for <%s>" % node.tag, scanner.pos)
        if scanner.peek() != "<":
            base = scanner.pos
            end = scanner.text.find("<", scanner.pos)
            if end < 0:
                raise XmlParseError("missing end tag for <%s>" % node.tag, scanner.pos)
            raw = scanner.text[base:end]
            scanner.pos = end
            text_parts.append(scanner.decode_text(raw, base))
            continue
        if scanner.startswith("</"):
            scanner.pos += 2
            closing = scanner.read_name()
            if closing != node.tag:
                raise XmlParseError(
                    "mismatched end tag </%s> for <%s>" % (closing, node.tag),
                    scanner.pos,
                )
            scanner.skip_whitespace()
            scanner.expect(">")
            node.text = "".join(text_parts)
            return
        if scanner.startswith("<!--"):
            scanner.pos += 4
            scanner.read_until("-->", "comment")
        elif scanner.startswith("<![CDATA["):
            scanner.pos += 9
            text_parts.append(scanner.read_until("]]>", "CDATA section"))
        elif scanner.startswith("<?"):
            scanner.pos += 2
            scanner.read_until("?>", "processing instruction")
        else:
            node.append(_parse_element(scanner))


def parse_xml(text: str, name: str = "") -> XmlDocument:
    """Parse an XML string into an :class:`XmlDocument`.

    Raises :class:`XmlParseError` on malformed input.  Leading/trailing
    prolog material (XML declaration, comments, DOCTYPE) is accepted and
    discarded; exactly one root element is required.
    """
    scanner = _Scanner(text)
    _skip_misc(scanner, allow_doctype=True)
    if scanner.eof() or scanner.peek() != "<":
        raise XmlParseError("expected a root element", scanner.pos)
    root = _parse_element(scanner)
    _skip_misc(scanner, allow_doctype=False)
    if not scanner.eof():
        raise XmlParseError("content after the root element", scanner.pos)
    return XmlDocument(root, name=name)


# ----------------------------------------------------------------------
# Event scanning (no tree construction)
# ----------------------------------------------------------------------

#: Event kinds yielded by :func:`scan_events`.
EVENT_START = "start"
EVENT_END = "end"


def _skip_attributes(scanner: _Scanner) -> None:
    """Advance past the attribute list of a start tag without storing it.

    The streaming statistics collectors only consume element structure, so
    attribute values are skipped (quotes respected) rather than decoded.
    """
    while True:
        scanner.skip_whitespace()
        if scanner.eof():
            raise XmlParseError("unterminated start tag", scanner.pos)
        if scanner.peek() in (">", "/"):
            return
        scanner.read_name()
        scanner.skip_whitespace()
        scanner.expect("=")
        scanner.skip_whitespace()
        quote = scanner.peek()
        if quote not in ("'", '"'):
            raise XmlParseError("attribute value must be quoted", scanner.pos)
        scanner.pos += 1
        scanner.read_until(quote, "attribute value")


def _skip_element(scanner: _Scanner) -> str:
    """Skip one whole element (positioned at its ``<``); return its tag.

    Purely lexical: tracks nesting depth and honours comments, CDATA and
    processing instructions, but does not verify that end tags match.  The
    shard chunker uses this to find top-level subtree byte spans without
    scanning their interiors tag-by-tag.
    """
    scanner.expect("<")
    tag = scanner.read_name()
    _skip_attributes(scanner)
    if scanner.startswith("/>"):
        scanner.pos += 2
        return tag
    scanner.expect(">")
    depth = 1
    text = scanner.text
    find = text.find
    while depth:
        angle = find("<", scanner.pos)
        if angle < 0:
            raise XmlParseError("missing end tag for <%s>" % tag, scanner.pos)
        scanner.pos = angle
        lead = text[angle + 1 : angle + 2]
        if lead == "/":
            gt = find(">", angle + 2)
            if gt < 0:
                raise XmlParseError("unterminated end tag", angle)
            scanner.pos = gt + 1
            depth -= 1
        elif lead == "!":
            if scanner.startswith("<!--"):
                scanner.pos += 4
                scanner.read_until("-->", "comment")
            elif scanner.startswith("<![CDATA["):
                scanner.pos += 9
                scanner.read_until("]]>", "CDATA section")
            else:
                raise XmlParseError("unexpected markup declaration", angle)
        elif lead == "?":
            scanner.pos += 2
            scanner.read_until("?>", "processing instruction")
        else:
            gt = find(">", angle + 1)
            if gt < 0:
                raise XmlParseError("unterminated start tag", angle)
            head = text[angle:gt]
            if '"' in head or "'" in head:
                # A quoted attribute value may hide the real ">" (or a
                # "<"); fall back to the attribute-aware skip.
                scanner.pos = angle + 1
                scanner.read_name()
                _skip_attributes(scanner)
                if scanner.startswith("/>"):
                    scanner.pos += 2
                else:
                    scanner.expect(">")
                    depth += 1
            else:
                scanner.pos = gt + 1
                if not head.endswith("/"):
                    depth += 1
    return tag


def scan_events(text: str, fragment: bool = False) -> Iterator[Tuple[str, str]]:
    """Yield ``(EVENT_START, tag)`` / ``(EVENT_END, tag)`` pairs.

    The single-pass, constant-memory view of the document the tree parser
    would build: the same prolog handling and well-formedness checks
    (matching end tags, one root), but no nodes, no attribute dictionaries
    and no text decoding.  ``fragment=True`` accepts a *sequence* of
    top-level elements with arbitrary character data between them — the
    shape of a document shard cut out by :mod:`repro.build.chunker`.

    Raises :class:`XmlParseError` on malformed input.
    """
    scanner = _Scanner(text)
    _skip_misc(scanner, allow_doctype=True)
    if not fragment and (scanner.eof() or scanner.peek() != "<"):
        raise XmlParseError("expected a root element", scanner.pos)
    stack: List[str] = []
    while True:
        if scanner.eof():
            if stack:
                raise XmlParseError(
                    "missing end tag for <%s>" % stack[-1], scanner.pos
                )
            if fragment:
                return
            raise XmlParseError("expected a root element", scanner.pos)
        if scanner.peek() != "<":
            # Character data; at the top level of a fragment it is the
            # inter-sibling text the chunker sliced along with the spans.
            if not stack and not fragment:
                raise XmlParseError("content after the root element", scanner.pos)
            angle = scanner.text.find("<", scanner.pos)
            if angle < 0:
                if stack:
                    raise XmlParseError(
                        "missing end tag for <%s>" % stack[-1], scanner.pos
                    )
                scanner.pos = scanner.length
                continue
            scanner.pos = angle
            continue
        if scanner.startswith("</"):
            position = scanner.pos
            scanner.pos += 2
            closing = scanner.read_name()
            scanner.skip_whitespace()
            scanner.expect(">")
            if not stack:
                raise XmlParseError("unexpected end tag </%s>" % closing, position)
            if closing != stack[-1]:
                raise XmlParseError(
                    "mismatched end tag </%s> for <%s>" % (closing, stack[-1]),
                    position,
                )
            stack.pop()
            yield EVENT_END, closing
            if not stack and not fragment:
                break
        elif scanner.startswith("<!--"):
            scanner.pos += 4
            scanner.read_until("-->", "comment")
        elif scanner.startswith("<![CDATA["):
            if not stack:
                raise XmlParseError("CDATA outside the root element", scanner.pos)
            scanner.pos += 9
            scanner.read_until("]]>", "CDATA section")
        elif scanner.startswith("<?"):
            scanner.pos += 2
            scanner.read_until("?>", "processing instruction")
        else:
            scanner.pos += 1
            tag = scanner.read_name()
            _skip_attributes(scanner)
            if scanner.startswith("/>"):
                scanner.pos += 2
                yield EVENT_START, tag
                yield EVENT_END, tag
                if not stack and not fragment:
                    break
            else:
                scanner.expect(">")
                yield EVENT_START, tag
                stack.append(tag)
    _skip_misc(scanner, allow_doctype=False)
    if not scanner.eof():
        raise XmlParseError("content after the root element", scanner.pos)


def parse_fragment(text: str) -> XmlNode:
    """Parse a single element (no prolog handling) and return the node.

    Useful in tests that want a bare :class:`XmlNode` without document
    numbering.
    """
    scanner = _Scanner(text)
    scanner.skip_whitespace()
    root = _parse_element(scanner)
    scanner.skip_whitespace()
    if not scanner.eof():
        raise XmlParseError("trailing content after fragment", scanner.pos)
    return root
