"""Programmatic tree construction helpers.

Dataset generators and tests build trees directly rather than round-tripping
through text.  The :func:`el` helper gives a compact literal syntax::

    root = el("Root",
              el("A", el("B", el("D")), el("C", el("E"), el("F"))))
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.xmltree.document import XmlDocument
from repro.xmltree.node import XmlNode

Child = Union[XmlNode, str]


def el(tag: str, *children: Child, attrs: Optional[Dict[str, str]] = None) -> XmlNode:
    """Build an element with the given children.

    String children are appended to the element's text content; node
    children are attached in order.
    """
    node = XmlNode(tag, attributes=dict(attrs) if attrs else None)
    text_parts = []
    for child in children:
        if isinstance(child, str):
            text_parts.append(child)
        else:
            node.append(child)
    if text_parts:
        node.text = "".join(text_parts)
    return node


def doc(root: XmlNode, name: str = "") -> XmlDocument:
    """Wrap a built tree in a document (assigns document order)."""
    return XmlDocument(root, name=name)


def paper_figure1_document() -> XmlDocument:
    """The running example of the paper (Figure 1(a)), reconstructed.

    Leaf-path encodings: Root/A/B/D -> 1, Root/A/B/E -> 2, Root/A/C/E -> 3,
    Root/A/C/F -> 4.  Path ids are 4-bit vectors (MSB = encoding 1), named
    p1..p9 in ascending bit-sequence order per Figure 1(c).

    The arrangement below was solved from every published table and worked
    example simultaneously:

    * ``A`` #1 (p8=1100): one ``B`` (p8) with children D, E.
    * ``A`` #2 (p7=1011): ``B`` (p5=1000) [D], ``C`` (p3=0011) [E, F],
      ``B`` (p5) [D] — one B before C, one B after C.
    * ``A`` #3 (p6=1010): ``C`` (p2=0010) [E], ``B`` (p5) [D] — B after C.

    This yields exactly the pathId-frequency table of Figure 2(a):
    A → {(p6,1),(p7,1),(p8,1)}, B → {(p8,1),(p5,3)}, C → {(p2,1),(p3,1)},
    D → {(p5,4)}, E → {(p4,1),(p2,2)}, F → {(p1,1)}, Root → {(p9,1)};
    B's path-order table of Figure 2(b): one B(p5) before C, two B(p5)
    after C; and the estimates of Examples 4.2-4.5 and 5.1-5.2
    (e.g. S_Q1(B)=1.3, S_Q1'(B)=2.6, order-corrected estimate 1).
    """
    a1 = el("A", el("B", el("D"), el("E")))
    a2 = el("A", el("B", el("D")), el("C", el("E"), el("F")), el("B", el("D")))
    a3 = el("A", el("C", el("E")), el("B", el("D")))
    root = el("Root", a1, a2, a3)
    return XmlDocument(root, name="figure1")
