"""Interval (start, end) labeling of documents.

The classic containment labeling [Zhang et al., SIGMOD'01; Li & Moon,
VLDB'01]: every element receives ``start < end`` counters such that
``a`` is an ancestor of ``d`` iff ``a.start < d.start`` and
``d.end < a.end``.  Sibling intervals are disjoint; the family is laminar.

Used by the structural-join query processor (:mod:`repro.queryproc`) and
the position-histogram baseline (:mod:`repro.baselines.position`).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.xmltree.document import XmlDocument


def interval_labeling(document: XmlDocument) -> Tuple[List[int], List[int], int]:
    """(starts, ends, top) indexed by pre-order number.

    ``top`` is one past the largest assigned position.
    """
    counter = 0
    starts = [0] * len(document)
    ends = [0] * len(document)
    stack = [(document.root, False)]
    while stack:
        node, closing = stack.pop()
        counter += 1
        if closing:
            ends[node.pre] = counter
            continue
        starts[node.pre] = counter
        stack.append((node, True))
        for child in reversed(node.children):
            stack.append((child, False))
    return starts, ends, counter + 1
