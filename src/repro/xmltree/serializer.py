"""Serialize element trees back to XML text.

Round-tripping matters for two reasons: dataset generators report document
sizes in bytes (Table 1 of the paper quotes megabytes), and the parser tests
verify parse(serialize(tree)) == tree.
"""

from __future__ import annotations

from typing import List, Union

from repro.xmltree.document import XmlDocument
from repro.xmltree.node import XmlNode

_TEXT_ESCAPES = [("&", "&amp;"), ("<", "&lt;"), (">", "&gt;")]
_ATTR_ESCAPES = _TEXT_ESCAPES + [('"', "&quot;")]


def escape_text(value: str) -> str:
    """Escape character data for element content."""
    for raw, escaped in _TEXT_ESCAPES:
        value = value.replace(raw, escaped)
    return value


def escape_attribute(value: str) -> str:
    """Escape character data for a double-quoted attribute value."""
    for raw, escaped in _ATTR_ESCAPES:
        value = value.replace(raw, escaped)
    return value


def _write_node(node: XmlNode, parts: List[str], indent: int, pretty: bool) -> None:
    pad = "  " * indent if pretty else ""
    attrs = "".join(
        ' %s="%s"' % (name, escape_attribute(value))
        for name, value in sorted(node.attributes.items())
    )
    if not node.children and not node.text:
        parts.append("%s<%s%s/>" % (pad, node.tag, attrs))
        return
    open_tag = "%s<%s%s>" % (pad, node.tag, attrs)
    if not node.children:
        parts.append("%s%s</%s>" % (open_tag, escape_text(node.text), node.tag))
        return
    parts.append(open_tag)
    if node.text:
        parts.append(("  " * (indent + 1) if pretty else "") + escape_text(node.text))
    for child in node.children:
        _write_node(child, parts, indent + 1, pretty)
    parts.append("%s</%s>" % (pad, node.tag))


def serialize(tree: Union[XmlNode, XmlDocument], pretty: bool = False, declaration: bool = False) -> str:
    """Serialize a node or document to XML text.

    Note: with ``pretty=True`` whitespace is added between elements, so the
    result is equivalent only up to ignorable whitespace (our node model
    stores direct text ahead of all children, which is sufficient for the
    data-centric documents this project generates).
    """
    root = tree.root if isinstance(tree, XmlDocument) else tree
    parts: List[str] = []
    if declaration:
        parts.append('<?xml version="1.0" encoding="UTF-8"?>')
    _write_node(root, parts, 0, pretty)
    joiner = "\n" if pretty else ""
    return joiner.join(parts)


def serialized_size_bytes(tree: Union[XmlNode, XmlDocument]) -> int:
    """Size of the UTF-8 serialization; used for Table 1 style reporting."""
    return len(serialize(tree).encode("utf-8"))
