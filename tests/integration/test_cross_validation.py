"""Systematic accuracy matrix: datasets × provider modes × query classes.

One table of error bounds, asserted in full — a broad regression tripwire
for the whole estimation stack.  Bounds are intentionally loose (they are
ceilings, not targets); the benchmarks report the precise values.
"""

import pytest

from repro.core.system import EstimationSystem
from repro.harness.metrics import relative_error
from repro.workload import WorkloadGenerator

# (dataset fixture, mode, query class) -> mean-error ceiling
BOUNDS = [
    ("ssplays_small", "exact", "simple", 1e-9),
    ("ssplays_small", "exact", "branch", 0.10),
    ("ssplays_small", "exact", "order_branch", 0.45),
    ("ssplays_small", "exact", "order_trunk", 0.15),
    ("ssplays_small", "histogram-v2", "simple", 0.35),
    ("ssplays_small", "histogram-v2", "branch", 0.40),
    ("dblp_small", "exact", "simple", 1e-9),
    ("dblp_small", "exact", "branch", 0.05),
    ("dblp_small", "exact", "order_branch", 0.30),
    ("dblp_small", "exact", "order_trunk", 0.05),
    ("xmark_small", "exact", "simple", 0.15),
    ("xmark_small", "exact", "branch", 0.25),
    ("xmark_small", "depth-refined", "simple", 1e-9),
    ("xmark_small", "depth-refined", "branch", 0.20),
]

_WORKLOADS = {}
_SYSTEMS = {}


def workload_for(request, fixture_name):
    if fixture_name not in _WORKLOADS:
        document = request.getfixturevalue(fixture_name)
        generator = WorkloadGenerator(document, seed=47)
        _WORKLOADS[fixture_name] = generator.full_workload(150, 150, 200)
    return _WORKLOADS[fixture_name]


def system_for(request, fixture_name, mode):
    key = (fixture_name, mode)
    if key not in _SYSTEMS:
        document = request.getfixturevalue(fixture_name)
        if mode == "exact":
            system = EstimationSystem.build(
                document, p_variance=0, o_variance=0, build_binary_tree=False
            )
        elif mode == "depth-refined":
            system = EstimationSystem.build(
                document, use_histograms=False, depth_refined=True,
                build_binary_tree=False,
            )
        else:  # histogram-v2
            system = EstimationSystem.build(
                document, p_variance=2, o_variance=2, build_binary_tree=False
            )
        _SYSTEMS[key] = system
    return _SYSTEMS[key]


@pytest.mark.parametrize("fixture_name,mode,klass,bound", BOUNDS)
def test_error_matrix(request, fixture_name, mode, klass, bound):
    workload = workload_for(request, fixture_name)
    items = getattr(workload, klass)
    assert items, "empty workload class %s on %s" % (klass, fixture_name)
    system = system_for(request, fixture_name, mode)
    errors = [relative_error(system.estimate(i.query), i.actual) for i in items]
    mean = sum(errors) / len(errors)
    assert mean <= bound, "%s/%s/%s: mean error %.4f > bound %.4f" % (
        fixture_name, mode, klass, mean, bound
    )
