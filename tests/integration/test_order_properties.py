"""Property tests for order-axis estimation over random documents.

The workload generator runs against arbitrary documents, so random trees
give random *positive* order queries with known actuals — the properties
assert the estimator's soundness (positive actual ⇒ positive estimate)
and its exactness envelope (v=0 estimates equal the truth whenever the
uniformity assumptions hold trivially, i.e. a single sibling group shape).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.system import EstimationSystem
from repro.workload import WorkloadGenerator
from repro.xmltree.builder import el
from repro.xmltree.document import XmlDocument


@st.composite
def record_document(draw) -> XmlDocument:
    """A flat record corpus: root -> records -> fields (no recursion)."""
    seed = draw(st.integers(min_value=0, max_value=10**6))
    rng = random.Random(seed)
    record_count = draw(st.integers(min_value=2, max_value=12))
    field_tags = ["f1", "f2", "f3", "f4"]
    root = el("root")
    for _ in range(record_count):
        record = el("rec")
        for _ in range(rng.randint(1, 6)):
            field = el(rng.choice(field_tags))
            if rng.random() < 0.3:
                field.append(el("leaf"))
            record.append(field)
        root.append(record)
    return XmlDocument(root)


class TestOrderSoundness:
    @settings(max_examples=25, deadline=None)
    @given(record_document(), st.integers(min_value=0, max_value=10**6))
    def test_positive_order_queries_get_positive_estimates(self, document, seed):
        generator = WorkloadGenerator(document, seed=seed)
        branch_items, trunk_items = generator.order_queries(30)
        if not branch_items:
            return
        system = EstimationSystem.build(
            document, p_variance=0, o_variance=0, build_binary_tree=False
        )
        for item in branch_items + trunk_items:
            estimate = system.estimate(item.query)
            assert estimate >= 0.0
            assert item.actual > 0  # generator guarantee
            assert estimate > 0.0

    @settings(max_examples=25, deadline=None)
    @given(record_document(), st.integers(min_value=0, max_value=10**6))
    def test_trunk_estimate_below_counterpart_bound(self, document, seed):
        """Equation 5 never exceeds the order-free upper bound."""
        from repro.core.noorder import estimate_no_order
        from repro.core.transform import clone_query

        generator = WorkloadGenerator(document, seed=seed)
        _, trunk_items = generator.order_queries(25)
        if not trunk_items:
            return
        system = EstimationSystem.build(
            document, p_variance=0, o_variance=0, build_binary_tree=False
        )
        for item in trunk_items:
            counterpart, mapping = clone_query(item.query, order_to_structural=True)
            bound = estimate_no_order(
                counterpart,
                system.path_provider,
                system.encoding_table,
                target=mapping[item.query.target.node_id],
            )
            assert system.estimate(item.query) <= bound + 1e-9


class TestHistogramMonotonicity:
    @settings(max_examples=10, deadline=None)
    @given(record_document())
    def test_order_memory_monotone(self, document):
        # Algorithm 2's greedy box cover is not pointwise monotone in the
        # variance threshold: a looser bound can let an early box grow
        # over cells that would otherwise seed one larger merge, costing
        # an extra bucket or two.  Figure 9's memory-vs-variance claim is
        # a trend, so it is asserted within that greedy jitter.
        from repro.histograms.ohistogram import BUCKET_BYTES

        slack = 2 * BUCKET_BYTES
        sizes = []
        for variance in (0, 2, 8):
            system = EstimationSystem.build(
                document, p_variance=0, o_variance=variance, build_binary_tree=False
            )
            sizes.append(system.summary_sizes().get("o_histogram", 0.0))
        for finer, coarser in zip(sizes, sizes[1:]):
            assert coarser <= finer + slack
