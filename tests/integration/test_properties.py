"""Property-based tests over randomly generated documents and queries.

Strategies generate *non-recursive* documents (tags are distinct per tree
level) so Theorem 4.1's exactness applies, plus random queries derived from
real root-to-leaf paths so positivity is known by construction.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.system import EstimationSystem
from repro.xmltree.builder import el
from repro.xmltree.document import XmlDocument
from repro.xmltree.node import XmlNode
from repro.xpath import Evaluator
from repro.xpath.ast import Query, QueryAxis, QueryNode


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------


@st.composite
def random_document(draw) -> XmlDocument:
    """A small random tree; level-indexed tags prevent recursion."""
    seed = draw(st.integers(min_value=0, max_value=10**6))
    rng = random.Random(seed)
    max_depth = draw(st.integers(min_value=1, max_value=4))
    labels_per_level = draw(st.integers(min_value=1, max_value=3))

    def grow(node: XmlNode, depth: int) -> None:
        if depth > max_depth:
            return
        for _ in range(rng.randint(0, 3)):
            child = node.append(
                el("L%d%s" % (depth, "abc"[rng.randrange(labels_per_level)]))
            )
            grow(child, depth + 1)

    root = el("root")
    grow(root, 1)
    return XmlDocument(root)


def random_chain_query(document: XmlDocument, rng: random.Random) -> Query:
    """A random subsequence of a real root-to-leaf path (always positive)."""
    paths = document.distinct_root_to_leaf_paths()
    labels = rng.choice(paths).split("/")
    count = rng.randint(1, len(labels))
    positions = sorted(rng.sample(range(len(labels)), count))
    head = QueryNode(labels[positions[0]])
    head_axis = QueryAxis.CHILD if positions[0] == 0 else QueryAxis.DESCENDANT
    node = head
    for prev, cur in zip(positions, positions[1:]):
        axis = QueryAxis.CHILD if cur == prev + 1 else QueryAxis.DESCENDANT
        node = node.add_edge(axis, QueryNode(labels[cur]), is_predicate=False)
    return Query(head, head_axis)


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------


class TestTheorem41Property:
    @settings(max_examples=40, deadline=None)
    @given(random_document(), st.integers(min_value=0, max_value=10**6))
    def test_simple_queries_exact_at_v0(self, document, query_seed):
        rng = random.Random(query_seed)
        system = EstimationSystem.build(
            document, p_variance=0, build_binary_tree=False
        )
        evaluator = Evaluator(document)
        for _ in range(5):
            query = random_chain_query(document, rng)
            assert system.estimate(query) == pytest.approx(
                float(evaluator.selectivity(query))
            )


class TestSoundnessProperty:
    @settings(max_examples=30, deadline=None)
    @given(random_document(), st.integers(min_value=0, max_value=10**6))
    def test_positive_queries_get_positive_estimates(self, document, seed):
        """actual > 0 implies estimate > 0 (the join never over-prunes)."""
        rng = random.Random(seed)
        system = EstimationSystem.build(
            document, p_variance=0, o_variance=0, build_binary_tree=False
        )
        evaluator = Evaluator(document)
        # Random branch query: two chains merged at a shared prefix node.
        for _ in range(5):
            q1 = random_chain_query(document, rng)
            q2 = random_chain_query(document, rng)
            shared = {n.tag for n in q1.nodes()} & {n.tag for n in q2.nodes()}
            if not shared:
                continue
            tag = sorted(shared)[0]
            host = next(n for n in q1.nodes() if n.tag == tag)
            graft_source = next(n for n in q2.nodes() if n.tag == tag)
            inline = graft_source.inline_edge()
            if inline is None:
                continue
            clone = _clone_chain(inline.node)
            host.edges = list(host.edges) + [
                inline._replace(node=clone, is_predicate=True)
            ]
            query = Query(q1.root, q1.root_axis)
            actual = evaluator.selectivity(query)
            estimate = system.estimate(query)
            assert estimate >= 0.0
            if actual > 0:
                assert estimate > 0.0


def _clone_chain(node: QueryNode) -> QueryNode:
    copy = QueryNode(node.tag)
    for edge in node.edges:
        copy.edges.append(edge._replace(node=_clone_chain(edge.node)))
    return copy


class TestHistogramDegradation:
    @settings(max_examples=15, deadline=None)
    @given(random_document())
    def test_total_mass_preserved_at_any_variance(self, document):
        """Bucket averages keep each tag's total frequency."""
        for variance in (0, 1, 5):
            system = EstimationSystem.build(
                document, p_variance=variance, build_binary_tree=False
            )
            for tag in system.pathid_table.tags():
                exact_total = system.pathid_table.total_frequency(tag)
                approx_total = sum(
                    freq for _, freq in system.path_provider.frequency_pairs(tag)
                )
                assert approx_total == pytest.approx(exact_total)
