"""Property test: persistence round-trips estimates on random documents."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.system import EstimationSystem
from repro.persist import dumps, loads
from repro.workload import WorkloadGenerator
from repro.xmltree.builder import el
from repro.xmltree.document import XmlDocument


@st.composite
def random_document(draw) -> XmlDocument:
    seed = draw(st.integers(min_value=0, max_value=10**6))
    rng = random.Random(seed)
    tags = "abcde"

    def grow(node, depth):
        if depth > 3:
            return
        for _ in range(rng.randint(0, 3)):
            grow(node.append(el(rng.choice(tags))), depth + 1)

    root = el("r")
    grow(root, 1)
    for _ in range(2):  # ensure some siblings for order statistics
        root.append(el(rng.choice(tags)))
    return XmlDocument(root)


class TestPersistenceProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        random_document(),
        st.integers(min_value=0, max_value=10**6),
        st.sampled_from([0.0, 1.0, 4.0]),
    )
    def test_roundtrip_preserves_estimates(self, document, seed, variance):
        original = EstimationSystem.build(
            document, p_variance=variance, o_variance=variance,
            build_binary_tree=False,
        )
        restored = loads(dumps(original))
        generator = WorkloadGenerator(document, seed=seed)
        items = generator.simple_queries(8) + generator.branch_queries(8)
        branch_items, trunk_items = generator.order_queries(8)
        for item in items + branch_items + trunk_items:
            assert restored.estimate(item.query) == pytest.approx(
                original.estimate(item.query)
            )
