"""End-to-end pipeline tests on the three (small-scale) datasets.

These integration tests assert the *shapes* the paper's evaluation relies
on, at reduced scale so they stay fast.
"""

import pytest

from repro.core.system import EstimationSystem
from repro.harness.metrics import ErrorSummary, relative_error
from repro.workload import WorkloadGenerator


def mean_error(system, items):
    errors = [relative_error(system.estimate(i.query), i.actual) for i in items]
    return ErrorSummary.from_errors(errors).mean


@pytest.fixture(scope="module")
def ssplays_env(ssplays_small):
    gen = WorkloadGenerator(ssplays_small, seed=13)
    return ssplays_small, gen.full_workload(raw_simple=120, raw_branch=120, raw_order=150)


class TestExactStatisticsAccuracy:
    def test_simple_queries_exact(self, ssplays_env):
        document, workload = ssplays_env
        system = EstimationSystem.build(document, p_variance=0)
        assert mean_error(system, workload.simple) == pytest.approx(0.0, abs=1e-9)

    def test_branch_queries_small_error(self, ssplays_env):
        document, workload = ssplays_env
        system = EstimationSystem.build(document, p_variance=0)
        assert mean_error(system, workload.branch) < 0.10

    def test_order_trunk_small_error(self, ssplays_env):
        document, workload = ssplays_env
        system = EstimationSystem.build(document, p_variance=0, o_variance=0)
        assert mean_error(system, workload.order_trunk) < 0.15

    def test_order_branch_bounded_error(self, ssplays_env):
        document, workload = ssplays_env
        system = EstimationSystem.build(document, p_variance=0, o_variance=0)
        assert mean_error(system, workload.order_branch) < 0.45

    def test_dblp_everything_tight(self, dblp_small):
        gen = WorkloadGenerator(dblp_small, seed=13)
        workload = gen.full_workload(raw_simple=80, raw_branch=80, raw_order=100)
        system = EstimationSystem.build(dblp_small, p_variance=0, o_variance=0)
        assert mean_error(system, workload.simple) == pytest.approx(0.0, abs=1e-9)
        assert mean_error(system, workload.branch) < 0.05
        assert mean_error(system, workload.order_trunk) < 0.05


class TestVarianceDegradation:
    def test_error_monotone_in_p_variance(self, ssplays_env):
        document, workload = ssplays_env
        items = workload.simple + workload.branch
        errors = [
            mean_error(EstimationSystem.build(document, p_variance=v), items)
            for v in (0, 4, 12)
        ]
        assert errors[0] <= errors[1] + 0.02
        assert errors[0] <= errors[2] + 0.02

    def test_memory_error_tradeoff_exists(self, ssplays_env):
        document, workload = ssplays_env
        items = workload.simple + workload.branch
        tight = EstimationSystem.build(document, p_variance=0)
        loose = EstimationSystem.build(document, p_variance=12)
        assert (
            loose.summary_sizes()["p_histogram"]
            < tight.summary_sizes()["p_histogram"]
        )
        assert mean_error(tight, items) <= mean_error(loose, items) + 1e-9


class TestXMarkRecursion:
    def test_depth_consistent_beats_pairwise(self, xmark_small):
        gen = WorkloadGenerator(xmark_small, seed=13)
        items = gen.simple_queries(150)
        system = EstimationSystem.build(xmark_small, p_variance=0)
        depth_errors = [
            relative_error(system.estimate(i.query, depth_consistent=True), i.actual)
            for i in items
        ]
        pairwise_errors = [
            relative_error(system.estimate(i.query, depth_consistent=False), i.actual)
            for i in items
        ]
        depth_mean = sum(depth_errors) / len(depth_errors)
        pairwise_mean = sum(pairwise_errors) / len(pairwise_errors)
        assert depth_mean <= pairwise_mean + 1e-9

    def test_residual_error_is_moderate(self, xmark_small):
        gen = WorkloadGenerator(xmark_small, seed=13)
        items = gen.simple_queries(120)
        system = EstimationSystem.build(xmark_small, p_variance=0)
        assert mean_error(system, items) < 0.15
