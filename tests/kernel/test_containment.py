"""Property tests: compiled containment structures vs the naive tests.

Random encoding tables (including recursive label repeats) and random
pid sets; every bit of every containment matrix must agree with
``pids_compatible``, and the depth-0 init bitset with ``pid_is_root``.
"""

from __future__ import annotations

import random

import pytest

from repro.kernel import SynopsisKernel, popcount
from repro.kernel.compiled import MEMO_LIMIT, or_rows
from repro.pathenc.encoding import EncodingTable
from repro.pathenc.relationship import Axis, pid_is_root, pids_compatible

TAGS = ["A", "B", "C", "D"]


class ListProvider:
    """Minimal PathStatsProvider double: fixed (pid, freq) lists."""

    def __init__(self, pairs):
        self._pairs = pairs

    def frequency_pairs(self, tag):
        return list(self._pairs.get(tag, []))


def random_case(seed):
    """A random (table, provider, tags) triple.

    Paths repeat tags (recursive shapes) and pids are arbitrary non-zero
    masks — a superset of what real synopses produce, so the equivalence
    property is tested strictly harder than the join needs.
    """
    rng = random.Random(seed)
    paths = set()
    while len(paths) < rng.randint(3, 8):
        depth = rng.randint(1, 4)
        paths.add("/".join(["R"] + [rng.choice(TAGS) for _ in range(depth)]))
    table = EncodingTable(sorted(paths))
    pairs = {}
    for tag in TAGS + ["R"]:
        pids = sorted(
            {rng.randrange(1, 1 << table.width) for _ in range(rng.randint(1, 6))}
        )
        pairs[tag] = [(pid, float(rng.randint(1, 50))) for pid in pids]
    return table, ListProvider(pairs), TAGS + ["R"]


@pytest.mark.parametrize("seed", range(12))
def test_containment_matrices_match_pids_compatible(seed):
    table, provider, tags = random_case(seed)
    kernel = SynopsisKernel(table, provider)
    for upper_tag in tags:
        upper = kernel.tag_table(upper_tag)
        for lower_tag in tags:
            lower = kernel.tag_table(lower_tag)
            for child, axis in ((True, Axis.CHILD), (False, Axis.DESCENDANT)):
                pair = kernel.containment(upper_tag, lower_tag, child)
                for i, pid_upper in enumerate(upper.pids):
                    for j, pid_lower in enumerate(lower.pids):
                        expected = pids_compatible(
                            table, upper_tag, pid_upper, lower_tag, pid_lower, axis
                        )
                        assert bool(pair.down[i] >> j & 1) == expected
                        # The up matrix is the exact transpose.
                        assert bool(pair.up[j] >> i & 1) == expected


@pytest.mark.parametrize("seed", range(12))
def test_depth_zero_bitset_matches_pid_is_root(seed):
    table, provider, tags = random_case(seed)
    kernel = SynopsisKernel(table, provider)
    for tag in tags:
        compiled = kernel.tag_table(tag)
        mask = kernel.root_mask(tag)
        for i, pid in enumerate(compiled.pids):
            assert bool(mask >> i & 1) == pid_is_root(table, tag, pid)


@pytest.mark.parametrize("seed", range(12))
def test_init_bitsets_match_tag_depths(seed):
    table, provider, tags = random_case(seed)
    kernel = SynopsisKernel(table, provider)
    for tag in tags:
        compiled = kernel.tag_table(tag)
        for i, pid in enumerate(compiled.pids):
            depths = set(table.tag_depths(tag, pid))
            for depth in range(compiled.depth_count):
                assert bool(compiled.init_at[depth] >> i & 1) == (depth in depths)
            # Depths beyond depth_count are infeasible by construction.
            assert all(d < compiled.depth_count for d in depths)
            assert bool(compiled.alive_mask >> i & 1) == bool(depths)


def test_interned_frequencies_keep_provider_order():
    table, provider, tags = random_case(7)
    kernel = SynopsisKernel(table, provider)
    for tag in tags:
        compiled = kernel.tag_table(tag)
        expected = provider.frequency_pairs(tag)
        assert list(compiled.pids) == [pid for pid, _ in expected]
        assert list(compiled.freqs) == [freq for _, freq in expected]
        assert [compiled.index_of[pid] for pid, _ in expected] == list(
            range(len(expected))
        )


def test_or_rows_unions_and_memoizes():
    rows = (0b0001, 0b0010, 0b1100, 0b0101)
    memo = {}
    assert or_rows(rows, 0b1011, memo) == 0b0101 | 0b0010 | 0b0001
    assert memo == {0b1011: 0b0111}
    # Hit path returns the cached value without touching the rows.
    assert or_rows(rows, 0b1011, memo) == 0b0111
    # The memo is cleared, not evicted, at its bound.
    big = {-(n + 1): 0 for n in range(MEMO_LIMIT)}
    or_rows(rows, 0b1000, big)
    assert big == {0b1000: 0b0101}


def test_popcount_small_values():
    assert [popcount(n) for n in (0, 1, 0b1011, (1 << 70) - 1)] == [0, 1, 3, 70]
