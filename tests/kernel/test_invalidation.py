"""Stale-kernel guard: hot reloads and live appends must invalidate.

A kernel compiled against a replaced synopsis must never serve again —
captured references (in-flight joins, cached plans) fall back to the
legacy path via ``supports()``.  The last-good degradation path keeps
both the system *and* its warm kernel, because the synopsis it serves
did not change.
"""

from __future__ import annotations

import os
import time

import pytest

from repro import EstimationSystem, persist
from repro.service import SynopsisRegistry
from repro.xmltree.builder import el
from repro.xmltree.document import XmlDocument

QUERY = "//A/B"


def _touch(path, offset_ns=1):
    stamp = time.time_ns() + offset_ns
    os.utime(path, ns=(stamp, stamp))


@pytest.fixture()
def snapshot_dir(tmp_path, figure1):
    system = EstimationSystem.build(figure1, p_variance=0, o_variance=0)
    persist.save(system, str(tmp_path / "fig1.json"))
    return tmp_path


def _warm(system, query=QUERY):
    """Estimate once so the lazy kernel exists and has compiled state."""
    value = system.estimate(query)
    kernel = system.kernel()
    assert kernel is not None and kernel.stats()["joins"] > 0
    return value, kernel


class TestHotReload:
    def test_reload_invalidates_replaced_kernel(self, snapshot_dir, figure1):
        registry = SynopsisRegistry(str(snapshot_dir))
        registry.scan()
        old_system = registry.get("fig1").system
        value, old_kernel = _warm(old_system)

        path = str(snapshot_dir / "fig1.json")
        persist.save(EstimationSystem.build(figure1, p_variance=1e9), path)
        _touch(path)

        entry = registry.get("fig1")
        assert entry.system is not old_system
        assert old_kernel.invalidated
        assert not old_kernel.supports(
            old_system.path_provider, old_system.encoding_table
        )
        # The replacement serves on its own fresh kernel.
        entry.system.estimate(QUERY)
        assert entry.system.kernel_active()
        # The detached old system still answers (legacy or rebuilt
        # kernel), and identically to before.
        assert old_system.estimate(QUERY) == value

    def test_last_good_fallback_keeps_kernel_warm(self, snapshot_dir):
        registry = SynopsisRegistry(str(snapshot_dir))
        registry.scan()
        system = registry.get("fig1").system
        value, kernel = _warm(system)

        path = str(snapshot_dir / "fig1.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        _touch(path)

        entry = registry.get("fig1")
        assert entry.load_error is not None
        # Degraded entries keep serving the same system on the same
        # (still valid) kernel: the synopsis underneath never changed.
        assert entry.system is system
        assert system.kernel() is kernel
        assert not kernel.invalidated
        assert entry.system.estimate(QUERY) == value

    def test_recovery_after_fallback_invalidates(self, snapshot_dir, figure1):
        registry = SynopsisRegistry(str(snapshot_dir))
        registry.scan()
        system = registry.get("fig1").system
        _, kernel = _warm(system)

        path = str(snapshot_dir / "fig1.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        _touch(path)
        assert registry.get("fig1").system is system

        persist.save(EstimationSystem.build(figure1, p_variance=1e9), path)
        _touch(path, offset_ns=2)
        entry = registry.get("fig1")
        assert entry.system is not system
        assert kernel.invalidated


def _library_document():
    root = el(
        "lib",
        el("rec", el("author"), el("title")),
        el("rec", el("author"), el("author"), el("title")),
    )
    return XmlDocument(root)


class TestLiveAppend:
    def test_append_invalidates_kernel(self):
        registry = SynopsisRegistry()
        entry = registry.register_live("lib", _library_document())
        system = entry.system
        value, kernel = _warm(system, "//rec/$author")
        assert value == pytest.approx(3.0)

        registry.append(
            "lib", entry.live.maintained.document.root,
            el("rec", el("author"), el("title")),
        )
        assert kernel.invalidated
        after = registry.get("lib")
        assert after.system is not system
        assert after.system.estimate("//rec/$author") == pytest.approx(4.0)
        assert after.system.kernel_active()

    def test_failed_append_keeps_kernel(self):
        from repro.stats.maintenance import RequiresRebuild

        registry = SynopsisRegistry()
        entry = registry.register_live("lib", _library_document())
        system = entry.system
        _, kernel = _warm(system, "//rec/$author")
        with pytest.raises(RequiresRebuild):
            registry.append(
                "lib", entry.live.maintained.document.root, el("rec", el("editor"))
            )
        assert not kernel.invalidated
        assert registry.get("lib").system is system


class TestSystemLevel:
    def test_invalidate_kernel_is_idempotent(self, figure1_system):
        figure1_system.estimate(QUERY)
        kernel = figure1_system.kernel()
        assert figure1_system.invalidate_kernel() is True
        assert kernel.invalidated
        assert figure1_system.invalidate_kernel() is False
        # A fresh kernel is compiled on demand afterwards.
        assert figure1_system.kernel() is not kernel
        assert figure1_system.kernel_active()

    def test_disabled_kernel_routes_legacy(self, figure1_system):
        value = figure1_system.estimate(QUERY)
        figure1_system.kernel_enabled = False
        try:
            assert figure1_system.kernel() is None
            assert not figure1_system.kernel_active()
            assert figure1_system.estimate(QUERY) == value
        finally:
            figure1_system.kernel_enabled = True
