"""Shared fixtures for the compiled-kernel tests.

One estimation system + workload per dataset, package scoped: the
equivalence tests sweep every workload class through both the kernel and
the legacy join, so building the synopses once matters.
"""

from __future__ import annotations

import pytest

from repro.core.system import EstimationSystem
from repro.workload import WorkloadGenerator


def _env(document, name, raw_simple=60, raw_branch=60, raw_order=80):
    workload = WorkloadGenerator(document, seed=13).full_workload(
        raw_simple=raw_simple, raw_branch=raw_branch, raw_order=raw_order
    )
    system = EstimationSystem.build(document, p_variance=0, o_variance=0)
    return name, system, workload


@pytest.fixture()
def figure1_system(figure1):
    return EstimationSystem.build(figure1, p_variance=0, o_variance=0)


@pytest.fixture(scope="package")
def kernel_envs(ssplays_small, dblp_small, xmark_small):
    """``(name, system, workload)`` triples for the three datasets."""
    return [
        _env(ssplays_small, "SSPlays"),
        _env(dblp_small, "DBLP"),
        _env(xmark_small, "XMark"),
    ]
