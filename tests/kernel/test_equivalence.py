"""Kernel path vs legacy path: bit-for-bit equivalence on real workloads.

The compiled kernel is a pure representation change — same fixpoint, same
iteration order for every float sum — so estimates must be *identical*
(``==``, not approx) across the full workload suite of all three
datasets, at the estimate, trace and join-result levels.
"""

from __future__ import annotations

import pytest

from repro.core.options import EstimateOptions
from repro.core.pathjoin import path_join


def _all_items(workload):
    return (
        workload.simple
        + workload.branch
        + workload.order_branch
        + workload.order_trunk
    )


def _spans(trace):
    stack = [trace["root"]]
    while stack:
        span = stack.pop()
        yield span["name"]
        stack.extend(span.get("children", ()))


def _legacy_estimates(system, items):
    system.kernel_enabled = False
    try:
        return [system.estimate(item.query) for item in items]
    finally:
        system.kernel_enabled = True


class TestEstimateEquivalence:
    def test_every_workload_query_is_bit_identical(self, kernel_envs):
        for name, system, workload in kernel_envs:
            items = _all_items(workload)
            assert items, name
            legacy = _legacy_estimates(system, items)
            kernel = [system.estimate(item.query) for item in items]
            mismatches = [
                (item.text, lhs, rhs)
                for item, lhs, rhs in zip(items, legacy, kernel)
                if lhs != rhs
            ]
            assert mismatches == [], "%s: %d mismatches" % (name, len(mismatches))

    def test_kernel_served_every_join(self, kernel_envs):
        for name, system, workload in kernel_envs:
            for item in _all_items(workload):
                system.estimate(item.query)
            stats = system.kernel().stats()
            assert stats["joins"] > 0, name
            assert stats["fallbacks"] == 0, name

    def test_traced_executions_match_untraced(self, kernel_envs):
        name, system, workload = kernel_envs[0]
        for item in _all_items(workload)[:40]:
            traced = system.estimate(item.text, options=EstimateOptions(trace=True))
            assert traced.value == system.estimate(item.query)
            assert "bitset_join" in set(_spans(traced.trace))

    def test_batch_equals_individual(self, kernel_envs):
        for name, system, workload in kernel_envs:
            items = _all_items(workload)[:60]
            texts = [item.text for item in items]
            batch = system.estimate(texts)
            singles = [system.estimate(item.query) for item in items]
            assert batch == singles, name

    def test_batch_with_duplicates_and_asts(self, kernel_envs):
        name, system, workload = kernel_envs[0]
        item = workload.simple[0]
        batch = system.estimate([item.text, item.query, item.text])
        assert batch == [system.estimate(item.query)] * 3


class TestJoinEquivalence:
    def test_join_results_identical(self, kernel_envs):
        """pids (values *and* dict order), depths and frequencies agree
        on every node of every order-free workload query."""
        for name, system, workload in kernel_envs:
            provider, table = system.path_provider, system.encoding_table
            kernel = system.kernel()
            for item in workload.no_order()[:80]:
                legacy = path_join(item.query, provider, table)
                compiled = path_join(
                    item.query, provider, table, kernel=kernel
                )
                assert compiled.empty == legacy.empty, item.text
                for node in item.query.nodes():
                    lhs, rhs = legacy.pids(node), compiled.pids(node)
                    assert rhs == lhs, item.text
                    assert list(rhs) == list(lhs), item.text  # insertion order
                    assert compiled.depths(node) == legacy.depths(node), item.text
                    assert compiled.frequency(node) == legacy.frequency(node), item.text

    def test_ablations_fall_back_to_legacy(self, kernel_envs):
        """The paper's ablation modes (no fixpoint / no depth filter) are
        not compiled; the system must route them around the kernel."""
        name, system, workload = kernel_envs[0]
        item = workload.branch[0]
        for kwargs in ({"fixpoint": False}, {"depth_consistent": False}):
            relaxed = system.estimate(item.query, **kwargs)
            system.kernel_enabled = False
            try:
                assert relaxed == system.estimate(item.query, **kwargs)
            finally:
                system.kernel_enabled = True


class TestHistogramProviders:
    def test_histogram_backed_synopsis_is_equivalent(self, ssplays_small):
        """Non-zero variance swaps in the p-histogram provider; the
        kernel must compile it identically too."""
        from repro.core.system import EstimationSystem
        from repro.workload import WorkloadGenerator

        system = EstimationSystem.build(ssplays_small, p_variance=100.0, o_variance=100.0)
        workload = WorkloadGenerator(ssplays_small, seed=13).full_workload(
            raw_simple=40, raw_branch=40, raw_order=50
        )
        items = _all_items(workload)
        legacy = _legacy_estimates(system, items)
        kernel = [system.estimate(item.query) for item in items]
        assert legacy == kernel
        assert system.kernel().stats()["fallbacks"] == 0
