"""Service-level kernel behavior: response fields, batch memo, metrics.

Traced requests bypass the compiled-plan memo, so their ``kernel`` field
is derived from the span tree of the real execution (a ``bitset_join``
span) rather than from plan state — the observability overhead gate
stays meaningful either way.
"""

from __future__ import annotations

import pytest

from repro.core.system import EstimationSystem
from repro.service import EstimationService, SynopsisRegistry

QUERY = "//A/B"


@pytest.fixture()
def service(figure1):
    system = EstimationSystem.build(figure1, p_variance=0, o_variance=0)
    registry = SynopsisRegistry()
    registry.register("fig1", system)
    return EstimationService(registry), system


class TestKernelField:
    def test_untraced_response_reports_kernel(self, service):
        svc, system = service
        body = svc.handle_estimate({"synopsis": "fig1", "query": QUERY})
        assert body["kernel"] is True
        assert svc.metrics.counter("kernel_hits_total") == 1

    def test_untraced_response_with_kernel_disabled(self, service):
        svc, system = service
        system.kernel_enabled = False
        body = svc.handle_estimate({"synopsis": "fig1", "query": QUERY})
        assert body["kernel"] is False
        assert svc.metrics.counter("kernel_misses_total") == 1

    def test_traced_response_reports_actual_join_path(self, service):
        svc, system = service
        body = svc.handle_estimate(
            {"synopsis": "fig1", "query": QUERY, "trace": True}
        )
        assert body["kernel"] is True
        assert body["result"]["trace"] is not None
        # Traced and untraced agree on the value, per the obs contract.
        untraced = svc.handle_estimate({"synopsis": "fig1", "query": QUERY})
        assert body["estimate"] == untraced["estimate"]

    def test_traced_response_with_kernel_disabled(self, service):
        svc, system = service
        system.kernel_enabled = False
        body = svc.handle_estimate(
            {"synopsis": "fig1", "query": QUERY, "trace": True}
        )
        assert body["kernel"] is False


class TestBatchMemo:
    def test_duplicate_queries_served_from_batch_memo(self, service):
        svc, system = service
        body = svc.handle_estimate(
            {"synopsis": "fig1", "queries": [QUERY, "//A", QUERY]}
        )
        assert body["count"] == 3
        first, second, third = body["results"]
        assert third["estimate"] == first["estimate"]
        assert third["route"] == first["route"]
        assert third["cached"] is True
        assert third["kernel"] == first["kernel"] is True

    def test_batch_results_equal_direct_estimates(self, service):
        svc, system = service
        texts = [QUERY, "//A", "//A[/B]/$C"]
        body = svc.handle_estimate({"synopsis": "fig1", "queries": texts})
        direct = [system.estimate(text) for text in texts]
        assert [r["estimate"] for r in body["results"]] == direct

    def test_batch_equals_estimate_batch(self, service):
        svc, system = service
        texts = [QUERY, "//A", QUERY]
        body = svc.handle_estimate({"synopsis": "fig1", "queries": texts})
        assert [r["estimate"] for r in body["results"]] == system.estimate(texts)


class TestKernelMetrics:
    def test_metrics_document_kernel_block(self, service):
        svc, system = service
        svc.handle_estimate({"synopsis": "fig1", "queries": [QUERY, "//A"]})
        block = svc.metrics_document()["kernel"]
        assert block["synopses"] == 1
        assert block["active"] == 1
        assert block["joins"] >= 2
        assert block["fallbacks"] == 0
        assert block["tag_tables"] > 0
        assert block["pairs"] > 0
        assert block["hits"] == 2
        assert block["misses"] == 0
        assert block["build_ms"] >= 0.0

    def test_metrics_prom_kernel_gauges(self, service):
        svc, system = service
        svc.handle_estimate({"synopsis": "fig1", "query": QUERY})
        text = svc.metrics_prom()
        assert "repro_kernel_joins_total" in text
        assert "repro_kernel_active_synopses" in text
        assert "repro_kernel_fallbacks_total 0" in text

    def test_kernel_block_counts_inactive_kernels(self, service):
        svc, system = service
        system.kernel_enabled = False
        svc.handle_estimate({"synopsis": "fig1", "query": QUERY})
        block = svc.metrics_document()["kernel"]
        assert block["synopses"] == 1
        assert block["active"] == 0
        assert block["misses"] == 1
