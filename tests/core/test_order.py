"""Tests for Section 5 order-axis estimation (Equations 3-5)."""

import pytest

from repro.core.order import estimate_with_order, sibling_order_edges
from repro.core.providers import ExactOrderStats, ExactPathStats
from repro.core.transform import UnsupportedQueryError
from repro.stats import collect_path_order, collect_pathid_frequencies
from repro.xmltree.builder import el
from repro.xmltree.document import XmlDocument
from repro.pathenc import label_document
from repro.xpath import Evaluator, parse_query


@pytest.fixture(scope="module")
def env(figure1_labeled):
    paths = ExactPathStats(collect_pathid_frequencies(figure1_labeled))
    orders = ExactOrderStats(collect_path_order(figure1_labeled))
    return paths, orders, figure1_labeled.encoding_table


def estimate(env, text):
    paths, orders, table = env
    return estimate_with_order(parse_query(text), paths, orders, table)


class TestEdgeDiscovery:
    def test_sibling_edges_found(self):
        query = parse_query("//A[/B/folls::C][/D]")
        edges = sibling_order_edges(query)
        assert len(edges) == 1
        assert edges[0][1].tag == "B" and edges[0][2].tag == "C"

    def test_no_order_falls_through(self, env, figure1_evaluator):
        query = parse_query("//A/B")
        paths, orders, table = env
        value = estimate_with_order(query, paths, orders, table)
        assert value == pytest.approx(float(figure1_evaluator.selectivity(query)))

    def test_multiple_order_edges_supported(self, env):
        paths, orders, table = env
        # Two order constraints; the generalized Eq-5 min handles them.
        query = parse_query("//A[/B[/D]/folls::C][/B/pres::C]")
        value = estimate_with_order(query, paths, orders, table)
        assert value >= 0.0

    def test_scoped_axis_rejected(self, env):
        paths, orders, table = env
        with pytest.raises(UnsupportedQueryError):
            estimate_with_order(parse_query("//A[/C/foll::D]"), paths, orders, table)


class TestEquations:
    def test_eq3_later_sibling(self, env):
        assert estimate(env, "//A[/C[/F]/folls::$B/D]") == pytest.approx(1.0)

    def test_eq3_earlier_sibling(self, env, figure1_evaluator):
        # Target C, which must precede a B/D sibling.
        query = parse_query("//A[/$C[/F]/folls::B/D]")
        value = estimate(env, "//A[/$C[/F]/folls::B/D]")
        actual = figure1_evaluator.selectivity(query)
        assert value == pytest.approx(float(actual))

    def test_eq4_deep_target(self, env):
        assert estimate(env, "//A[/C[/F]/folls::B/$D]") == pytest.approx(1.0)

    def test_eq5_trunk_target(self, env):
        assert estimate(env, "//$A[/C[/F]/folls::B/D]") == pytest.approx(1.0)

    def test_pres_direction(self, env, figure1_evaluator):
        # B preceded by... rewritten as pres: B[pres::C] means C before B.
        query = parse_query("//A[/$B/pres::C]")
        value = estimate(env, "//A[/$B/pres::C]")
        assert value == pytest.approx(float(figure1_evaluator.selectivity(query)))

    def test_unsatisfiable_order(self, env):
        assert estimate(env, "//A[/F/folls::E]") == 0.0


class TestAgainstEvaluatorOnCraftedDoc:
    @pytest.fixture(scope="class")
    def crafted(self):
        # Repetitive sibling groups with *uniform* order so the paper's
        # assumptions hold exactly and the estimates must equal the truth.
        groups = []
        for index in range(8):
            children = [el("head"), el("mid", el("leafm"))]
            if index % 2 == 0:
                children.append(el("tail", el("leaft")))
            groups.append(el("g", *children))
        doc = XmlDocument(el("top", *groups))
        labeled = label_document(doc)
        paths = ExactPathStats(collect_pathid_frequencies(labeled))
        orders = ExactOrderStats(collect_path_order(labeled))
        return doc, (paths, orders, labeled.encoding_table)

    @pytest.mark.parametrize(
        "text",
        [
            "//g[/$head/folls::mid]",
            "//g[/head/folls::$mid]",
            "//g[/$head/folls::tail/leaft]",
            "//g[/head/folls::tail/$leaft]",
            "//$g[/head/folls::mid/leafm]",
            "//g[/$mid/pres::head]",
            "//g[/mid/folls::$tail]",
        ],
    )
    def test_uniform_order_is_exact(self, crafted, text):
        doc, env_ = crafted
        value = estimate_with_order(parse_query(text), *env_)
        actual = Evaluator(doc).selectivity(parse_query(text))
        assert value == pytest.approx(float(actual))

    @pytest.mark.parametrize(
        "text",
        [
            "//$g[/head/folls::mid][/mid/folls::tail]",
            "//g[/head/folls::$mid][/head/folls::tail]",
        ],
    )
    def test_multi_edge_generalization_exact_on_uniform_data(self, crafted, text):
        doc, env_ = crafted
        value = estimate_with_order(parse_query(text), *env_)
        actual = Evaluator(doc).selectivity(parse_query(text))
        assert value == pytest.approx(float(actual))
