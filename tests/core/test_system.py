"""Tests for the EstimationSystem facade."""

import pytest

from repro import EstimationSystem
from repro.core.providers import ExactPathStats
from repro.histograms.phistogram import PHistogramSet
from repro.xpath import parse_query


class TestBuild:
    def test_histogram_mode_default(self, figure1):
        system = EstimationSystem.build(figure1)
        assert isinstance(system.path_provider, PHistogramSet)
        assert system.binary_tree is not None
        assert system.binary_tree.compressed

    def test_exact_mode(self, figure1):
        system = EstimationSystem.build(figure1, use_histograms=False)
        assert isinstance(system.path_provider, ExactPathStats)

    def test_skip_binary_tree(self, figure1):
        system = EstimationSystem.build(figure1, build_binary_tree=False)
        assert system.binary_tree is None
        assert "binary_tree" not in system.summary_sizes()

    def test_histogram_v0_equals_exact(self, figure1):
        hist = EstimationSystem.build(figure1, p_variance=0, o_variance=0)
        exact = EstimationSystem.build(figure1, use_histograms=False)
        for text in ("//A/B", "//C[/$E]/F", "//A[/C[/F]/folls::$B/D]"):
            assert hist.estimate(text) == pytest.approx(exact.estimate(text))


class TestEstimateRouting:
    def test_string_and_query_inputs_agree(self, figure1):
        system = EstimationSystem.build(figure1)
        text = "//A[/C/F]/B/$D"
        assert system.estimate(text) == system.estimate(parse_query(text))

    def test_order_route(self, figure1):
        system = EstimationSystem.build(figure1)
        assert system.estimate("//A[/C/folls::$B]") > 0

    def test_scoped_route_sums_variants(self, figure1):
        system = EstimationSystem.build(figure1)
        assert system.estimate("//A[/C/foll::$D]") == pytest.approx(2.0)

    def test_negative_scoped(self, figure1):
        system = EstimationSystem.build(figure1)
        assert system.estimate("//A[/F/foll::$E]") == 0.0


class TestSummarySizes:
    def test_all_keys_present(self, figure1):
        sizes = EstimationSystem.build(figure1).summary_sizes()
        for key in ("encoding_table", "pathid_table", "binary_tree",
                    "p_histogram", "o_histogram"):
            assert sizes[key] > 0

    def test_histogram_sizes_shrink_with_variance(self, ssplays_small):
        tight = EstimationSystem.build(ssplays_small, p_variance=0, o_variance=0)
        loose = EstimationSystem.build(ssplays_small, p_variance=10, o_variance=10)
        assert loose.summary_sizes()["p_histogram"] <= tight.summary_sizes()["p_histogram"]
        assert loose.summary_sizes()["o_histogram"] <= tight.summary_sizes()["o_histogram"]

    def test_exact_mode_has_no_histogram_sizes(self, figure1):
        sizes = EstimationSystem.build(figure1, use_histograms=False).summary_sizes()
        assert "p_histogram" not in sizes and "o_histogram" not in sizes


class TestAblationSwitches:
    def test_single_pass_flag_runs(self, figure1):
        system = EstimationSystem.build(figure1)
        value = system.estimate("//A[/C/F]/B/$D", fixpoint=False)
        assert value >= system.estimate("//A[/C/F]/B/$D")

    def test_pairwise_flag_runs(self, figure1):
        system = EstimationSystem.build(figure1)
        assert system.estimate("//A/B", depth_consistent=False) == pytest.approx(4.0)
