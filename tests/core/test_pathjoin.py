"""Tests for the path join: constraints, pruning, fixpoint, depth mode."""

import pytest

from repro.core.pathjoin import derive_constraints, path_join
from repro.core.providers import ExactPathStats
from repro.pathenc.relationship import Axis
from repro.stats import collect_pathid_frequencies
from repro.xpath import parse_query


@pytest.fixture(scope="module")
def env(figure1_labeled):
    table = collect_pathid_frequencies(figure1_labeled)
    return ExactPathStats(table), figure1_labeled.encoding_table


class TestConstraintDerivation:
    def axes(self, text):
        return [
            (upper.tag, axis, lower.tag)
            for upper, axis, lower in derive_constraints(parse_query(text))
        ]

    def test_structural_edges(self):
        assert self.axes("//A/B//C") == [
            ("A", Axis.CHILD, "B"),
            ("B", Axis.DESCENDANT, "C"),
        ]

    def test_sibling_order_edge_lifts_to_parent(self):
        constraints = self.axes("//A[/C/folls::B]")
        assert ("A", Axis.CHILD, "C") in constraints
        assert ("A", Axis.CHILD, "B") in constraints

    def test_sibling_order_with_descendant_parent(self):
        constraints = self.axes("//A[//C/folls::B]")
        assert ("A", Axis.DESCENDANT, "B") in constraints

    def test_scoped_order_becomes_descendant(self):
        constraints = self.axes("//A[/C/foll::D]")
        assert ("A", Axis.DESCENDANT, "D") in constraints

    def test_order_on_root_skipped(self):
        # No structural parent: no upper constraint derivable.
        constraints = self.axes("//C/folls::B")
        assert constraints == []


class TestPruning:
    def test_figure3_both_directions(self, env, pid):
        provider, table = env
        query = parse_query("//A[/C/F]/B/D")
        join = path_join(query, provider, table)
        assert set(join.pids(query.root)) == {pid[7]}
        assert set(join.pids(query.find("C"))) == {pid[3]}

    def test_negative_query_empties_everything(self, env):
        provider, table = env
        query = parse_query("//F/E")
        join = path_join(query, provider, table)
        assert join.empty
        assert join.frequency(query.root) == 0

    def test_unknown_tag(self, env):
        provider, table = env
        join = path_join(parse_query("//A/Zebra"), provider, table)
        assert join.empty

    def test_absolute_root_filter(self, env, pid):
        provider, table = env
        query = parse_query("/Root/A")
        join = path_join(query, provider, table)
        assert set(join.pids(query.root)) == {pid[9]}
        assert path_join(parse_query("/A"), provider, table).empty

    def test_frequency_sums_remaining(self, env):
        provider, table = env
        query = parse_query("//A/B")
        join = path_join(query, provider, table)
        assert join.frequency(query.find("B")) == 4  # p5 x3 + p8 x1


class TestFixpointVsSinglePass:
    def test_single_pass_can_keep_more(self, env):
        """A chain where pruning must propagate backwards."""
        provider, table = env
        # //Root/A/C/F: C loses p2 (no F below), then A must lose p6.
        query = parse_query("/Root/A/C/F")
        multi = path_join(query, provider, table, fixpoint=True)
        single = path_join(query, provider, table, fixpoint=False)
        a = query.find("A")
        assert set(multi.pids(a)) <= set(single.pids(a))

    def test_fixpoint_is_stable(self, env):
        provider, table = env
        query = parse_query("//A[/C/F]/B/D")
        first = path_join(query, provider, table, fixpoint=True)
        again = path_join(query, provider, table, fixpoint=True)
        for node in query.nodes():
            assert first.pids(node) == again.pids(node)


class TestDepthConsistency:
    @pytest.fixture()
    def recursive_env(self):
        from repro.pathenc import label_document
        from repro.xmltree.builder import el
        from repro.xmltree.document import XmlDocument

        # r/x/x/y plus r/x/z: the outer x is not below any x.
        root = el("r", el("x", el("x", el("y")), el("z")))
        labeled = label_document(XmlDocument(root))
        provider = ExactPathStats(collect_pathid_frequencies(labeled))
        return provider, labeled.encoding_table

    def test_depth_mode_prunes_cross_level_matches(self, recursive_env):
        provider, table = recursive_env
        query = parse_query("//x/$x")
        join = path_join(query, provider, table, depth_consistent=True)
        # Only the inner x (depth 2) matches the lower position.
        assert join.frequency(query.target) == 1

    def test_pairwise_mode_overcounts(self, recursive_env):
        provider, table = recursive_env
        query = parse_query("//x/$x")
        join = path_join(query, provider, table, depth_consistent=False)
        assert join.frequency(query.target) >= 1

    def test_depths_exposed(self, recursive_env):
        provider, table = recursive_env
        query = parse_query("//x/$x")
        join = path_join(query, provider, table, depth_consistent=True)
        depths = join.depths(query.target)
        assert all(2 in ds or 1 in ds for ds in depths.values())
