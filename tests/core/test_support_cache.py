"""Tests for the static support cache behind the depth-consistent join."""

import pytest

from repro.core.pathjoin import _SupportCache, path_join
from repro.core.providers import ExactPathStats
from repro.pathenc import label_document
from repro.pathenc.encoding import EncodingTable
from repro.pathenc.relationship import Axis
from repro.stats import collect_pathid_frequencies
from repro.xpath import parse_query


@pytest.fixture()
def env(figure1):
    labeled = label_document(figure1)
    provider = ExactPathStats(collect_pathid_frequencies(labeled))
    return provider, labeled.encoding_table


class TestSupportMaps:
    def test_child_support(self, env, pid):
        _, table = env
        down, up, down_alive, up_alive = _SupportCache.support(
            table, "A", [pid[6], pid[7], pid[8]], "B", [pid[5], pid[8]], child=True
        )
        # B(p5) at depth 2 is supported by every A at depth 1.
        assert set(down[(pid[5], 2)]) == {pid[6], pid[7], pid[8]}
        # B(p8) at depth 2 only by A(p8) (equal ids, Case 1).
        assert set(down[(pid[8], 2)]) == {pid[8]}
        assert down_alive[pid[5]] == {2}
        assert up_alive[pid[7]] == {1}

    def test_no_support_for_incompatible(self, env, pid):
        _, table = env
        down, _, _, _ = _SupportCache.support(
            table, "C", [pid[2]], "F", [pid[1]], child=True
        )
        assert down == {}  # p2 cannot contain p1 (Example 4.1)

    def test_cache_reuse_and_extension(self, env, pid):
        _, table = env
        first = _SupportCache.support(table, "A", [pid[6]], "B", [pid[5]], True)
        again = _SupportCache.support(table, "A", [pid[6]], "B", [pid[5]], True)
        assert first is again  # cached object identity
        extended = _SupportCache.support(
            table, "A", [pid[6], pid[7]], "B", [pid[5]], True
        )
        assert (pid[5], 2) in extended[0]
        assert set(extended[0][(pid[5], 2)]) >= {pid[6], pid[7]}

    def test_separate_tables_do_not_share(self, figure1, pid):
        table_a = EncodingTable.from_document(figure1)
        table_b = EncodingTable.from_document(figure1)
        a = _SupportCache.support(table_a, "A", [pid[6]], "B", [pid[5]], True)
        b = _SupportCache.support(table_b, "A", [pid[6]], "B", [pid[5]], True)
        assert a is not b


class TestJoinSharedStateSafety:
    def test_initial_state_not_mutated_by_joins(self, env, pid):
        provider, table = env
        # A pruning join must not corrupt the provider's cached initial
        # state for subsequent joins.
        narrowing = parse_query("//A/C/F")
        wide = parse_query("//A")
        first = path_join(narrowing, provider, table)
        assert set(first.pids(narrowing.root)) == {pid[7]}
        second = path_join(wide, provider, table)
        assert set(second.pids(wide.root)) == {pid[6], pid[7], pid[8]}

    def test_repeated_joins_are_deterministic(self, env):
        provider, table = env
        query = parse_query("//A[/C/F]/B/D")
        results = [path_join(query, provider, table) for _ in range(3)]
        for node in query.nodes():
            assert results[0].pids(node) == results[1].pids(node) == results[2].pids(node)
