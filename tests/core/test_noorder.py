"""Tests for Section 4 estimation (Theorem 4.1 and Equation 2)."""

import pytest

from repro.core.noorder import (
    branching_ancestor,
    estimate_no_order,
    is_trunk_target,
    prune_to_spine,
)
from repro.core.providers import ExactPathStats
from repro.stats import collect_pathid_frequencies
from repro.xpath import parse_query


@pytest.fixture(scope="module")
def env(figure1_labeled):
    table = collect_pathid_frequencies(figure1_labeled)
    return ExactPathStats(table), figure1_labeled.encoding_table


class TestTrunkDetection:
    def test_simple_chain_is_all_trunk(self):
        query = parse_query("//A/B/C")
        for node in query.nodes():
            assert is_trunk_target(query, node)

    def test_branch_parts(self):
        query = parse_query("//A[/B/C]/D/E")
        assert is_trunk_target(query, query.root)
        assert not is_trunk_target(query, query.find("B"))
        assert not is_trunk_target(query, query.find("C"))
        # D and E hang below the branching node A -> branch part too.
        assert not is_trunk_target(query, query.find("D"))

    def test_branching_ancestor_is_deepest(self):
        query = parse_query("//A[/X]/B[/Y]/C")
        assert branching_ancestor(query, query.find("C")) is query.find("B")
        assert branching_ancestor(query, query.find("X")) is query.root

    def test_branches_below_target_do_not_matter(self):
        query = parse_query("//A/B[/C][/D]")
        assert is_trunk_target(query, query.find("B"))


class TestPruneToSpine:
    def test_drops_other_branches(self):
        query = parse_query("//A[/C/F]/B/D")
        pruned = prune_to_spine(query, query.find("B"))
        assert pruned.to_string() == "//A/$B/D"

    def test_keeps_target_subtree(self):
        query = parse_query("//A[/X]/B[/C]/D")
        pruned = prune_to_spine(query, query.find("B"))
        assert pruned.to_string() == "//A/$B[/C]/D"

    def test_deep_branch_target(self):
        query = parse_query("//A[/C[/F]/E]/B")
        pruned = prune_to_spine(query, query.find("E"))
        assert pruned.to_string() == "//A[/C/$E]"


class TestEstimates:
    def test_theorem_4_1(self, env, figure1_evaluator):
        provider, table = env
        for text in ("//A/B", "//A//E", "/Root/A/C"):
            query = parse_query(text)
            estimate = estimate_no_order(query, provider, table)
            assert estimate == pytest.approx(
                float(figure1_evaluator.selectivity(query))
            )

    def test_equation_2_compensates(self, env, figure1_evaluator):
        provider, table = env
        query = parse_query("//C[/$E]/F")
        assert estimate_no_order(query, provider, table) == pytest.approx(1.0)

    def test_negative_query(self, env):
        provider, table = env
        assert estimate_no_order(parse_query("//F/E"), provider, table) == 0.0

    def test_recursive_branching(self, env):
        provider, table = env
        # Two nested branching nodes exercise the recursive Eq-2 rule.
        query = parse_query("//A[/B]/C[/F]/$E")
        estimate = estimate_no_order(query, provider, table)
        assert estimate >= 0.0

    def test_explicit_target_param(self, env):
        provider, table = env
        query = parse_query("//A[/C/F]/B/D")
        b_estimate = estimate_no_order(query, provider, table, target=query.find("B"))
        assert b_estimate == pytest.approx(4 / 3)
