"""Tests for the explanation API."""

import pytest

from repro import EstimationSystem
from repro.core.explain import EstimateReport, explain


@pytest.fixture(scope="module")
def system(figure1):
    return EstimationSystem.build(figure1, p_variance=0, o_variance=0)


QUERIES_AND_RULES = [
    ("//A/B", "theorem-4.1"),
    ("/Root//D", "theorem-4.1"),
    ("//C[/$E]/F", "equation-2"),
    ("//A[/C/F]/B/$D", "equation-2"),
    ("//A[/C[/F]/folls::$B/D]", "equation-3"),
    ("//A[/$C[/F]/folls::B/D]", "equation-3"),
    ("//A[/C[/F]/folls::B/$D]", "equation-4"),
    ("//$A[/C[/F]/folls::B/D]", "equation-5"),
    ("//A[/C/foll::$D]", "example-5.3-rewrite"),
    ("//F/E", "empty-join"),
]


class TestRuleSelection:
    @pytest.mark.parametrize("text,rule", QUERIES_AND_RULES)
    def test_rule(self, system, text, rule):
        assert explain(system, text).rule == rule

    @pytest.mark.parametrize("text,rule", QUERIES_AND_RULES)
    def test_estimate_matches_system(self, system, text, rule):
        report = explain(system, text)
        assert report.estimate == pytest.approx(system.estimate(text))


class TestDetails:
    def test_theorem_details(self, system):
        report = explain(system, "//A/B")
        assert report.details["f_Q(n)"] == 4.0
        assert report.details["surviving_pids"] == 2.0

    def test_equation3_details(self, system):
        report = explain(system, "//A[/C[/F]/folls::$B/D]")
        assert report.details["S_ordQ'(B)"] == 2.0
        assert report.details["S_Q'(B)"] == pytest.approx(8 / 3)
        assert report.details["S_Q(n)"] == pytest.approx(4 / 3)

    def test_equation5_details(self, system):
        report = explain(system, "//$A[/C[/F]/folls::B/D]")
        assert set(report.details) == {
            "S_Q(n)", "S_ord(earlier=C)", "S_ord(later=B)"
        }

    def test_rewrite_variants(self, system):
        report = explain(system, "//A[/C/foll::$D]")
        assert len(report.variants) == 1
        assert report.variants[0].rule == "equation-4"

    def test_render(self, system):
        text = explain(system, "//A[/C/foll::$D]").render()
        assert "example-5.3-rewrite" in text
        assert "equation-4" in text
        assert "estimate=" in text


class TestReportShape:
    def test_dataclass_fields(self, system):
        report = explain(system, "//A/B")
        assert isinstance(report, EstimateReport)
        assert report.target_tag == "B"
        assert report.query_text == "//A/B"
        assert report.variants == []
