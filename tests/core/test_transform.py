"""Tests for query-pattern transformations."""

import pytest

from repro.core.transform import (
    UnsupportedQueryError,
    clone_query,
    pattern_subtree_ids,
)
from repro.xpath import parse_query
from repro.xpath.ast import QueryAxis


class TestCloneIdentity:
    def test_plain_clone_roundtrips(self):
        query = parse_query("//A[/B[/C]/D]/E")
        clone, mapping = clone_query(query)
        assert clone.to_string() == query.to_string()
        assert clone.root is not query.root
        for node in query.nodes():
            assert mapping[node.node_id].tag == node.tag

    def test_target_mapping(self):
        query = parse_query("//A[/$B]/C")
        clone, mapping = clone_query(query)
        assert clone.target is mapping[query.find("B").node_id]

    def test_explicit_target_override(self):
        query = parse_query("//A[/B]/C")
        clone, _ = clone_query(query, target=query.find("B"))
        assert clone.target.tag == "B"


class TestDropSubtree:
    def test_drop_strips_structural_edges(self):
        query = parse_query("//A[/B[/X]/Y]/C")
        b = query.find("B")
        clone, _ = clone_query(query, drop_subtree_of={b.node_id})
        assert clone.to_string() == "//A[/B]/C"

    def test_drop_keeps_order_edges(self):
        query = parse_query("//A[/B[/X]/folls::C/D]")
        b = query.find("B")
        clone, _ = clone_query(query, drop_subtree_of={b.node_id})
        assert clone.to_string() == "//A[/B/folls::C/D]"

    def test_dropping_target_subtree_fails(self):
        query = parse_query("//A[/B/$X]")
        with pytest.raises(UnsupportedQueryError):
            clone_query(query, drop_subtree_of={query.find("B").node_id})


class TestOrderLifting:
    def test_folls_becomes_sibling_predicate(self):
        query = parse_query("//A[/B/folls::C/D]")
        clone, _ = clone_query(query, order_to_structural=True)
        # C/D re-attaches to A (B's structural parent) as a predicate.
        rendered = clone.to_string()
        assert "folls" not in rendered
        assert rendered == "//A[/B][/C/D]"

    def test_descendant_parent_keeps_axis(self):
        query = parse_query("//A[//B/folls::C]")
        clone, _ = clone_query(query, order_to_structural=True)
        a = clone.root
        axes = {e.node.tag: e.axis for e in a.predicate_edges()}
        assert axes["C"] is QueryAxis.DESCENDANT

    def test_scoped_becomes_descendant(self):
        query = parse_query("//A[/B/foll::C]")
        clone, _ = clone_query(query, order_to_structural=True)
        axes = {e.node.tag: e.axis for e in clone.root.predicate_edges()}
        assert axes["C"] is QueryAxis.DESCENDANT

    def test_order_on_root_rejected(self):
        query = parse_query("//B/folls::C")
        with pytest.raises(UnsupportedQueryError):
            clone_query(query, order_to_structural=True)


class TestSubtreeIds:
    def test_structural_only(self):
        query = parse_query("//A[/B/folls::C/D]")
        b = query.find("B")
        ids = pattern_subtree_ids(query, b, cross_order=False)
        assert {query.nodes()[i].tag for i in ids} == {"B"}

    def test_cross_order(self):
        query = parse_query("//A[/B/folls::C/D]")
        b = query.find("B")
        ids = pattern_subtree_ids(query, b, cross_order=True)
        assert {query.nodes()[i].tag for i in ids} == {"B", "C", "D"}
