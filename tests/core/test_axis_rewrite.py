"""Tests for the foll/pre → folls/pres rewrite (Example 5.3)."""

import pytest

from repro.core.axis_rewrite import rewrite_scoped_order_query, scoped_order_edges
from repro.core.providers import ExactPathStats
from repro.core.transform import UnsupportedQueryError
from repro.stats import collect_pathid_frequencies
from repro.pathenc import label_document
from repro.xmltree.builder import el
from repro.xmltree.document import XmlDocument
from repro.xpath import parse_query


@pytest.fixture(scope="module")
def env(figure1_labeled):
    return (
        ExactPathStats(collect_pathid_frequencies(figure1_labeled)),
        figure1_labeled.encoding_table,
    )


class TestExample53:
    def test_single_chain(self, env, pid):
        provider, table = env
        variants = rewrite_scoped_order_query(
            parse_query("//A[/C/foll::$D]"), provider, table
        )
        assert [v.to_string() for v in variants] == ["//A[/C/folls::B/$D]"]

    def test_target_preserved(self, env):
        provider, table = env
        variants = rewrite_scoped_order_query(
            parse_query("//A[/C/foll::$D]"), provider, table
        )
        assert variants[0].target.tag == "D"

    def test_no_scoped_edges_identity(self, env):
        provider, table = env
        query = parse_query("//A/B")
        assert rewrite_scoped_order_query(query, provider, table) == [query]

    def test_preceding_direction(self, env):
        provider, table = env
        variants = rewrite_scoped_order_query(
            parse_query("//A[/B/pre::$F]"), provider, table
        )
        assert [v.to_string() for v in variants] == ["//A[/B/pres::C/$F]"]

    def test_unsatisfiable_yields_empty(self, env):
        provider, table = env
        variants = rewrite_scoped_order_query(
            parse_query("//F[/E/foll::Zebra]"), provider, table
        )
        assert variants == []

    def test_multiple_scoped_edges_rejected(self, env):
        provider, table = env
        with pytest.raises(UnsupportedQueryError):
            rewrite_scoped_order_query(
                parse_query("//A[/B/foll::C][/D/foll::E]"), provider, table
            )


class TestMultipleChains:
    def test_two_distinct_chains(self):
        # t under both u/t and v/t: foll::t from w expands to two queries.
        root = el(
            "r",
            el("g", el("w"), el("u", el("t")), el("v", el("t"))),
            el("g", el("w"), el("u", el("t"))),
        )
        labeled = label_document(XmlDocument(root))
        provider = ExactPathStats(collect_pathid_frequencies(labeled))
        variants = rewrite_scoped_order_query(
            parse_query("//g[/w/foll::$t]"), provider, labeled.encoding_table
        )
        texts = sorted(v.to_string() for v in variants)
        assert texts == ["//g[/w/folls::u/$t]", "//g[/w/folls::v/$t]"]

    def test_direct_sibling_chain_is_empty(self):
        root = el("r", el("g", el("w"), el("t")))
        labeled = label_document(XmlDocument(root))
        provider = ExactPathStats(collect_pathid_frequencies(labeled))
        variants = rewrite_scoped_order_query(
            parse_query("//g[/w/foll::$t]"), provider, labeled.encoding_table
        )
        assert [v.to_string() for v in variants] == ["//g[/w/folls::$t]"]


class TestEdgeCollection:
    def test_scoped_order_edges(self):
        query = parse_query("//A[/B/foll::C]")
        edges = scoped_order_edges(query)
        assert len(edges) == 1
        assert edges[0][1].tag == "B" and edges[0][2].tag == "C"
