"""Every worked example of the paper, end to end, on the Figure 1 document.

These tests pin the reproduction to the published numbers: if any of them
breaks, the system no longer computes what the paper computes.
"""

import pytest

from repro import EstimationSystem
from repro.xpath import parse_query


@pytest.fixture(scope="module")
def system(figure1):
    return EstimationSystem.build(figure1, p_variance=0, o_variance=0)


class TestSection2:
    def test_example_2_1_pathid_table(self, system, pid):
        assert system.labeled.distinct_pathids() == [pid[i] for i in range(1, 10)]

    def test_example_2_2_a_parent_of_b_at_p8(self, system, pid):
        # Checked indirectly: the join keeps (A:p8, B:p8) for //A/B.
        join = system.join(parse_query("//A/B"))
        assert pid[8] in join.pids(parse_query("//A/B").root) or True
        result = system.join("//A/B")
        a_pids = set(result.pids(result.query.root))
        assert pid[8] in a_pids


class TestSection3:
    def test_figure_2a(self, system, pid):
        table = system.pathid_table
        assert table.frequency_map("A") == {pid[6]: 1, pid[7]: 1, pid[8]: 1}
        assert table.frequency_map("E") == {pid[2]: 2, pid[4]: 1}

    def test_figure_2b(self, system, pid):
        grid = system.order_table.grid("B")
        assert grid.g_before(pid[5], "C") == 1
        assert grid.g_after(pid[5], "C") == 2


class TestSection4:
    def test_example_4_1_path_join(self, system, pid):
        """Figure 3: Q1 = //A[/C/F]/B/D after the join."""
        query = parse_query("//A[/C/F]/B/D")
        join = system.join(query)
        assert join.pids(query.root) == {pid[7]: 1}
        assert join.pids(query.find("C")) == {pid[3]: 1}
        assert join.pids(query.find("F")) == {pid[1]: 1}
        assert join.pids(query.find("B")) == {pid[5]: 3}
        assert join.pids(query.find("D")) == {pid[5]: 4}

    def test_example_4_2_simple_query(self, system):
        """//A//C: selectivity 2 for both A and C."""
        assert system.estimate("//$A//C") == 2
        assert system.estimate("//A//$C") == 2

    def test_example_4_3_branch_overestimation_basis(self, system, pid):
        """Q2 = //C[/E]/F: the raw join keeps (p2,2) for E."""
        query = parse_query("//C[/$E]/F")
        join = system.join(query)
        assert join.pids(query.target) == {pid[2]: 2}

    def test_example_4_5_branch_estimation(self, system):
        """Equation 2 corrects E's estimate to 1."""
        assert system.estimate("//C[/$E]/F") == pytest.approx(1.0)
        # C itself (trunk) stays exact.
        assert system.estimate("//$C[/E]/F") == pytest.approx(1.0)


class TestSection5:
    def test_example_5_1_sibling_target(self, system):
        """S(B) for A[/C[/F]/folls::B/D] = 2 * 1.3 / 2.6 = 1."""
        assert system.estimate("//A[/C[/F]/folls::$B/D]") == pytest.approx(1.0)

    def test_example_5_1_intermediates(self, system):
        # S_Q1(B) ~ 1.3 and S_Q1'(B) ~ 2.6 via the no-order machinery.
        assert system.estimate("//A[/C/F]/$B/D") == pytest.approx(4 / 3)
        assert system.estimate("//A[/C]/$B/D") == pytest.approx(8 / 3)

    def test_example_5_2_deep_target(self, system):
        """S(D) = 1.3 * 2 / 2.6 = 1."""
        assert system.estimate("//A[/C[/F]/folls::B/$D]") == pytest.approx(1.0)

    def test_trunk_target_equation_5(self, system):
        assert system.estimate("//$A[/C[/F]/folls::B/D]") == pytest.approx(1.0)

    def test_example_5_3_following_rewrite(self, system, figure1_evaluator):
        """//A[/C/foll::D] rewrites through B and matches the evaluator."""
        query = parse_query("//A[/C/foll::$D]")
        estimate = system.estimate(query)
        actual = figure1_evaluator.selectivity(query)
        assert estimate == pytest.approx(float(actual)) == 2.0


class TestExactnessOnFigure1:
    @pytest.mark.parametrize(
        "text",
        [
            "//A", "//B", "//C", "//D", "//E", "//F",
            "/Root/A", "//A/B", "//A/B/D", "//A/C/E", "//B/E",
            "//A//E", "/Root//D",
        ],
    )
    def test_simple_queries_exact(self, system, figure1_evaluator, text):
        """Theorem 4.1 at v=0: simple queries are exact."""
        query = parse_query(text)
        assert system.estimate(query) == pytest.approx(
            float(figure1_evaluator.selectivity(query))
        )
