"""Traffic schedules: determinism, modulation, trace round-trips."""

from __future__ import annotations

import math

import pytest

from repro.reliability.shedding import BULK_TIER, INTERACTIVE_TIER, STANDARD_TIER
from repro.traffic import (
    TrafficConfig,
    TrafficEvent,
    generate_schedule,
    load_trace,
    offered_rate,
    save_trace,
)

QUERIES = ["//A/B", "//A//$C", "//F/E", "//A[/C]/$B", "/Root/$A"]


def config(**overrides):
    values = dict(
        seed=7,
        duration_s=10.0,
        base_qps=40.0,
        diurnal_amplitude=0.4,
        diurnal_period_s=10.0,
        burst_rate=0.3,
        burst_factor=3.0,
        burst_duration_s=1.0,
        slow_fraction=0.05,
    )
    values.update(overrides)
    return TrafficConfig(**values)


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        first = generate_schedule(config(), QUERIES)
        second = generate_schedule(config(), QUERIES)
        assert first == second
        assert len(first) > 100

    def test_different_seed_different_schedule(self):
        assert generate_schedule(config(), QUERIES) != generate_schedule(
            config(seed=8), QUERIES
        )

    def test_scaled_preserves_everything_but_qps(self):
        base = config()
        scaled = base.scaled(200.0)
        assert scaled.base_qps == 200.0
        assert scaled.seed == base.seed
        assert scaled.duration_s == base.duration_s

    def test_events_are_sorted_and_inside_the_run(self):
        events = generate_schedule(config(), QUERIES)
        times = [event.at_s for event in events]
        assert times == sorted(times)
        assert all(0.0 < t < 10.0 for t in times)


class TestShape:
    def test_mean_rate_tracks_base_qps(self):
        events = generate_schedule(
            config(diurnal_amplitude=0.0, burst_rate=0.0, duration_s=30.0),
            QUERIES,
        )
        rate = len(events) / 30.0
        # Poisson with lambda = 40*30 = 1200: +-5 sigma is ~±5.8/s.
        assert abs(rate - 40.0) < 6.0

    def test_tier_mix_follows_the_weights(self):
        events = generate_schedule(config(duration_s=30.0), QUERIES)
        counts = {INTERACTIVE_TIER: 0, STANDARD_TIER: 0, BULK_TIER: 0}
        for event in events:
            counts[event.tier] += 1
        total = sum(counts.values())
        assert counts[INTERACTIVE_TIER] / total == pytest.approx(0.7, abs=0.1)
        assert counts[BULK_TIER] / total == pytest.approx(0.1, abs=0.06)

    def test_bulk_events_carry_batches(self):
        events = generate_schedule(config(batch_size=8), QUERIES)
        for event in events:
            if event.tier == BULK_TIER:
                assert len(event.queries) == 8
            else:
                assert len(event.queries) == 1

    def test_zipf_skews_toward_hot_queries(self):
        events = generate_schedule(
            config(zipf_s=1.5, duration_s=30.0), QUERIES
        )
        hits = {query: 0 for query in QUERIES}
        for event in events:
            for query in event.queries:
                hits[query] += 1
        assert hits[QUERIES[0]] > hits[QUERIES[-1]] * 2

    def test_slow_fraction_marks_events(self):
        events = generate_schedule(config(slow_fraction=0.5), QUERIES)
        slow = sum(1 for event in events if event.slow)
        assert 0 < slow < len(events)
        assert slow / len(events) == pytest.approx(0.5, abs=0.15)

    def test_offered_rate_diurnal_and_burst(self):
        cfg = config()
        quarter = cfg.diurnal_period_s / 4.0
        assert offered_rate(cfg, quarter) == pytest.approx(
            cfg.base_qps * 1.4
        )
        assert offered_rate(cfg, 3 * quarter) == pytest.approx(
            cfg.base_qps * (1 - 0.4)
        )
        assert offered_rate(cfg, quarter, bursting=True) == pytest.approx(
            cfg.base_qps * 1.4 * 3.0
        )

    def test_bursts_raise_the_event_count(self):
        calm = generate_schedule(
            config(burst_rate=0.0, diurnal_amplitude=0.0, duration_s=20.0),
            QUERIES,
        )
        bursty = generate_schedule(
            config(
                burst_rate=0.5, burst_factor=4.0, diurnal_amplitude=0.0,
                duration_s=20.0,
            ),
            QUERIES,
        )
        assert len(bursty) > len(calm) * 1.3


class TestValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"duration_s": 0},
            {"base_qps": 0},
            {"diurnal_amplitude": 1.0},
            {"batch_size": 0},
            {"burst_factor": 0.5},
            {"slow_fraction": 1.5},
            {"interactive_weight": -1.0},
            {"interactive_weight": 0, "standard_weight": 0, "bulk_weight": 0},
        ],
    )
    def test_bad_config_rejected(self, overrides):
        with pytest.raises(ValueError):
            config(**overrides)

    def test_empty_query_pool_rejected(self):
        with pytest.raises(ValueError):
            generate_schedule(config(), [])


class TestTraceRoundTrip:
    def test_jsonl_round_trip_is_lossless(self, tmp_path):
        events = generate_schedule(config(), QUERIES)
        path = str(tmp_path / "trace.jsonl")
        save_trace(events, path)
        assert load_trace(path) == events

    def test_malformed_line_names_the_line(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        with open(path, "w") as handle:
            handle.write('{"at_s": 0.1, "tier": "interactive", "queries": ["//A"]}\n')
            handle.write("not json\n")
        with pytest.raises(ValueError) as info:
            load_trace(path)
        assert ":2:" in str(info.value)

    def test_load_sorts_by_time(self, tmp_path):
        path = str(tmp_path / "shuffled.jsonl")
        events = [
            TrafficEvent(0.5, INTERACTIVE_TIER, ("//A",)),
            TrafficEvent(0.1, BULK_TIER, ("//A", "//B")),
        ]
        save_trace(events, path)
        loaded = load_trace(path)
        assert [event.at_s for event in loaded] == [0.1, 0.5]
