"""Shared fixtures for the traffic-harness tests."""

from __future__ import annotations

import pytest

from repro import EstimationSystem, persist


@pytest.fixture(scope="module")
def figure1_system(figure1):
    return EstimationSystem.build(figure1, p_variance=0, o_variance=0)


@pytest.fixture()
def snapshot_dir(tmp_path, figure1_system):
    persist.save(figure1_system, str(tmp_path / "fig1.json"))
    return tmp_path
