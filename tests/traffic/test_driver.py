"""TrafficDriver: pacing, outcome classification, live-server replay."""

from __future__ import annotations

import threading

import pytest

from repro.reliability.shedding import BULK_TIER, INTERACTIVE_TIER
from repro.service import ServerConfig, ServiceError, serve
from repro.traffic import (
    EventOutcome,
    TrafficConfig,
    TrafficDriver,
    TrafficEvent,
    generate_schedule,
)


def events_at(*times):
    return [
        TrafficEvent(t, INTERACTIVE_TIER, ("//A/B",)) for t in times
    ]


class TestSeamDriver:
    def driver(self, request_fn, **kwargs):
        kwargs.setdefault("workers", 4)
        return TrafficDriver(
            "127.0.0.1", 0, "fig1", request_fn=request_fn, **kwargs
        )

    def test_outcomes_keep_schedule_order(self):
        def request_fn(event):
            return "ok"

        report = self.driver(request_fn).run(events_at(0.03, 0.01, 0.02))
        assert [outcome.at_s for outcome in report.outcomes] == [0.01, 0.02, 0.03]
        assert report.served == 3
        assert report.shed == 0

    def test_open_loop_pacing_respects_the_schedule(self):
        stamps = []
        lock = threading.Lock()

        def request_fn(event):
            with lock:
                stamps.append(event.at_s)
            return "ok"

        report = self.driver(request_fn).run(events_at(0.0, 0.25))
        # Wall time covers the schedule horizon: the second event was
        # not fired early just because the first finished instantly.
        assert report.wall_s >= 0.25

    def test_time_scale_compresses_the_clock(self):
        def request_fn(event):
            return "ok"

        report = self.driver(request_fn, time_scale=0.1).run(
            events_at(0.0, 1.0)
        )
        assert report.wall_s < 0.6

    def test_service_errors_classify_by_kind(self):
        def request_fn(event):
            query = event.queries[0]
            if query == "shed":
                raise ServiceError(
                    503, "at capacity", "overloaded", retry_after_s=1.5
                )
            if query == "cutoff":
                raise ServiceError(408, "too slow", "read_timeout")
            if query == "dead":
                raise ServiceError(0, "refused", "connection")
            if query == "boom":
                raise ServiceError(500, "oops", "internal")
            return "ok"

        names = ("ok", "shed", "cutoff", "dead", "boom")
        events = [
            TrafficEvent(index * 0.01, INTERACTIVE_TIER, (query,))
            for index, query in enumerate(names)
        ]
        report = TrafficDriver(
            "127.0.0.1", 0, "fig1", workers=1, request_fn=request_fn
        ).run(events)
        by_query = {
            query: outcome.status
            for query, outcome in zip(names, report.outcomes)
        }
        assert by_query == {
            "ok": "ok",
            "shed": "shed",
            "cutoff": "read_timeout",
            "dead": "closed",
            "boom": "error",
        }
        shed_outcome = report.outcomes[1]
        assert shed_outcome.retry_after_s == 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            TrafficDriver("h", 0, "s", workers=0)
        with pytest.raises(ValueError):
            TrafficDriver("h", 0, "s", time_scale=0.0)


class TestLiveServer:
    @pytest.fixture()
    def tiered_server(self, snapshot_dir):
        server = serve(
            str(snapshot_dir), config=ServerConfig(port=0, max_inflight=8)
        ).start()
        yield server
        server.close()

    def test_replays_a_generated_schedule_end_to_end(self, tiered_server):
        config = TrafficConfig(
            seed=3, duration_s=1.0, base_qps=30.0, bulk_weight=0.2,
            batch_size=4,
        )
        events = generate_schedule(config, ["//A/B", "//F/E"])
        driver = TrafficDriver(
            tiered_server.host, tiered_server.port, "fig1", workers=8
        )
        report = driver.run(events)
        assert len(report.outcomes) == len(events)
        assert report.served == len(events)  # nothing shed at 30 qps
        tiers = {outcome.tier for outcome in report.outcomes}
        assert INTERACTIVE_TIER in tiers
        assert BULK_TIER in tiers
        # Tier rode the wire: the server metrics saw the same lanes.
        metrics = tiered_server.service.metrics_document()
        assert metrics["tiers"][BULK_TIER]["requests"] >= 1

    def test_slow_client_events_hit_the_read_deadline(self, snapshot_dir):
        server = serve(
            str(snapshot_dir),
            config=ServerConfig(port=0, read_deadline_s=0.2),
        ).start()
        try:
            events = [
                TrafficEvent(0.0, INTERACTIVE_TIER, ("//A/B",), slow=True)
            ]
            driver = TrafficDriver(
                server.host, server.port, "fig1", workers=1, slow_pace_s=0.8
            )
            report = driver.run(events)
            assert report.outcomes[0].status in ("read_timeout", "closed")
        finally:
            server.close()

    def test_slow_client_within_deadline_is_served(self, snapshot_dir):
        server = serve(
            str(snapshot_dir),
            config=ServerConfig(port=0, read_deadline_s=5.0),
        ).start()
        try:
            events = [
                TrafficEvent(0.0, INTERACTIVE_TIER, ("//A/B",), slow=True)
            ]
            driver = TrafficDriver(
                server.host, server.port, "fig1", workers=1, slow_pace_s=0.05
            )
            report = driver.run(events)
            assert report.outcomes[0].status == "ok"
        finally:
            server.close()
