"""Load curves: per-tier folding, knee extraction, rendering."""

from __future__ import annotations

import pytest

from repro.reliability.shedding import BULK_TIER, INTERACTIVE_TIER
from repro.traffic import (
    EventOutcome,
    LoadPoint,
    format_curve,
    knee_qps,
    summarize,
)


def outcome(tier=INTERACTIVE_TIER, latency_s=0.01, status="ok", at_s=0.0):
    return EventOutcome(
        tier=tier, at_s=at_s, latency_s=latency_s, status=status, queries=1
    )


class TestSummarize:
    def test_folds_per_tier(self):
        outcomes = [
            outcome(latency_s=0.010),
            outcome(latency_s=0.020),
            outcome(tier=BULK_TIER, latency_s=0.100),
            outcome(tier=BULK_TIER, status="shed"),
            outcome(tier=BULK_TIER, status="error"),
        ]
        point = summarize(outcomes, duration_s=2.0, offered_qps=2.5)
        interactive = point.tier(INTERACTIVE_TIER)
        bulk = point.tier(BULK_TIER)
        assert interactive.served == 2
        assert interactive.shed == 0
        assert interactive.goodput_qps == pytest.approx(1.0)
        assert interactive.p50_ms == pytest.approx(20.0)  # repo convention
        assert bulk.served == 1
        assert bulk.shed == 1
        assert bulk.errors == 1
        assert point.served == 3
        assert point.shed == 1
        assert point.goodput_qps == pytest.approx(1.5)

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError):
            summarize([], duration_s=0.0, offered_qps=1.0)

    def test_as_dict_round_numbers(self):
        point = summarize([outcome()], duration_s=1.0, offered_qps=1.0)
        payload = point.as_dict()
        assert payload["offered_qps"] == 1.0
        assert INTERACTIVE_TIER in payload["tiers"]


class TestKnee:
    def load_point(self, offered, goodput):
        tiers = {
            INTERACTIVE_TIER: summarize(
                [outcome() for _ in range(int(goodput))],
                duration_s=1.0,
                offered_qps=offered,
            ).tier(INTERACTIVE_TIER)
        }
        return LoadPoint(offered_qps=offered, duration_s=1.0, tiers=tiers)

    def test_knee_is_the_last_absorbed_level(self):
        points = [
            self.load_point(10, 10),
            self.load_point(20, 19),
            self.load_point(40, 25),  # saturated: 25/40 < 0.9
        ]
        assert knee_qps(points) == 20

    def test_knee_zero_when_always_saturated(self):
        assert knee_qps([self.load_point(100, 10)]) == 0.0
        assert knee_qps([]) == 0.0

    def test_threshold_is_tunable(self):
        points = [self.load_point(40, 25)]
        assert knee_qps(points, threshold=0.5) == 40


class TestFormatCurve:
    def test_renders_every_level_and_the_knee(self):
        points = [
            summarize(
                [outcome(), outcome(tier=BULK_TIER, status="shed")],
                duration_s=1.0,
                offered_qps=2.0,
            )
        ]
        text = format_curve(points, title="demo sweep")
        assert "demo sweep" in text
        assert "interactive" in text
        assert "bulk" in text
        assert "knee (goodput >= 0.9 x offered)" in text
