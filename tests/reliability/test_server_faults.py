"""Server + client under faults: shedding, deadlines, drain, retries.

The acceptance properties:

* slow handlers saturate the gate and later requests are shed with 503 +
  ``Retry-After`` instead of queueing;
* a client with a retry policy backs off and succeeds once faults clear;
* a truncated snapshot during hot reload never changes served estimates
  and surfaces through ``/healthz``;
* graceful shutdown drains in-flight requests.
"""

from __future__ import annotations

import os
import socket
import threading
import time

import pytest

from repro.reliability import faults
from repro.reliability.breaker import CircuitBreaker, CircuitOpenError
from repro.reliability.faults import DelayFault, FaultInjector
from repro.reliability.policy import RetryPolicy
from repro.reliability.shedding import AdmissionGate
from repro.service import (
    EstimationService,
    ServiceClient,
    ServiceError,
    ServiceServer,
    SynopsisRegistry,
)


def tight_server(figure1_system, **service_kwargs):
    registry = SynopsisRegistry()
    registry.register("fig1", figure1_system)
    service = EstimationService(registry, **service_kwargs)
    return ServiceServer(service, port=0)


def wait_for(predicate, timeout_s=5.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


class TestLoadShedding:
    def test_slow_handler_sheds_with_503_and_retry_after(self, figure1_system):
        gate = AdmissionGate(max_inflight=1, retry_after_s=0.05)
        injector = FaultInjector().plan("server.handle", DelayFault(0.8, times=1))
        with tight_server(figure1_system, gate=gate) as server:
            with faults.inject(injector):
                slow_done = threading.Event()

                def slow_request():
                    ServiceClient(port=server.port).estimate("fig1", "//A/B")
                    slow_done.set()

                slow = threading.Thread(target=slow_request)
                slow.start()
                assert wait_for(lambda: gate.inflight == 1)

                with pytest.raises(ServiceError) as info:
                    ServiceClient(port=server.port).estimate("fig1", "//A/B")
                assert info.value.status == 503
                assert info.value.kind == "overloaded"
                assert info.value.retry_after_s == pytest.approx(0.05)
                assert info.value.retryable

                slow.join(timeout=10)
                assert slow_done.is_set()
            metrics = ServiceClient(port=server.port).metrics()
            assert metrics["counters"]["shed_total"] >= 1
            assert metrics["reliability"]["shed_total"] >= 1
            assert metrics["reliability"]["max_inflight"] == 1

    def test_client_retries_succeed_once_faults_clear(self, figure1_system):
        gate = AdmissionGate(max_inflight=1, retry_after_s=0.05)
        injector = FaultInjector().plan("server.handle", DelayFault(0.6, times=1))
        with tight_server(figure1_system, gate=gate) as server:
            with faults.inject(injector):
                slow = threading.Thread(
                    target=ServiceClient(port=server.port).estimate,
                    args=("fig1", "//A/B"),
                )
                slow.start()
                assert wait_for(lambda: gate.inflight == 1)

                pauses = []

                def recording_sleep(seconds):
                    pauses.append(seconds)
                    time.sleep(seconds)

                client = ServiceClient(
                    port=server.port,
                    retry=RetryPolicy(max_attempts=8, base_backoff_s=0.1),
                    sleep=recording_sleep,
                )
                value = client.estimate("fig1", "//A/B")
                assert value == figure1_system.estimate("//A/B")
                assert pauses  # at least one shed before success
                # Backoffs honour the server's Retry-After floor.
                assert all(pause >= 0.05 for pause in pauses)
                slow.join(timeout=10)

    def test_retry_budget_bounds_the_wait(self, figure1_system):
        gate = AdmissionGate(max_inflight=1)
        with tight_server(figure1_system, gate=gate) as server:
            gate.enter()  # wedge the server at capacity for good
            try:
                client = ServiceClient(
                    port=server.port,
                    retry=RetryPolicy(max_attempts=50, base_backoff_s=0.2),
                    retry_budget_s=0.3,
                    sleep=time.sleep,
                )
                started = time.monotonic()
                with pytest.raises(ServiceError) as info:
                    client.estimate("fig1", "//A/B")
                assert info.value.status == 503
                assert time.monotonic() - started < 2.0
            finally:
                gate.leave()


class TestDeadlines:
    def test_slow_request_times_out_with_504(self, figure1_system):
        injector = FaultInjector().plan("server.handle", DelayFault(0.3, times=1))
        with tight_server(figure1_system, request_deadline_s=0.05) as server:
            with faults.inject(injector):
                with pytest.raises(ServiceError) as info:
                    ServiceClient(port=server.port).estimate("fig1", "//A/B")
            assert info.value.status == 504
            assert info.value.kind == "deadline_exceeded"
            metrics = ServiceClient(port=server.port).metrics()
            assert metrics["counters"]["deadline_exceeded_total"] == 1

    def test_fast_requests_unaffected_by_deadline(self, figure1_system):
        with tight_server(figure1_system, request_deadline_s=5.0) as server:
            client = ServiceClient(port=server.port)
            assert client.estimate("fig1", "//A/B") == figure1_system.estimate("//A/B")


class TestHotReloadFallbackOverHTTP:
    def test_truncated_snapshot_never_changes_estimates(self, running_server):
        client = ServiceClient(port=running_server.port)
        baseline = client.estimate("fig1", "//A/B")
        assert client.healthz()["status"] == "ok"

        registry = running_server.service.registry
        path = os.path.join(registry.snapshot_dir, "fig1.json")
        with open(path) as handle:
            text = handle.read()
        with open(path, "w") as handle:
            handle.write(text[: len(text) // 3])
        stamp = time.time_ns() + 1_000_000
        os.utime(path, ns=(stamp, stamp))

        for _ in range(3):
            assert client.estimate("fig1", "//A/B") == baseline
        health = client.healthz()
        assert health["status"] == "degraded"
        assert health["reload_failures"] == 1
        assert "fig1" in health["degraded"]
        assert client.metrics()["reliability"]["reload_failures"] == 1

        # Healing the file flips health back without a restart.
        with open(path, "w") as handle:
            handle.write(text)
        stamp += 1_000_000
        os.utime(path, ns=(stamp, stamp))
        assert client.estimate("fig1", "//A/B") == baseline
        assert client.healthz()["status"] == "ok"


class TestGracefulShutdown:
    def test_close_drains_inflight_requests(self, figure1_system):
        gate = AdmissionGate(max_inflight=4)
        injector = FaultInjector().plan("server.handle", DelayFault(0.4, times=1))
        server = tight_server(figure1_system, gate=gate)
        server.start()
        with faults.inject(injector):
            outcome = {}

            def slow_request():
                try:
                    outcome["value"] = ServiceClient(port=server.port).estimate(
                        "fig1", "//A/B"
                    )
                except Exception as error:  # pragma: no cover - failure detail
                    outcome["error"] = error

            slow = threading.Thread(target=slow_request)
            slow.start()
            assert wait_for(lambda: gate.inflight == 1)
            server.close(drain_timeout_s=10.0)
            slow.join(timeout=10)
        assert outcome.get("value") == figure1_system.estimate("//A/B")
        assert gate.closed


class TestClientTransportKinds:
    def test_connection_refused_maps_to_connection_kind(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead_port = probe.getsockname()[1]
        with pytest.raises(ServiceError) as info:
            ServiceClient(port=dead_port, keep_alive=False).healthz()
        assert info.value.kind == "connection"
        assert info.value.status == 0
        assert info.value.retryable

    def test_non_json_2xx_maps_to_bad_response(self):
        # An intermediary's HTML splash page with a 200 status: the
        # client maps it to a stable kind instead of leaking JSON errors.
        from http.server import BaseHTTPRequestHandler, HTTPServer

        class HtmlStub(BaseHTTPRequestHandler):
            def do_GET(self):
                body = b"<html>proxy splash page</html>"
                self.send_response(200)
                self.send_header("Content-Type", "text/html")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):
                pass

        httpd = HTTPServer(("127.0.0.1", 0), HtmlStub)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            with pytest.raises(ServiceError) as info:
                ServiceClient(port=httpd.server_address[1], keep_alive=False).healthz()
            assert info.value.kind == "bad_response"
            assert info.value.status == 200
            assert not info.value.retryable
        finally:
            httpd.shutdown()
            httpd.server_close()
            thread.join(timeout=5)

    def test_breaker_fails_fast_after_threshold(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead_port = probe.getsockname()[1]
        breaker = CircuitBreaker(failure_threshold=2, recovery_after_s=60.0)
        client = ServiceClient(port=dead_port, keep_alive=False, breaker=breaker)
        for _ in range(2):
            with pytest.raises(ServiceError):
                client.healthz()
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            client.healthz()

    def test_breaker_recovers_after_service_returns(self, figure1_system):
        clock_now = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_after_s=10.0, clock=lambda: clock_now[0]
        )
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead_port = probe.getsockname()[1]
        down = ServiceClient(port=dead_port, keep_alive=False, breaker=breaker)
        with pytest.raises(ServiceError):
            down.healthz()
        assert breaker.state == "open"
        clock_now[0] = 10.0  # recovery window elapses
        with tight_server(figure1_system) as server:
            up = ServiceClient(port=server.port, breaker=breaker)
            assert up.healthz()["status"] == "ok"  # the half-open probe
            assert breaker.state == "closed"
