"""CircuitBreaker: closed -> open -> half-open -> closed, on a fake clock."""

from __future__ import annotations

import pytest

from repro.reliability import CircuitBreaker, CircuitOpenError

from .test_policy import FakeClock


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def breaker(clock):
    return CircuitBreaker(failure_threshold=3, recovery_after_s=10.0, clock=clock)


class TestCircuitBreaker:
    def test_starts_closed_and_allows(self, breaker):
        assert breaker.state == "closed"
        assert breaker.allow()
        breaker.check()  # no raise

    def test_opens_after_consecutive_failures(self, breaker):
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        with pytest.raises(CircuitOpenError) as info:
            breaker.check("estimation service")
        assert info.value.kind == "circuit_open"
        assert "estimation service" in str(info.value)

    def test_success_resets_the_failure_run(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_admits_exactly_one_probe(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.state == "half_open"
        assert breaker.allow()       # the probe
        assert not breaker.allow()   # everyone else keeps failing fast
        assert not breaker.allow()

    def test_probe_success_closes(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow() and breaker.allow()

    def test_probe_failure_reopens_for_a_full_window(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(9.0)
        assert not breaker.allow()
        clock.advance(1.0)
        assert breaker.allow()

    def test_validation(self, clock):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0, clock=clock)
