"""ReproError hierarchy: stable ``kind`` slugs at every public raise site."""

from __future__ import annotations

import warnings

import pytest

import repro
from repro.build.builder import ShardScanError, build_synopsis
from repro.errors import (
    BuildError,
    ParseError,
    PersistError,
    QuerySyntaxError,
    ReliabilityError,
    ReproError,
    error_kind,
)
from repro.persist import SnapshotCorruptError, SynopsisLoadError
from repro.reliability import (
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    DeadlineExceededError,
    AdmissionGate,
    OverloadedError,
)
from repro.xmltree.parser import XmlParseError
from repro.xpath.parser import XPathSyntaxError

#: Every public exception family and its documented, never-renamed slug.
DOCUMENTED_KINDS = {
    ReproError: "error",
    ParseError: "parse",
    QuerySyntaxError: "query_syntax",
    PersistError: "persist",
    BuildError: "build",
    ReliabilityError: "reliability",
    DeadlineExceededError: "deadline_exceeded",
    CircuitOpenError: "circuit_open",
    OverloadedError: "overloaded",
}


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_type,slug", sorted(DOCUMENTED_KINDS.items(), key=lambda kv: kv[1])
    )
    def test_documented_kind_slug(self, exc_type, slug):
        assert exc_type.kind == slug
        assert issubclass(exc_type, ReproError)

    def test_concrete_classes_inherit_family_slugs(self):
        assert XmlParseError.kind == "parse"
        assert XPathSyntaxError.kind == "query_syntax"
        assert SynopsisLoadError.kind == "persist"
        assert SnapshotCorruptError.kind == "persist"
        assert ShardScanError.kind == "build"

    def test_value_error_compat_for_legacy_families(self):
        # The pre-hierarchy families stay catchable as ValueError.
        for exc_type in (ParseError, QuerySyntaxError, PersistError, BuildError):
            assert issubclass(exc_type, ValueError)
        # The reliability family models runtime conditions instead.
        assert issubclass(ReliabilityError, RuntimeError)
        assert not issubclass(ReliabilityError, ValueError)

    def test_error_kind_helper(self):
        assert error_kind(BuildError("x")) == "build"
        assert error_kind(DeadlineExceededError("x")) == "deadline_exceeded"
        assert error_kind(KeyError("x")) == "internal"


class TestRaiseSitesCarryKinds:
    """The actual raise sites, one per family, checked end to end."""

    def test_xml_parse_site(self):
        with pytest.raises(ReproError) as info:
            build_synopsis("<R><A></R>")
        assert info.value.kind == "parse"

    def test_query_syntax_site(self, figure1_system):
        with pytest.raises(ReproError) as info:
            figure1_system.estimate("A[[")
        assert info.value.kind == "query_syntax"

    def test_persist_site(self):
        with pytest.raises(ReproError) as info:
            repro.persist.loads("{torn")
        assert info.value.kind == "persist"

    def test_build_site(self):
        with pytest.raises(ReproError) as info:
            build_synopsis("not xml and not a file")
        assert info.value.kind == "build"

    def test_deadline_site(self):
        clock = iter([0.0, 10.0, 20.0]).__next__
        with pytest.raises(ReproError) as info:
            Deadline.after(1.0, clock).check()
        assert info.value.kind == "deadline_exceeded"

    def test_circuit_site(self):
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure()
        with pytest.raises(ReproError) as info:
            breaker.check()
        assert info.value.kind == "circuit_open"

    def test_overload_site(self):
        gate = AdmissionGate(max_inflight=1)
        gate.enter()
        with pytest.raises(ReproError) as info:
            gate.enter()
        assert info.value.kind == "overloaded"

    def test_one_except_clause_catches_everything(self, figure1_system):
        # The embedder's contract: one `except ReproError` at the
        # boundary sees every intentional failure.
        caught = []
        for trigger in (
            lambda: build_synopsis("<R><A></R>"),
            lambda: figure1_system.estimate("]["),
            lambda: repro.persist.loads("{torn"),
            lambda: Deadline(0.0, lambda: 1.0).check(),
        ):
            try:
                trigger()
            except ReproError as error:
                caught.append(error.kind)
        assert caught == ["parse", "query_syntax", "persist", "deadline_exceeded"]


class TestDeprecationShims:
    # PEP 562 module shims warn exactly once per name per process (the
    # resolved object is cached in the module dict afterwards).

    @pytest.mark.parametrize("name", ["XmlDocument", "Evaluator", "explain"])
    def test_shim_warns_exactly_once(self, name):
        repro.__dict__.pop(name, None)  # reset the warn-once cache
        with warnings.catch_warnings(record=True) as seen:
            warnings.simplefilter("always")
            first = getattr(repro, name)
            second = getattr(repro, name)
        assert first is second
        deprecations = [
            w for w in seen if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert name in str(deprecations[0].message)

    def test_unknown_name_is_attribute_error_not_warning(self):
        with pytest.raises(AttributeError):
            repro.definitely_not_a_symbol
