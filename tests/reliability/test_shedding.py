"""AdmissionGate: bounded in-flight work, shedding, closing, draining."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ReliabilityError
from repro.reliability import AdmissionGate, OverloadedError


class TestAdmission:
    def test_admits_up_to_max_inflight(self):
        gate = AdmissionGate(max_inflight=2)
        gate.enter()
        gate.enter()
        assert gate.inflight == 2
        with pytest.raises(OverloadedError) as info:
            gate.enter()
        assert info.value.kind == "overloaded"
        assert isinstance(info.value, ReliabilityError)
        assert gate.shed_total == 1
        assert gate.admitted_total == 2

    def test_leave_frees_a_slot(self):
        gate = AdmissionGate(max_inflight=1)
        gate.enter()
        gate.leave()
        gate.enter()  # no raise
        assert gate.inflight == 1

    def test_retry_after_hint_travels_on_the_error(self):
        gate = AdmissionGate(max_inflight=1, retry_after_s=2.5)
        gate.enter()
        with pytest.raises(OverloadedError) as info:
            gate.enter()
        assert info.value.retry_after_s == 2.5

    def test_queued_request_gets_the_freed_slot(self):
        gate = AdmissionGate(max_inflight=1, max_queue=1, queue_timeout_s=5.0)
        gate.enter()
        admitted = threading.Event()

        def queued():
            gate.enter()
            admitted.set()

        waiter = threading.Thread(target=queued)
        waiter.start()
        assert not admitted.wait(timeout=0.1)
        gate.leave()
        assert admitted.wait(timeout=5.0)
        waiter.join()
        assert gate.shed_total == 0

    def test_queue_wait_times_out_and_sheds(self):
        gate = AdmissionGate(max_inflight=1, max_queue=1, queue_timeout_s=0.02)
        gate.enter()
        with pytest.raises(OverloadedError):
            gate.enter()
        assert gate.shed_total == 1

    def test_queue_overflow_sheds_immediately(self):
        gate = AdmissionGate(max_inflight=1, max_queue=0)
        gate.enter()
        with pytest.raises(OverloadedError):
            gate.enter()


class TestLifecycle:
    def test_closed_gate_sheds_everything(self):
        gate = AdmissionGate(max_inflight=8)
        gate.close()
        assert gate.closed
        with pytest.raises(OverloadedError) as info:
            gate.enter()
        assert "shutting down" in str(info.value)

    def test_close_leaves_inflight_work_alone(self):
        gate = AdmissionGate(max_inflight=2)
        gate.enter()
        gate.close()
        assert gate.inflight == 1
        gate.leave()
        assert gate.inflight == 0

    def test_drain_waits_for_inflight(self):
        gate = AdmissionGate(max_inflight=2)
        gate.enter()
        gate.close()
        done = threading.Event()

        def finish_later():
            done.wait()
            gate.leave()

        worker = threading.Thread(target=finish_later)
        worker.start()
        assert gate.drain(timeout_s=0.05) is False  # still in flight
        done.set()
        assert gate.drain(timeout_s=5.0) is True
        worker.join()

    def test_drain_of_idle_gate_is_immediate(self):
        assert AdmissionGate().drain(timeout_s=0.0) is True

    def test_stats_shape(self):
        gate = AdmissionGate(max_inflight=3)
        gate.enter()
        stats = gate.stats()
        assert stats == {
            "inflight": 1,
            "queued": 0,
            "max_inflight": 3,
            "admitted_total": 1,
            "shed_total": 0,
            "closed": False,
        }

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionGate(max_inflight=0)
        with pytest.raises(ValueError):
            AdmissionGate(max_queue=-1)
