"""Snapshot integrity: checksums, atomic writes, corrupt-load detection."""

from __future__ import annotations

import json
import os

import pytest

from repro import persist
from repro.persist import SnapshotCorruptError, SynopsisLoadError
from repro.reliability import faults, integrity
from repro.reliability.faults import FailFault, FaultInjector, TruncateFault


class TestChecksums:
    def test_text_checksum_format(self):
        value = integrity.checksum_text("hello")
        assert value.startswith("crc32:")
        assert len(value) == len("crc32:") + 8

    def test_payload_checksum_survives_reformatting(self):
        payload = {"b": 1, "a": [1.5, 2.25]}
        reordered = json.loads(json.dumps(payload, indent=4, sort_keys=False))
        assert integrity.checksum_payload(payload) == integrity.checksum_payload(
            reordered
        )

    def test_verify_payload(self):
        payload = {"x": 1}
        good = integrity.checksum_payload(payload)
        assert integrity.verify_payload(payload, good)
        assert not integrity.verify_payload({"x": 2}, good)
        assert not integrity.verify_payload(payload, "md5:abc")  # unknown scheme


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        path = str(tmp_path / "out.txt")
        integrity.atomic_write_text(path, "one")
        integrity.atomic_write_text(path, "two")
        with open(path) as handle:
            assert handle.read() == "two"
        assert os.listdir(str(tmp_path)) == ["out.txt"]  # no temp debris

    def test_failed_replace_leaves_old_content_and_no_temp(self, tmp_path):
        path = str(tmp_path / "out.txt")
        integrity.atomic_write_text(path, "old")
        injector = FaultInjector().plan("persist.replace", FailFault(OSError, "disk full"))
        with faults.inject(injector):
            with pytest.raises(OSError):
                integrity.atomic_write_text(path, "new")
        with open(path) as handle:
            assert handle.read() == "old"
        assert os.listdir(str(tmp_path)) == ["out.txt"]


class TestSnapshotChecksum:
    def test_dumps_embeds_a_checksum(self, figure1_system):
        payload = json.loads(persist.dumps(figure1_system))
        assert payload["checksum"].startswith("crc32:")
        body = {k: v for k, v in payload.items() if k != "checksum"}
        assert integrity.verify_payload(body, payload["checksum"])

    def test_round_trip_verifies(self, figure1_system):
        restored = persist.loads(persist.dumps(figure1_system))
        assert restored.estimate("//A/B") == figure1_system.estimate("//A/B")

    def test_flipped_value_is_detected(self, figure1_system):
        # Mutate one non-checksum field, keeping valid JSON: the envelope
        # parses but the embedded checksum no longer matches.
        damaged = json.loads(persist.dumps(figure1_system))
        for key, value in damaged.items():
            if key != "checksum" and isinstance(value, (int, str)):
                damaged[key] = value + (1 if isinstance(value, int) else "x")
                break
        with pytest.raises(SnapshotCorruptError) as info:
            persist.loads(json.dumps(damaged))
        assert "checksum" in str(info.value)
        assert info.value.kind == "persist"
        assert isinstance(info.value, SynopsisLoadError)

    def test_truncated_snapshot_is_a_load_error(self, figure1_system):
        text = persist.dumps(figure1_system)
        with pytest.raises(SynopsisLoadError):
            persist.loads(text[: len(text) // 2])

    def test_pre_checksum_snapshot_still_loads(self, figure1_system):
        # Snapshots written before the integrity layer carry no checksum
        # field; they load unverified rather than failing.
        payload = json.loads(persist.dumps(figure1_system))
        del payload["checksum"]
        restored = persist.loads(json.dumps(payload))
        assert restored.estimate("//A/B") == figure1_system.estimate("//A/B")

    def test_save_is_atomic_under_write_faults(self, tmp_path, figure1_system):
        path = str(tmp_path / "snap.json")
        persist.save(figure1_system, path)
        good = persist.load(path)
        # A torn write (truncation between write and rename would be
        # invisible -- the truncation happens to the text itself, and the
        # rename publishes the torn bytes): the checksum catches it.
        injector = FaultInjector().plan("persist.write", TruncateFault(keep=200))
        with faults.inject(injector):
            persist.save(figure1_system, path)
        with pytest.raises(SynopsisLoadError):
            persist.load(path)
        # Rewriting properly heals the file in place.
        persist.save(figure1_system, path)
        assert persist.load(path).estimate("//A/B") == good.estimate("//A/B")
