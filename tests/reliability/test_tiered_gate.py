"""TieredAdmissionGate: priority lanes, preemption, brownout control."""

from __future__ import annotations

import threading

import pytest

from repro.reliability.brownout import BROWNOUT_STATES, BrownoutController
from repro.reliability.shedding import (
    BULK_TIER,
    INTERACTIVE_TIER,
    STANDARD_TIER,
    OverloadedError,
    TieredAdmissionGate,
    TierPolicy,
    default_tiers,
)


def small_gate(max_total=4, **kwargs):
    return TieredAdmissionGate(
        tiers=default_tiers(max_total, **kwargs), max_total=max_total
    )


class TestTierPolicies:
    def test_default_tiers_cover_the_three_lanes(self):
        tiers = {p.name: p for p in default_tiers(16)}
        assert set(tiers) == {INTERACTIVE_TIER, STANDARD_TIER, BULK_TIER}
        assert tiers[INTERACTIVE_TIER].priority < tiers[STANDARD_TIER].priority
        assert tiers[STANDARD_TIER].priority < tiers[BULK_TIER].priority
        # Interactive sees the whole pool; bulk is boxed to a quarter.
        assert tiers[INTERACTIVE_TIER].max_inflight == 16
        assert tiers[BULK_TIER].max_inflight == 4
        assert tiers[BULK_TIER].brownout_sheddable
        assert not tiers[INTERACTIVE_TIER].brownout_sheddable

    def test_bulk_cap_override(self):
        tiers = {p.name: p for p in default_tiers(16, bulk_max_inflight=2)}
        assert tiers[BULK_TIER].max_inflight == 2

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            TierPolicy("x", priority=0, max_inflight=0)
        with pytest.raises(ValueError):
            TierPolicy("", priority=0, max_inflight=1)
        with pytest.raises(ValueError):
            TieredAdmissionGate(
                tiers=[
                    TierPolicy("a", priority=0, max_inflight=1),
                    TierPolicy("a", priority=1, max_inflight=1),
                ]
            )


class TestTieredAdmission:
    def test_enter_resolves_default_tier(self):
        gate = small_gate()
        name = gate.enter()
        assert name == INTERACTIVE_TIER
        gate.leave(name)
        assert gate.inflight == 0

    def test_unknown_tier_is_a_value_error(self):
        gate = small_gate()
        with pytest.raises(ValueError):
            gate.enter("premium")

    def test_bulk_is_boxed_to_its_share(self):
        gate = small_gate(max_total=8)  # bulk cap = 2, queue = 2
        gate.enter(BULK_TIER)
        gate.enter(BULK_TIER)
        with pytest.raises(OverloadedError) as info:
            # Queue is full of nobody, but no slot frees within the
            # bulk lane's 50ms bounded wait.
            gate.enter(BULK_TIER)
        assert info.value.tier == BULK_TIER
        assert info.value.reason == "capacity"
        assert info.value.retry_after_s == 2.0
        # The pool still has six slots for interactive work.
        for _ in range(6):
            gate.enter(INTERACTIVE_TIER)
        assert gate.inflight == 8

    def test_pool_is_the_hard_bound(self):
        gate = small_gate(max_total=2)
        gate.enter(INTERACTIVE_TIER)
        gate.enter(STANDARD_TIER)
        with pytest.raises(OverloadedError):
            gate.enter(BULK_TIER)

    def test_freed_slot_reaches_queued_interactive_before_bulk(self):
        # One slot, held.  A bulk request and an interactive request
        # both queue; when the slot frees, interactive must win even
        # though bulk queued first.
        gate = TieredAdmissionGate(
            tiers=[
                TierPolicy(
                    INTERACTIVE_TIER, priority=0, max_inflight=1,
                    max_queue=4, queue_timeout_s=5.0,
                ),
                TierPolicy(
                    BULK_TIER, priority=2, max_inflight=1,
                    max_queue=4, queue_timeout_s=5.0,
                ),
            ],
            max_total=1,
        )
        gate.enter(INTERACTIVE_TIER)
        order = []
        bulk_queued = threading.Event()
        interactive_queued = threading.Event()

        def bulk():
            bulk_queued.set()
            gate.enter(BULK_TIER)
            order.append(BULK_TIER)
            gate.leave(BULK_TIER)

        def interactive():
            interactive_queued.set()
            gate.enter(INTERACTIVE_TIER)
            order.append(INTERACTIVE_TIER)
            gate.leave(INTERACTIVE_TIER)

        bulk_thread = threading.Thread(target=bulk)
        bulk_thread.start()
        assert bulk_queued.wait(timeout=2.0)
        # Let the bulk waiter actually block on the condition first.
        deadline = threading.Event()
        deadline.wait(0.05)
        interactive_thread = threading.Thread(target=interactive)
        interactive_thread.start()
        assert interactive_queued.wait(timeout=2.0)
        deadline.wait(0.05)
        gate.leave(INTERACTIVE_TIER)
        bulk_thread.join(timeout=5.0)
        interactive_thread.join(timeout=5.0)
        assert order == [INTERACTIVE_TIER, BULK_TIER]

    def test_stats_breaks_down_per_tier(self):
        gate = small_gate(max_total=8)
        gate.enter(INTERACTIVE_TIER)
        gate.enter(BULK_TIER)
        stats = gate.stats()
        assert stats["inflight"] == 2
        assert stats["tiers"][INTERACTIVE_TIER]["inflight"] == 1
        assert stats["tiers"][BULK_TIER]["inflight"] == 1
        assert stats["tiers"][BULK_TIER]["priority"] == 2
        assert stats["tiers"][BULK_TIER]["browned_out"] is False


class TestCheckpointPreemption:
    def test_checkpoint_without_waiters_is_a_noop(self):
        gate = small_gate()
        gate.enter(BULK_TIER)
        assert gate.checkpoint(BULK_TIER, max_wait_s=0.1) is False
        assert gate.inflight == 1

    def test_checkpoint_yields_to_waiting_interactive(self):
        gate = TieredAdmissionGate(
            tiers=[
                TierPolicy(
                    INTERACTIVE_TIER, priority=0, max_inflight=1,
                    max_queue=4, queue_timeout_s=5.0,
                ),
                TierPolicy(BULK_TIER, priority=2, max_inflight=1),
            ],
            max_total=1,
        )
        gate.enter(BULK_TIER)
        admitted = threading.Event()
        released = threading.Event()

        def interactive():
            gate.enter(INTERACTIVE_TIER)
            admitted.set()
            released.wait(timeout=5.0)
            gate.leave(INTERACTIVE_TIER)

        waiter = threading.Thread(target=interactive)
        waiter.start()
        # Give the interactive request time to join the queue.
        admitted.wait(0.1)
        assert not admitted.is_set()
        yielded = gate.checkpoint(BULK_TIER, max_wait_s=5.0)
        assert yielded is True
        # The interactive request got the slot while bulk waited.
        assert admitted.is_set()
        released.set()
        waiter.join(timeout=5.0)
        # Bulk retook its slot after the yield.
        assert gate.inflight == 1
        assert gate.stats()["tiers"][BULK_TIER]["yields_total"] == 1
        gate.leave(BULK_TIER)

    def test_checkpoint_retakes_the_slot_on_timeout(self):
        # Interactive waiter never leaves; the bulk checkpoint must
        # still come back (bounded oversubscription, never shed).
        gate = TieredAdmissionGate(
            tiers=[
                TierPolicy(
                    INTERACTIVE_TIER, priority=0, max_inflight=1,
                    max_queue=4, queue_timeout_s=30.0,
                ),
                TierPolicy(BULK_TIER, priority=2, max_inflight=1),
            ],
            max_total=1,
        )
        gate.enter(BULK_TIER)
        stop = threading.Event()

        def hog():
            gate.enter(INTERACTIVE_TIER)
            stop.wait(timeout=10.0)
            gate.leave(INTERACTIVE_TIER)

        hog_thread = threading.Thread(target=hog)
        hog_thread.start()
        threading.Event().wait(0.05)
        assert gate.checkpoint(BULK_TIER, max_wait_s=0.05) is True
        # Both now hold a slot: the pool is oversubscribed by exactly
        # the yielded request, not failed.
        assert gate.inflight == 2
        stop.set()
        hog_thread.join(timeout=5.0)
        gate.leave(BULK_TIER)


class TestCloseDrainRaces:
    def test_close_sheds_with_closing_reason(self):
        gate = small_gate()
        gate.close()
        with pytest.raises(OverloadedError) as info:
            gate.enter(INTERACTIVE_TIER)
        assert info.value.reason == "closing"

    def test_close_wakes_queued_waiters(self):
        gate = TieredAdmissionGate(
            tiers=[
                TierPolicy(
                    INTERACTIVE_TIER, priority=0, max_inflight=1,
                    max_queue=8, queue_timeout_s=30.0,
                ),
            ],
            max_total=1,
        )
        gate.enter(INTERACTIVE_TIER)
        outcomes = []
        started = threading.Barrier(5)

        def waiter():
            started.wait(timeout=5.0)
            try:
                gate.enter(INTERACTIVE_TIER)
                outcomes.append("admitted")
                gate.leave(INTERACTIVE_TIER)
            except OverloadedError as error:
                outcomes.append(error.reason)

        threads = [threading.Thread(target=waiter) for _ in range(4)]
        for thread in threads:
            thread.start()
        started.wait(timeout=5.0)
        threading.Event().wait(0.1)  # let them block in the queue
        gate.close()
        for thread in threads:
            thread.join(timeout=5.0)
        # Every waiter came back promptly, all shed as closing — none
        # admitted after close, none stuck until the 30s timeout.
        assert outcomes == ["closing"] * 4

    def test_drain_waits_for_inflight_across_tiers(self):
        gate = small_gate(max_total=4)
        gate.enter(INTERACTIVE_TIER)
        gate.enter(BULK_TIER)
        gate.close()
        assert gate.drain(timeout_s=0.05) is False

        def finish():
            threading.Event().wait(0.05)
            gate.leave(INTERACTIVE_TIER)
            gate.leave(BULK_TIER)

        finisher = threading.Thread(target=finish)
        finisher.start()
        assert gate.drain(timeout_s=5.0) is True
        finisher.join(timeout=5.0)

    def test_concurrent_enter_leave_storm_balances(self):
        gate = small_gate(max_total=4)
        admitted = []
        shed = []
        lock = threading.Lock()

        def storm(tier):
            for _ in range(50):
                try:
                    name = gate.enter(tier)
                except OverloadedError:
                    with lock:
                        shed.append(tier)
                    continue
                with lock:
                    admitted.append(tier)
                gate.leave(name)

        threads = [
            threading.Thread(target=storm, args=(tier,))
            for tier in (INTERACTIVE_TIER, STANDARD_TIER, BULK_TIER)
            for _ in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert gate.inflight == 0
        stats = gate.stats()
        assert stats["admitted_total"] == len(admitted)
        assert stats["shed_total"] == len(shed)
        assert len(admitted) + len(shed) == 450


class TestBrownoutGateControl:
    def test_set_shed_tiers_sheds_with_brownout_reason(self):
        gate = small_gate()
        gate.set_shed_tiers(gate.brownout_sheddable_tiers())
        assert gate.shed_tiers == frozenset({BULK_TIER})
        with pytest.raises(OverloadedError) as info:
            gate.enter(BULK_TIER)
        assert info.value.reason == "brownout"
        # Interactive is untouched.
        gate.enter(INTERACTIVE_TIER)
        gate.leave(INTERACTIVE_TIER)
        gate.set_shed_tiers(())
        gate.enter(BULK_TIER)
        gate.leave(BULK_TIER)

    def test_unknown_shed_tier_rejected(self):
        gate = small_gate()
        with pytest.raises(ValueError):
            gate.set_shed_tiers(["premium"])


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestBrownoutController:
    def make(self, **kwargs):
        clock = FakeClock()
        controller = BrownoutController(
            window_s=10.0,
            enter_threshold=0.10,
            escalate_threshold=0.30,
            exit_threshold=0.02,
            dwell_s=1.0,
            cooloff_s=3.0,
            min_events=10,
            clock=clock,
            **kwargs
        )
        return controller, clock

    def feed(self, controller, clock, shed_fraction, count=20, spacing=0.2):
        level = controller.level
        shed_every = int(round(1.0 / shed_fraction)) if shed_fraction else 0
        for index in range(count):
            clock.advance(spacing)
            shed = bool(shed_every) and index % shed_every == 0
            level = controller.record(shed)
        return level

    def test_starts_ok_and_ignores_sparse_sheds(self):
        controller, clock = self.make()
        # Below min_events nothing is trusted, even 100% sheds.
        for _ in range(5):
            clock.advance(0.1)
            assert controller.record(True) == 0
        assert controller.state == "ok"

    def test_sustained_breach_escalates_one_level_per_dwell(self):
        controller, clock = self.make()
        level = self.feed(controller, clock, 0.5, count=40)
        assert level >= 1
        # Keep breaching past another dwell period: level 2.
        level = self.feed(controller, clock, 0.5, count=40)
        assert level == 2
        assert controller.state == BROWNOUT_STATES[2]
        assert not controller.allows_tracing()
        assert not controller.allows_bulk()

    def test_momentary_burst_does_not_trip(self):
        controller, clock = self.make()
        # A single shed: the fraction touches the threshold exactly at
        # min_events and drops below it one sample later — shorter than
        # dwell_s, so no escalation.
        self.feed(controller, clock, 0.5, count=2, spacing=0.1)
        level = self.feed(controller, clock, 0.0, count=40)
        assert level == 0

    def test_recovery_steps_down_after_cooloff(self):
        controller, clock = self.make()
        self.feed(controller, clock, 0.5, count=80)
        assert controller.level == 2
        # Calm traffic: fraction decays as the window slides, then
        # cooloff_s of sustained calm steps down one level at a time.
        level = self.feed(controller, clock, 0.0, count=200)
        assert level == 0
        assert controller.allows_tracing()
        assert controller.allows_bulk()

    def test_snapshot_shape(self):
        controller, clock = self.make()
        self.feed(controller, clock, 0.5, count=40)
        snap = controller.snapshot()
        assert set(snap) == {
            "state", "level", "shed_fraction", "window_events",
            "transitions_total",
        }
        assert snap["level"] == controller.level
        assert snap["transitions_total"] >= 1

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            BrownoutController(enter_threshold=0.5, escalate_threshold=0.3)
        with pytest.raises(ValueError):
            BrownoutController(enter_threshold=0.1, exit_threshold=0.2)
