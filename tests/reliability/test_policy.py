"""Deadline and RetryPolicy: the time-budget vocabulary, on fake clocks."""

from __future__ import annotations

import math

import pytest

from repro.errors import ReliabilityError, ReproError
from repro.reliability import (
    DEFAULT_RETRY_POLICY,
    NO_RETRY,
    Deadline,
    DeadlineExceededError,
    RetryPolicy,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestDeadline:
    def test_unbounded_never_expires(self):
        deadline = Deadline.after(None)
        assert deadline.remaining() == math.inf
        assert not deadline.expired()
        deadline.check()  # no raise

    def test_counts_down_on_the_injected_clock(self):
        clock = FakeClock()
        deadline = Deadline.after(2.0, clock)
        assert deadline.remaining() == pytest.approx(2.0)
        clock.advance(1.5)
        assert deadline.remaining() == pytest.approx(0.5)
        assert not deadline.expired()
        clock.advance(0.5)
        assert deadline.expired()
        assert deadline.remaining() == 0.0

    def test_check_raises_with_stable_kind(self):
        clock = FakeClock()
        deadline = Deadline.after(1.0, clock)
        clock.advance(2.0)
        with pytest.raises(DeadlineExceededError) as info:
            deadline.check("shard scan")
        assert info.value.kind == "deadline_exceeded"
        assert "shard scan" in str(info.value)
        # The reliability family is catchable at both hierarchy roots.
        assert isinstance(info.value, ReliabilityError)
        assert isinstance(info.value, ReproError)
        assert isinstance(info.value, RuntimeError)

    def test_remaining_never_negative(self):
        clock = FakeClock()
        deadline = Deadline.after(0.1, clock)
        clock.advance(100.0)
        assert deadline.remaining() == 0.0


class TestRetryPolicy:
    def test_exponential_sequence(self):
        policy = RetryPolicy(max_attempts=4, base_backoff_s=0.05, multiplier=2.0)
        assert list(policy.backoffs()) == pytest.approx([0.05, 0.1, 0.2])

    def test_capped_at_max_backoff(self):
        policy = RetryPolicy(
            max_attempts=6, base_backoff_s=1.0, multiplier=10.0, max_backoff_s=3.0
        )
        assert list(policy.backoffs()) == pytest.approx([1.0, 3.0, 3.0, 3.0, 3.0])

    def test_single_attempt_yields_no_sleeps(self):
        assert list(NO_RETRY.backoffs()) == []

    def test_default_policy_is_four_attempts(self):
        assert DEFAULT_RETRY_POLICY.max_attempts == 4
        assert len(list(DEFAULT_RETRY_POLICY.backoffs())) == 3

    def test_jitter_is_deterministic_by_seed(self):
        first = list(
            RetryPolicy(max_attempts=5, jitter=0.5, seed=42).backoffs()
        )
        second = list(
            RetryPolicy(max_attempts=5, jitter=0.5, seed=42).backoffs()
        )
        assert first == second
        # Jitter only shrinks, never grows, each sleep.
        plain = list(RetryPolicy(max_attempts=5).backoffs())
        for jittered, base in zip(first, plain):
            assert 0.5 * base <= jittered <= base

    def test_each_backoffs_iterator_is_independent(self):
        policy = RetryPolicy(max_attempts=3)
        assert list(policy.backoffs()) == list(policy.backoffs())

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
