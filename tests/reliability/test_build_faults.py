"""Build fault recovery: crashed/hung workers, shard errors, fallback.

The acceptance property: a killed pool worker still yields a synopsis
bit-identical to the fault-free build — retries and the in-process
fallback change wall-clock, never bytes.
"""

from __future__ import annotations

import pickle

import pytest

from repro import persist
from repro.build.builder import ShardScanError, SynopsisBuilder, build_synopsis
from repro.errors import BuildError, ParseError
from repro.reliability import faults
from repro.reliability.faults import FailFault, FaultInjector
from repro.xmltree.parser import XmlParseError
from repro.xpath.parser import XPathSyntaxError

TEXT = "<R>" + "".join(
    "<A><B>x</B><C>y</C></A><D>z</D>" for _ in range(120)
) + "</R>"


@pytest.fixture(scope="module")
def reference_bytes():
    return persist.dumps(build_synopsis(TEXT, name="t"))


class TestWorkerCrash:
    def test_killed_worker_yields_bit_identical_synopsis(self, reference_bytes):
        with faults.worker_faults(kind="crash", times=2):
            survived = build_synopsis(
                TEXT, workers=3, shard_bytes=256, worker_retries=2, name="t"
            )
        assert persist.dumps(survived) == reference_bytes

    def test_hung_worker_is_abandoned_and_retried(self, reference_bytes):
        with faults.worker_faults(kind="delay", times=1, delay_s=30.0):
            survived = build_synopsis(
                TEXT,
                workers=3,
                shard_bytes=256,
                shard_timeout_s=1.0,
                worker_retries=2,
                name="t",
            )
        assert persist.dumps(survived) == reference_bytes

    def test_exhausted_retries_fall_back_in_process(self, reference_bytes):
        # Every pool round loses a worker; the in-process fallback still
        # delivers the same bytes.
        with faults.worker_faults(kind="crash", times=50):
            survived = build_synopsis(
                TEXT, workers=2, shard_bytes=256, worker_retries=1, name="t"
            )
        assert persist.dumps(survived) == reference_bytes


class TestShardErrors:
    def test_in_process_fault_site_can_fail_a_build(self):
        injector = FaultInjector().plan("build.scan", FailFault(XmlParseError, "torn", 7))
        with faults.inject(injector):
            with pytest.raises(ShardScanError) as info:
                SynopsisBuilder().from_shards(["<A>x</A>", "<A>y</A>"], root_tag="R")
        assert info.value.shard_index == 0
        assert info.value.offset == 7
        assert isinstance(info.value, BuildError)

    def test_malformed_shard_reports_index_and_offset(self):
        shards = ["<A>x</A>", "<A><B</A>"]
        with pytest.raises(ShardScanError) as info:
            SynopsisBuilder().from_shards(shards, root_tag="R")
        assert info.value.shard_index == 1
        assert info.value.offset is not None
        assert "shard 1" in str(info.value)

    def test_whole_document_path_keeps_raw_parse_error(self):
        # The classic single-scan API contract: malformed text raises
        # ParseError (not a shard wrapper) so `except ValueError` and
        # `except ParseError` call sites keep working.
        with pytest.raises(ParseError) as info:
            build_synopsis("<R><A></R>")
        assert not isinstance(info.value, ShardScanError)

    def test_shard_scan_error_survives_pickling(self):
        error = ShardScanError(3, 42, ValueError("boom"))
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, ShardScanError)
        assert clone.shard_index == 3
        assert clone.offset == 42
        assert str(clone) == str(error)


class TestExceptionPickling:
    # Pool workers ship their exceptions to the parent via pickle; the
    # two positional-argument parse errors need custom __reduce__.

    def test_xml_parse_error_round_trips(self):
        error = XmlParseError("bad tag", 42)
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, XmlParseError)
        assert clone.position == 42
        assert str(clone) == str(error)

    def test_xpath_syntax_error_round_trips(self):
        error = XPathSyntaxError("bad step", 7)
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, XPathSyntaxError)
        assert clone.position == 7
        assert str(clone) == str(error)


class TestBuilderValidation:
    def test_knob_validation(self):
        with pytest.raises(BuildError):
            SynopsisBuilder(shard_timeout_s=0)
        with pytest.raises(BuildError):
            SynopsisBuilder(worker_retries=-1)
