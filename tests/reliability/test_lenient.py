"""Lenient scanning: recover past malformed XML instead of aborting."""

from __future__ import annotations

import pytest

from repro.build.builder import SynopsisBuilder, build_synopsis
from repro.build.lenient import lenient_events
from repro.build.stream import scan_text
from repro.errors import ParseError


def events_of(text, **kwargs):
    return list(lenient_events(text, **kwargs))


class TestRecoveryRules:
    def test_well_formed_input_is_unchanged(self):
        assert events_of("<R><A/><B>t</B></R>") == [
            ("start", "R"),
            ("start", "A"),
            ("end", "A"),
            ("start", "B"),
            ("end", "B"),
            ("end", "R"),
        ]

    def test_missing_end_tags_closed_at_eof(self):
        incidents = []
        events = events_of("<R><A><B>", on_recover=lambda o, m: incidents.append(m))
        assert events == [
            ("start", "R"),
            ("start", "A"),
            ("start", "B"),
            ("end", "B"),
            ("end", "A"),
            ("end", "R"),
        ]
        assert len(incidents) == 3
        assert all("missing end tag" in message for message in incidents)

    def test_mismatched_end_tag_closes_through(self):
        # </R> closes the skipped-over <A> implicitly (truncation damage).
        events = events_of("<R><A><B></B></R>")
        assert events == [
            ("start", "R"),
            ("start", "A"),
            ("start", "B"),
            ("end", "B"),
            ("end", "A"),
            ("end", "R"),
        ]

    def test_unexpected_end_tag_is_dropped(self):
        incidents = []
        events = events_of(
            "<R></X><A/></R>", on_recover=lambda o, m: incidents.append(m)
        )
        assert events == [
            ("start", "R"),
            ("start", "A"),
            ("end", "A"),
            ("end", "R"),
        ]
        assert incidents == ["unexpected end tag </X>"]

    def test_bare_angle_bracket_is_text(self):
        incidents = []
        events = events_of(
            "<R>a < b<A/></R>", on_recover=lambda o, m: incidents.append((o, m))
        )
        assert events == [
            ("start", "R"),
            ("start", "A"),
            ("end", "A"),
            ("end", "R"),
        ]
        offset, message = incidents[0]
        assert "malformed start tag" in message
        assert offset == "<R>a < b<A/></R>".index("<", 1)  # the stray '<'

    def test_unterminated_comment_swallows_rest(self):
        events = events_of("<R><A/><!-- torn ")
        assert events == [
            ("start", "R"),
            ("start", "A"),
            ("end", "A"),
            ("end", "R"),
        ]

    def test_malformed_end_tag_is_skipped(self):
        events = events_of("<R><A/></ ></R>")
        assert ("end", "R") == events[-1]
        assert ("start", "A") in events

    def test_stray_markup_declaration_is_skipped(self):
        events = events_of("<R><!ELEMENT R ANY><A/></R>")
        assert events == [
            ("start", "R"),
            ("start", "A"),
            ("end", "A"),
            ("end", "R"),
        ]


class TestLenientBuilds:
    DAMAGED = "<R><A><B>x</B><A><B>y</B></A></R>"  # first <A> never closes

    def test_strict_build_raises(self):
        with pytest.raises(ParseError):
            build_synopsis(self.DAMAGED)

    def test_lenient_build_succeeds(self):
        system = build_synopsis(self.DAMAGED, lenient=True)
        assert system.estimate("//A/B") > 0

    def test_builder_records_recoveries(self):
        builder = SynopsisBuilder(lenient=True)
        builder.from_text(self.DAMAGED)
        assert builder.last_recoveries
        offsets = [offset for offset, _ in builder.last_recoveries]
        assert all(0 <= offset <= len(self.DAMAGED) for offset in offsets)
        # A clean build resets the incident list.
        builder.from_text("<R><A/></R>")
        assert builder.last_recoveries == []

    def test_scan_text_lenient_matches_strict_on_clean_input(self):
        clean = "<R><A><B>x</B></A><A><B>y</B></A></R>"
        strict = scan_text(clean)
        lenient = scan_text(clean, lenient=True)
        assert lenient.paths == strict.paths
        assert lenient.freq == strict.freq
        assert lenient.element_count == strict.element_count

    def test_lenient_survives_unsplittable_damage_with_workers(self):
        # Damaged top-level structure defeats the chunker; the lenient
        # build falls back to a single-pass recovery scan.
        system = build_synopsis(self.DAMAGED, lenient=True, workers=4, shard_bytes=4)
        assert system.estimate("//A/B") > 0
