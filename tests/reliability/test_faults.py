"""The fault-injection harness itself: schedules, effects, scoping."""

from __future__ import annotations

import json
import os

import pytest

from repro.reliability import faults
from repro.reliability.faults import (
    CorruptFault,
    DelayFault,
    FailFault,
    Fault,
    FaultInjector,
    TruncateFault,
    WORKER_FAULT_ENV,
)


class TestSchedules:
    def test_no_injector_is_a_passthrough(self):
        assert faults.fire("anything", "payload") == "payload"

    def test_times_limits_firings(self):
        injector = FaultInjector().plan("site", FailFault(OSError, times=2))
        with faults.inject(injector):
            for _ in range(2):
                with pytest.raises(OSError):
                    faults.fire("site")
            faults.fire("site")  # exhausted: no raise
        assert injector.calls("site") == 3
        assert injector.fired("site") == 2

    def test_every_selects_the_kth_calls(self):
        injector = FaultInjector().plan("site", FailFault(OSError, times=None, every=3))
        hits = []
        with faults.inject(injector):
            for call in range(1, 10):
                try:
                    faults.fire("site")
                except OSError:
                    hits.append(call)
        assert hits == [3, 6, 9]

    def test_sites_are_independent(self):
        injector = FaultInjector().plan("a", FailFault(OSError))
        with faults.inject(injector):
            faults.fire("b")  # unplanned site: no-op
            with pytest.raises(OSError):
                faults.fire("a")

    def test_log_records_site_call_and_class(self):
        injector = FaultInjector().plan("site", TruncateFault(keep=1))
        with faults.inject(injector):
            faults.fire("site", "abc")
        assert injector.log == [("site", 1, "TruncateFault")]

    def test_injectors_nest_and_restore(self):
        outer = FaultInjector()
        inner = FaultInjector()
        with faults.inject(outer):
            with faults.inject(inner):
                faults.fire("site")
            faults.fire("site")
        assert inner.calls("site") == 1
        assert outer.calls("site") == 1
        assert faults.fire("site", "x") == "x"  # nothing active anymore

    def test_every_validation(self):
        with pytest.raises(ValueError):
            Fault(every=0)


class TestEffects:
    def test_fail_fault_raises_fresh_instances(self):
        fault = FailFault(ValueError, "boom", times=2)
        first = pytest.raises(ValueError, fault.apply, None).value
        second = pytest.raises(ValueError, fault.apply, None).value
        assert first is not second
        assert str(first) == "boom"

    def test_truncate_fault_keeps_a_prefix(self):
        assert TruncateFault(keep=3).apply("abcdef") == "abc"
        assert TruncateFault(keep=3).apply(None) is None

    def test_corrupt_fault_flips_one_character(self):
        text = "0123456789"
        damaged = CorruptFault().apply(text)
        assert len(damaged) == len(text)
        assert damaged != text
        differing = [i for i, (a, b) in enumerate(zip(text, damaged)) if a != b]
        assert len(differing) == 1

    def test_delay_fault_sleeps(self, monkeypatch):
        slept = []
        monkeypatch.setattr(faults.time, "sleep", slept.append)
        DelayFault(0.25).apply("x")
        assert slept == [0.25]


class TestWorkerFaults:
    def test_env_plan_set_and_restored(self):
        assert WORKER_FAULT_ENV not in os.environ
        with faults.worker_faults(kind="crash", times=2) as directory:
            spec = json.loads(os.environ[WORKER_FAULT_ENV])
            assert spec["kind"] == "crash"
            assert spec["times"] == 2
            assert spec["dir"] == directory
            assert os.path.isdir(directory)
        assert WORKER_FAULT_ENV not in os.environ
        assert not os.path.exists(directory)

    def test_marker_files_give_exactly_n_firings(self, monkeypatch):
        # A "delay" plan with zero sleep exercises the claim protocol
        # in-process: exactly `times` calls claim a marker.
        with faults.worker_faults(kind="delay", times=2, delay_s=0.0) as directory:
            for _ in range(5):
                faults.worker_fault_point()
            assert len(os.listdir(directory)) == 2

    def test_fault_point_without_plan_is_free(self):
        faults.worker_fault_point()  # no env: no-op, no raise

    def test_malformed_env_plan_is_ignored(self, monkeypatch):
        monkeypatch.setenv(WORKER_FAULT_ENV, "{not json")
        faults.worker_fault_point()  # no raise

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            with faults.worker_faults(kind="explode"):
                pass
