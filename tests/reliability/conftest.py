"""Shared fixtures for the reliability / fault-injection suite."""

from __future__ import annotations

import pytest

from repro import EstimationSystem, persist
from repro.service import EstimationService, ServiceServer, SynopsisRegistry


@pytest.fixture(scope="module")
def figure1_system(figure1):
    return EstimationSystem.build(figure1, p_variance=0, o_variance=0)


@pytest.fixture()
def snapshot_dir(tmp_path, figure1_system):
    persist.save(figure1_system, str(tmp_path / "fig1.json"))
    return tmp_path


@pytest.fixture()
def running_server(snapshot_dir):
    registry = SynopsisRegistry(str(snapshot_dir))
    registry.scan()
    service = EstimationService(registry)
    with ServiceServer(service, port=0) as server:
        yield server
