"""Hot-reload fallback: a bad replacement snapshot never changes estimates.

The acceptance property: truncating a snapshot underneath a serving
registry leaves every estimate bit-identical (last-good kept), flips the
entry to degraded, and bumps ``reload_failures`` — and a fixed snapshot
heals it all without a restart.
"""

from __future__ import annotations

import os
import time

import pytest

from repro import EstimationSystem, persist
from repro.reliability import faults
from repro.reliability.faults import FailFault, FaultInjector
from repro.service import SynopsisRegistry
from repro.service.registry import UnknownSynopsisError


def touch_newer(path):
    stamp = time.time_ns() + 1_000_000
    os.utime(path, ns=(stamp, stamp))


@pytest.fixture()
def registry(snapshot_dir):
    registry = SynopsisRegistry(str(snapshot_dir))
    registry.scan()
    return registry


class TestTruncatedReload:
    def test_truncated_snapshot_keeps_last_good(self, registry, snapshot_dir):
        path = str(snapshot_dir / "fig1.json")
        before = registry.get("fig1")
        baseline = before.system.estimate("//A/B")
        generation = before.generation

        with open(path) as handle:
            text = handle.read()
        with open(path, "w") as handle:
            handle.write(text[: len(text) // 2])
        touch_newer(path)

        entry = registry.get("fig1")
        assert entry.system.estimate("//A/B") == baseline
        assert entry.generation == generation
        assert entry.degraded
        assert "reload failed" in entry.load_error
        assert registry.reload_failures == 1
        assert registry.degraded() == {"fig1": entry.load_error}
        assert entry.describe()["degraded"] is True

    def test_degraded_counts_once_per_incident(self, registry, snapshot_dir):
        path = str(snapshot_dir / "fig1.json")
        with open(path, "w") as handle:
            handle.write("{torn")
        touch_newer(path)
        for _ in range(5):
            registry.get("fig1")
        assert registry.reload_failures == 1

    def test_fixed_snapshot_heals_without_restart(
        self, registry, snapshot_dir, figure1
    ):
        path = str(snapshot_dir / "fig1.json")
        with open(path, "w") as handle:
            handle.write("{torn")
        touch_newer(path)
        registry.get("fig1")
        assert registry.degraded()

        coarse = EstimationSystem.build(figure1, p_variance=1e9, o_variance=1e9)
        persist.save(coarse, path)
        touch_newer(path)
        entry = registry.get("fig1")
        assert not entry.degraded
        assert entry.generation == 2
        assert entry.system.estimate("//A/B") == coarse.estimate("//A/B")
        assert registry.degraded() == {}
        # The failure counter is history, not state: it does not reset.
        assert registry.reload_failures == 1

    def test_deleted_snapshot_keeps_serving_degraded(self, registry, snapshot_dir):
        path = str(snapshot_dir / "fig1.json")
        baseline = registry.get("fig1").system.estimate("//A/B")
        os.unlink(path)
        entry = registry.get("fig1")
        assert entry.system.estimate("//A/B") == baseline
        assert "unreadable" in entry.load_error
        assert registry.reload_failures == 1

    def test_read_fault_during_reload_keeps_last_good(self, registry, snapshot_dir):
        baseline = registry.get("fig1").system.estimate("//A/B")
        injector = FaultInjector().plan(
            "registry.load", FailFault(OSError, "io error", times=3)
        )
        with faults.inject(injector):
            entry = registry.get("fig1")
            assert entry.system.estimate("//A/B") == baseline
            assert entry.degraded
        # Faults cleared: the next check recovers by itself.
        assert not registry.get("fig1").degraded

    def test_corrupt_initial_load_is_unknown_not_crash(self, tmp_path):
        with open(str(tmp_path / "bad.json"), "w") as handle:
            handle.write("{torn")
        registry = SynopsisRegistry(str(tmp_path))
        assert registry.scan() == []
        assert "bad" in registry.scan_errors
        with pytest.raises(UnknownSynopsisError):
            registry.get("bad")


class TestStampChecksum:
    def test_same_mtime_overwrite_is_detected(
        self, registry, snapshot_dir, figure1
    ):
        # An overwrite that restores the original mtime (coarse clocks,
        # mtime-preserving copies) defeats a stat-only stamp; the content
        # checksum in the stamp still catches it.
        path = str(snapshot_dir / "fig1.json")
        registry.get("fig1")
        status = os.stat(path)
        coarse = EstimationSystem.build(figure1, p_variance=1e9, o_variance=1e9)
        persist.save(coarse, path)
        os.utime(path, ns=(status.st_mtime_ns, status.st_mtime_ns))

        entry = registry.get("fig1")
        assert entry.generation == 2
        assert entry.system.estimate("//A/B") == coarse.estimate("//A/B")

    def test_untouched_snapshot_does_not_reload(self, registry):
        first = registry.get("fig1")
        assert registry.get("fig1").generation == first.generation == 1
