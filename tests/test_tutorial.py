"""Executable checks for every claim in docs/TUTORIAL.md.

Documentation that drifts from the code is worse than none; this module
re-runs each tutorial snippet's assertions.
"""

import pytest

from repro import EstimationSystem, parse_query
from repro.core.explain import explain
from repro.histograms import OHistogramSet, PHistogramSet
from repro.xpath import Evaluator
from repro.pathenc import label_document
from repro.stats import collect_path_order, collect_pathid_frequencies
from repro.xmltree import parse_xml

TUTORIAL_XML = """
<Root>
  <A> <B><D/><E/></B> </A>
  <A> <B><D/></B> <C><E/><F/></C> <B><D/></B> </A>
  <A> <C><E/></C> <B><D/></B> </A>
</Root>"""


@pytest.fixture(scope="module")
def document():
    return parse_xml(TUTORIAL_XML)


@pytest.fixture(scope="module")
def labeled(document):
    return label_document(document)


@pytest.fixture(scope="module")
def system(document):
    return EstimationSystem.build(document, p_variance=0, o_variance=0)


class TestSection1Encoding:
    def test_paths(self, labeled):
        assert labeled.encoding_table.all_paths() == [
            "Root/A/B/D", "Root/A/B/E", "Root/A/C/E", "Root/A/C/F",
        ]

    def test_pathids(self, labeled):
        assert [labeled.format_pathid(p) for p in labeled.distinct_pathids()] == [
            "0001", "0010", "0011", "0100", "1000", "1010", "1011", "1100", "1111",
        ]


class TestSection2Statistics:
    def test_freq_pairs(self, labeled):
        freq = collect_pathid_frequencies(labeled)
        assert freq.pairs("B") == [(0b1000, 3), (0b1100, 1)]

    def test_order_cells(self, labeled):
        order = collect_path_order(labeled)
        assert order.grid("B").g_before(0b1000, "C") == 1
        assert order.grid("B").g_after(0b1000, "C") == 2


class TestSection3Histograms:
    def test_build(self, labeled):
        freq = collect_pathid_frequencies(labeled)
        order = collect_path_order(labeled)
        phist = PHistogramSet.from_table(freq, 1)
        ohist = OHistogramSet.from_table(order, phist, 1)
        assert phist.histogram("B").bucket_count >= 1
        assert ohist.total_buckets() >= 1


class TestSection4PathJoin:
    def test_figure3_state(self, system):
        join = system.join("//A[/C/F]/B/D")
        survivors = {
            node.tag: join.pids(node) for node in join.query.nodes()
        }
        assert survivors["A"] == {0b1011: 1}
        assert survivors["C"] == {0b0011: 1}
        assert survivors["B"] == {0b1000: 3}
        assert survivors["D"] == {0b1000: 4}


class TestSection5Branch:
    def test_corrected_vs_raw(self, system):
        assert system.estimate("//C[/$E]/F") == pytest.approx(1.0)
        query = parse_query("//C[/$E]/F")
        assert system.join(query).frequency(query.target) == pytest.approx(2.0)


class TestSection6Order:
    @pytest.mark.parametrize(
        "text",
        [
            "//A[/C[/F]/folls::$B/D]",
            "//A[/C[/F]/folls::B/$D]",
            "//$A[/C[/F]/folls::B/D]",
        ],
    )
    def test_order_examples(self, system, text):
        assert system.estimate(text) == pytest.approx(1.0)

    def test_rewrite_render(self, system):
        rendered = explain(system, "//A[/C/foll::$D]").render()
        assert "example-5.3-rewrite" in rendered
        assert "estimate=2.000" in rendered


class TestSection7GroundTruth:
    def test_evaluator(self, document):
        query = parse_query("//A[/C[/F]/folls::$B/D]")
        assert Evaluator(document).selectivity(query) == 1
