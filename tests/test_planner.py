"""Tests for the selectivity-driven query planner."""

import pytest

from repro.core.system import EstimationSystem
from repro.planner import QueryPlanner
from repro.queryproc import StructuralJoinProcessor
from repro.workload import WorkloadGenerator
from repro.xmltree.builder import el
from repro.xmltree.document import XmlDocument
from repro.xpath import Evaluator, parse_query


@pytest.fixture(scope="module")
def skewed_doc():
    """Records where one field is rare and another ubiquitous."""
    root = el("lib")
    for index in range(60):
        record = el("rec", el("common"))
        if index % 20 == 0:
            record.append(el("rare"))
        root.append(record)
    return XmlDocument(root)


@pytest.fixture(scope="module")
def planner(skewed_doc):
    return QueryPlanner(EstimationSystem.build(skewed_doc, p_variance=0))


class TestSemanticsPreserved:
    def test_same_matches_on_crafted_doc(self, skewed_doc, planner):
        query = parse_query("//rec[/common][/rare]")
        planned = planner.plan(query)
        evaluator = Evaluator(skewed_doc)
        assert evaluator.matching_pres(planned, planned.target) == \
            evaluator.matching_pres(query, query.target)

    def test_same_matches_on_workload(self, ssplays_small):
        planner = QueryPlanner(EstimationSystem.build(ssplays_small, p_variance=0))
        evaluator = Evaluator(ssplays_small)
        items = WorkloadGenerator(ssplays_small, seed=37).branch_queries(60)
        for item in items[:30]:
            planned = planner.plan(item.query)
            assert evaluator.selectivity(planned) == item.actual

    def test_target_preserved(self, planner):
        query = parse_query("//rec[/$common][/rare]")
        assert planner.plan(query).target.tag == "common"

    def test_order_queries_plannable(self, ssplays_small):
        planner = QueryPlanner(EstimationSystem.build(ssplays_small, p_variance=0))
        evaluator = Evaluator(ssplays_small)
        branch_items, _ = WorkloadGenerator(ssplays_small, seed=37).order_queries(40)
        for item in branch_items[:10]:
            planned = planner.plan(item.query)
            assert evaluator.selectivity(planned) == item.actual


class TestOrdering:
    def test_selective_branch_first(self, planner):
        query = parse_query("//rec[/common][/rare]")
        planned = planner.plan(query)
        tags = [edge.node.tag for edge in planned.root.edges]
        assert tags == ["rare", "common"]

    def test_already_ordered_untouched(self, planner):
        query = parse_query("//rec[/rare][/common]")
        planned = planner.plan(query)
        tags = [edge.node.tag for edge in planned.root.edges]
        assert tags == ["rare", "common"]

    def test_single_edge_nodes_stable(self, planner):
        query = parse_query("//rec/common")
        assert planner.plan(query).to_string() == query.to_string()


class TestWorkReduction:
    def test_planned_order_does_less_semijoin_work(self, skewed_doc, planner):
        processor = StructuralJoinProcessor(skewed_doc)
        bad = parse_query("//rec[/common][/rare]")   # unselective first
        good = planner.plan(bad)
        processor.count(bad, use_path_ids=False)
        unplanned_work = processor.last_semijoin_work
        processor.count(good, use_path_ids=False)
        planned_work = processor.last_semijoin_work
        assert planned_work < unplanned_work
