"""Golden path: a traced ``/estimate`` round-trips the span tree through
the HTTP client, and the observability endpoints serve both formats."""

from __future__ import annotations

import http.client

import pytest

from repro import EstimationSystem, persist
from repro.core.result import RESULT_FORMAT_VERSION
from repro.service import (
    EstimationService,
    ServerConfig,
    ServiceClient,
    ServiceServer,
    SynopsisRegistry,
    serve,
)


@pytest.fixture(scope="module")
def snapshot_dir(tmp_path_factory, figure1):
    directory = tmp_path_factory.mktemp("snapshots")
    system = EstimationSystem.build(figure1, p_variance=0, o_variance=0)
    persist.save(system, str(directory / "fig1.json"))
    return directory


@pytest.fixture()
def server(snapshot_dir):
    with serve(str(snapshot_dir), config=ServerConfig(port=0)) as running:
        yield running


@pytest.fixture()
def client(server):
    with ServiceClient(host=server.host, port=server.port) as c:
        yield c


def span_names(span, into=None):
    names = into if into is not None else []
    names.append(span["name"])
    for child in span.get("children", []):
        span_names(child, names)
    return names


def http_get(server, path):
    connection = http.client.HTTPConnection(server.host, server.port)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, response.getheader("Content-Type"), response.read()
    finally:
        connection.close()


class TestTracedRoundTrip:
    def test_trace_round_trips_through_the_client(self, client):
        result = client.estimate_traced("fig1", "//A/$B")
        assert result.value == client.estimate("fig1", "//A/$B")
        assert result.trace is not None
        assert result.trace["version"] >= 1
        assert result.trace_id
        names = span_names(result.trace["root"])
        for expected in ("parse", "plan", "join", "pathid-match", "p-hist lookup"):
            assert expected in names, names

    def test_traced_request_on_a_cached_plan_still_traces(self, client):
        client.estimate("fig1", "//A/$B")  # warm the plan cache
        result = client.estimate_traced("fig1", "//A/$B")
        assert "join" in span_names(result.trace["root"])

    def test_untraced_response_carries_versioned_result_without_trace(self, client):
        reply = client.estimate_detail("fig1", "//A/$B")
        assert reply["estimate"] == reply["result"]["value"]  # legacy + new
        assert reply["result"]["version"] == RESULT_FORMAT_VERSION
        assert "trace" not in reply["result"]

    def test_batch_results_carry_result_objects(self, client):
        conn = http.client.HTTPConnection(client.host, client.port)
        import json

        body = json.dumps(
            {"synopsis": "fig1", "queries": ["//A/$B", "//$A"], "trace": True}
        )
        conn.request(
            "POST", "/estimate", body=body,
            headers={"Content-Type": "application/json"},
        )
        reply = json.loads(conn.getresponse().read())
        conn.close()
        assert reply["count"] == 2
        for entry in reply["results"]:
            assert "trace" in entry["result"]

    def test_bad_trace_flag_rejected(self, client):
        from repro.service import ServiceError

        with pytest.raises(ServiceError) as caught:
            client._request(
                "POST", "/estimate",
                {"synopsis": "fig1", "query": "//$A", "trace": "yes"},
            )
        assert caught.value.status == 400


class TestObservabilityEndpoints:
    def test_prom_exposition(self, server, client):
        client.estimate("fig1", "//A/$B")
        status, content_type, body = http_get(server, "/metrics?format=prom")
        assert status == 200
        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type
        text = body.decode("utf-8")
        assert "# TYPE repro_requests_total counter" in text
        assert "repro_request_latency_seconds_bucket" in text
        assert "repro_plan_cache_size" in text

    def test_json_metrics_unchanged_by_format_param(self, server, client):
        client.estimate("fig1", "//A/$B")
        status, content_type, body = http_get(server, "/metrics")
        assert status == 200
        assert content_type == "application/json"
        import json

        document = json.loads(body)
        assert document["requests_total"] >= 1
        assert "latency_ms" in document

    def test_slowlog_endpoint_and_client(self, client):
        client.estimate_detail("fig1", "//A/$B", actual=100.0)
        document = client.slowlog(limit=5)
        assert document["observed"] >= 1
        assert document["recent"][0]["query"] == "//A/$B"
        assert document["top_error"][0]["rel_error"] is not None

    def test_traced_queries_stamp_the_slowlog(self, client):
        traced = client.estimate_traced("fig1", "//A/$B")
        document = client.slowlog()
        ids = [entry.get("trace_id") for entry in document["recent"]]
        assert traced.trace_id in ids


class TestSampling:
    def test_sample_rate_one_traces_every_request(self, snapshot_dir):
        registry = SynopsisRegistry(str(snapshot_dir))
        registry.scan()
        service = EstimationService(registry, trace_sample_rate=1.0)
        with ServiceServer(service, port=0) as running:
            with ServiceClient(host=running.host, port=running.port) as client:
                reply = client.estimate_detail("fig1", "//A/$B")  # no trace flag
        assert "trace" in reply["result"]

    def test_fractional_rate_is_systematic(self, snapshot_dir):
        registry = SynopsisRegistry(str(snapshot_dir))
        registry.scan()
        service = EstimationService(registry, trace_sample_rate=0.25)
        picks = [service._sample_trace() for _ in range(20)]
        assert sum(picks) == 5
        # Deterministic: a fresh service makes the same picks.
        again = EstimationService(registry, trace_sample_rate=0.25)
        assert [again._sample_trace() for _ in range(20)] == picks
