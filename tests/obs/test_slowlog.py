"""Slow-query log: threshold, ring eviction, top-K boards, snapshot."""

from __future__ import annotations

from repro.obs.slowlog import SlowQueryLog, relative_error


class TestThresholdAndRing:
    def test_below_threshold_skips_recent_but_counts(self):
        log = SlowQueryLog(threshold_ms=10.0)
        log.observe("//fast", 1.0)
        log.observe("//slow", 25.0)
        assert log.observed == 2
        assert [r.query for r in log.recent()] == ["//slow"]

    def test_ring_evicts_oldest_at_capacity(self):
        log = SlowQueryLog(capacity=3)
        for index in range(5):
            log.observe("//q%d" % index, float(index))
        recent = [r.query for r in log.recent()]
        assert recent == ["//q4", "//q3", "//q2"]  # newest first, bounded
        assert log.observed == 5

    def test_recent_limit(self):
        log = SlowQueryLog()
        for index in range(10):
            log.observe("//q%d" % index, 1.0)
        assert len(log.recent(3)) == 3


class TestTopBoards:
    def test_top_by_latency_ordering_and_bound(self):
        log = SlowQueryLog(top_k=3)
        for index, elapsed in enumerate([5.0, 50.0, 1.0, 30.0, 40.0]):
            log.observe("//q%d" % index, elapsed)
        top = [(r.query, r.elapsed_ms) for r in log.top_by_latency()]
        assert top == [("//q1", 50.0), ("//q4", 40.0), ("//q3", 30.0)]

    def test_top_by_error_needs_ground_truth(self):
        log = SlowQueryLog()
        log.observe("//no-truth", 1.0, estimate=10.0)
        log.observe("//good", 1.0, estimate=99.0, actual=100.0)
        log.observe("//bad", 1.0, estimate=10.0, actual=100.0)
        board = [(r.query, r.rel_error) for r in log.top_by_error()]
        assert board[0][0] == "//bad"
        assert board[0][1] == relative_error(10.0, 100.0)
        assert [q for q, _ in board] == ["//bad", "//good"]

    def test_slow_queries_survive_ring_eviction_on_boards(self):
        log = SlowQueryLog(capacity=2, top_k=8)
        log.observe("//slowest", 1000.0)
        for index in range(10):
            log.observe("//q%d" % index, 1.0)
        assert "//slowest" not in [r.query for r in log.recent()]
        assert log.top_by_latency()[0].query == "//slowest"


class TestSnapshot:
    def test_snapshot_is_the_wire_document(self):
        log = SlowQueryLog(capacity=8, threshold_ms=0.5, top_k=4)
        log.observe(
            "//PLAY/$ACT",
            2.5,
            synopsis="SSPlays",
            route="no_order",
            estimate=10.0,
            actual=20.0,
            trace_id="deadbeefdeadbeef",
        )
        document = log.snapshot()
        assert document["threshold_ms"] == 0.5
        assert document["capacity"] == 8
        assert document["top_k"] == 4
        assert document["observed"] == 1
        entry = document["recent"][0]
        assert entry["query"] == "//PLAY/$ACT"
        assert entry["synopsis"] == "SSPlays"
        assert entry["trace_id"] == "deadbeefdeadbeef"
        assert entry["rel_error"] == relative_error(10.0, 20.0)
        import json

        json.dumps(document)

    def test_snapshot_limit_bounds_every_section(self):
        log = SlowQueryLog()
        for index in range(10):
            log.observe("//q%d" % index, float(index), estimate=1.0, actual=2.0)
        document = log.snapshot(limit=2)
        assert len(document["recent"]) == 2
        assert len(document["top_latency"]) == 2
        assert len(document["top_error"]) == 2

    def test_clear(self):
        log = SlowQueryLog()
        log.observe("//q", 1.0)
        log.clear()
        assert log.recent() == []
        assert log.top_by_latency() == []
