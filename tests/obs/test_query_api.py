"""The redesigned public API: the unified estimate() verb with options
objects, EstimateResult, deprecation shims for the old verbs, keyword-only
configuration shims and the stable error-kind wire mapping."""

from __future__ import annotations

import warnings

import pytest

import repro
from repro.core.options import EstimateOptions
from repro.core.result import RESULT_FORMAT_VERSION, EstimateResult
from repro.core.system import EstimationSystem

DETAIL = EstimateOptions(detail=True)
TRACED = EstimateOptions(trace=True)
from repro.errors import TRANSPORT_WIRE_KINDS, WIRE_KINDS, ReproError


@pytest.fixture(scope="module")
def system(figure1):
    return EstimationSystem.build(figure1, p_variance=0, o_variance=0)


def span_names(span, into=None):
    names = into if into is not None else []
    names.append(span["name"])
    for child in span.get("children", []):
        span_names(child, names)
    return names


class TestQueryApi:
    def test_detail_matches_estimate(self, system):
        for text in ("//A/$B", "//A[/B/folls::$C]"):
            result = system.estimate(text, options=DETAIL)
            assert isinstance(result, EstimateResult)
            assert result.value == system.estimate(text)
            assert float(result) == result.value  # float shim
            assert result.query == text
            assert result.elapsed_ms > 0.0
            assert result.trace is None  # tracing is opt-in

    def test_traced_query_names_the_pipeline(self, system):
        result = system.estimate("//A/$B", options=TRACED)
        assert result.trace is not None
        names = span_names(result.trace["root"])
        for expected in ("parse", "plan", "join", "pathid-match", "p-hist lookup"):
            assert expected in names, names
        assert result.trace_id == result.trace["trace_id"]

    def test_traced_order_query_reads_o_histograms(self, system):
        result = system.estimate("//A[/B/folls::$C]", options=TRACED)
        names = span_names(result.trace["root"])
        assert "o-hist lookup" in names, names
        # Counters survive serialization.
        def find(span, name):
            if span["name"] == name:
                return span
            for child in span.get("children", []):
                hit = find(child, name)
                if hit is not None:
                    return hit
            return None

        lookup = find(result.trace["root"], "p-hist lookup")
        assert lookup["counters"]["cells_read"] > 0

    def test_traced_and_untraced_agree(self, system):
        text = "//A[/B/folls::$C]"
        assert system.estimate(text, options=TRACED).value == system.estimate(text)

    def test_result_wire_roundtrip(self, system):
        result = system.estimate("//A/$B", options=TRACED)
        payload = result.as_dict()
        assert payload["version"] == RESULT_FORMAT_VERSION
        rebuilt = EstimateResult.from_dict(payload)
        assert rebuilt.value == result.value
        assert rebuilt.trace == result.trace

    def test_estimate_result_is_exported(self):
        assert repro.EstimateResult is EstimateResult


class TestUnifiedVerb:
    """estimate() is polymorphic: scalar, batch, detail, trace."""

    def test_scalar_is_float(self, system):
        value = system.estimate("//A/$B")
        assert isinstance(value, float)

    def test_batch_is_list_in_order(self, system):
        texts = ["//A/$B", "//A/$C", "//A/$B"]
        values = system.estimate(texts)
        assert values == [system.estimate(t) for t in texts]

    def test_detail_returns_result(self, system):
        result = system.estimate("//A/$B", options=DETAIL)
        assert isinstance(result, EstimateResult)
        assert result.trace is None

    def test_option_objects_are_exported(self):
        assert repro.EstimateOptions is EstimateOptions
        from repro.core.options import ExecuteOptions, ExplainOptions

        assert repro.ExecuteOptions is ExecuteOptions
        assert repro.ExplainOptions is ExplainOptions


class TestDeprecatedVerbs:
    """The collapsed verbs keep working through warning shims."""

    def test_query_warns_and_matches(self, system):
        with pytest.warns(DeprecationWarning, match="EstimationSystem.query"):
            result = system.query("//A/$B")
        assert result.value == system.estimate("//A/$B")

    def test_query_trace_still_traces(self, system):
        with pytest.warns(DeprecationWarning):
            result = system.query("//A/$B", trace=True)
        assert result.trace is not None

    def test_estimate_batch_warns_and_matches(self, system):
        texts = ["//A/$B", "//A/$C"]
        with pytest.warns(DeprecationWarning, match="estimate_batch"):
            values = system.estimate_batch(texts)
        assert values == system.estimate(texts)

    def test_estimate_routed_warns_and_matches(self, system):
        from repro.xpath.parser import parse_query

        parsed = parse_query("//A/$B")
        route = system.select_route(parsed)
        with pytest.warns(DeprecationWarning, match="estimate_routed"):
            value = system.estimate_routed(parsed, route)
        assert value == system.estimate("//A/$B")

    def test_new_surface_stays_silent(self, system):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            system.estimate("//A/$B")
            system.estimate(["//A/$B"])
            system.estimate("//A/$B", options=TRACED)
            system.explain("//A/$B")
            system.execute("//A/$B")


class TestKeywordOnlyShims:
    def test_build_positional_tuning_warns_but_works(self, figure1):
        with pytest.warns(DeprecationWarning, match="p_variance"):
            shimmed = EstimationSystem.build(figure1, 0.0, 0.0)
        clean = EstimationSystem.build(figure1, p_variance=0.0, o_variance=0.0)
        assert shimmed.estimate("//A/$B") == clean.estimate("//A/$B")

    def test_build_synopsis_positional_tuning_warns(self, figure1):
        with pytest.warns(DeprecationWarning, match="p_variance"):
            repro.build_synopsis(figure1, 0.0)

    def test_synopsis_builder_positional_tuning_warns(self):
        with pytest.warns(DeprecationWarning, match="p_variance"):
            builder = repro.SynopsisBuilder(0.25)
        assert builder.p_variance == 0.25

    def test_client_positional_tuning_warns(self):
        from repro.service import ServiceClient

        with pytest.warns(DeprecationWarning, match="port"):
            client = ServiceClient("127.0.0.1", 9999)
        assert client.port == 9999

    def test_keyword_calls_stay_silent(self, figure1):
        # EndpointClient is the canonical client; the ServiceClient name
        # itself warns now (tested separately below).
        from repro.service import EndpointClient

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            EstimationSystem.build(figure1, p_variance=0.0)
            repro.SynopsisBuilder(p_variance=0.0)
            EndpointClient(host="127.0.0.1", port=9999)

    def test_service_client_name_warns(self):
        from repro.service import EndpointClient, ServiceClient

        with pytest.warns(DeprecationWarning, match="repro.connect"):
            client = ServiceClient(host="127.0.0.1", port=9999)
        assert isinstance(client, EndpointClient)

    def test_positional_overflow_raises_type_error(self, figure1):
        with pytest.raises(TypeError):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                EstimationSystem.build(figure1, 0.0, 0.0, True, True, True, 1, "extra")

    def test_client_config_drives_defaults(self):
        from repro.service import ClientConfig, ServiceClient

        client = ServiceClient(config=ClientConfig(port=1234, timeout=1.5))
        assert (client.port, client.timeout) == (1234, 1.5)
        # Explicit keywords beat the config.
        client = ServiceClient(port=9, config=ClientConfig(port=1234))
        assert client.port == 9

    def test_server_config_validates(self):
        from repro.service import ServerConfig

        with pytest.raises(ValueError):
            ServerConfig(trace_sample_rate=1.5)
        assert ServerConfig().as_dict()["port"] == 8750


class TestWireKinds:
    def test_every_class_maps_one_to_one(self):
        assert WIRE_KINDS  # lazily built, importable
        for kind, cls in WIRE_KINDS.items():
            assert issubclass(cls, ReproError)
            assert cls.kind == kind

    def test_known_kinds_are_stable(self):
        # Renaming any of these breaks deployed clients: the set may
        # grow, never shrink or change.
        assert {
            "error", "parse", "query_syntax", "persist", "build",
            "reliability", "obs", "unsupported_query", "deadline_exceeded",
            "circuit_open", "overloaded", "unknown_synopsis",
        } <= set(WIRE_KINDS)

    def test_transport_kinds_do_not_collide(self):
        assert not TRANSPORT_WIRE_KINDS & set(WIRE_KINDS)

    def test_explain_still_matches_query(self, system):
        from repro.core.explain import explain

        report = explain(system, "//A/$B")
        assert report.estimate == system.estimate("//A/$B")
        # The docstring points migrating users at the traced estimate API.
        assert "EstimateOptions(trace=True)" in explain.__doc__
