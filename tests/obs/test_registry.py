"""MetricsRegistry: typed families, JSON snapshot, Prometheus text."""

from __future__ import annotations

import math
import re

import pytest

from repro.errors import ObservabilityError
from repro.obs.registry import DEFAULT_LATENCY_BUCKETS, MetricsRegistry

# One Prometheus 0.0.4 sample line: name{labels} value
_LABEL = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{%s(,%s)*\})? (?:[+-]?(?:\d+(?:\.\d+)?"
    r"(?:e[+-]?\d+)?|Inf|NaN))$" % (_LABEL, _LABEL)
)


class TestFamilies:
    def test_counter_only_goes_up(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_total", "help")
        counter.inc()
        counter.inc(2)
        assert counter.value == 3
        with pytest.raises(ObservabilityError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_test_gauge")
        gauge.set(5)
        gauge.dec(2)
        assert gauge.value == 3

    def test_histogram_cumulative_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "repro_test_seconds", buckets=(0.01, 0.1, 1.0)
        )
        for value in (0.005, 0.05, 0.5, 5.0):
            histogram.observe(value)
        exposed = registry.get("repro_test_seconds").labels().expose()
        assert exposed["buckets"] == [(0.01, 1), (0.1, 2), (1.0, 3), (math.inf, 4)]
        assert exposed["count"] == 4
        assert exposed["sum"] == pytest.approx(5.555)

    def test_labelled_children_are_independent(self):
        registry = MetricsRegistry()
        family = registry.counter("repro_by_name_total", labels=("synopsis",))
        family.labels(synopsis="a").inc()
        family.labels(synopsis="b").inc(2)
        assert family.labels(synopsis="a").value == 1
        assert family.total() == 3
        with pytest.raises(ObservabilityError):
            family.labels(wrong="a")
        with pytest.raises(ObservabilityError):
            family.inc()  # labelled family has no scalar shortcut

    def test_reregistration_idempotent_but_type_safe(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_twice_total", labels=("k",))
        assert registry.counter("repro_twice_total", labels=("k",)) is first
        with pytest.raises(ObservabilityError):
            registry.gauge("repro_twice_total", labels=("k",))
        with pytest.raises(ObservabilityError):
            registry.counter("repro_twice_total", labels=("other",))

    def test_invalid_names_rejected_at_registration(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            registry.counter("bad name")
        with pytest.raises(ObservabilityError):
            registry.counter("repro_ok_total", labels=("__reserved",))


class TestExposition:
    @pytest.fixture()
    def populated(self):
        registry = MetricsRegistry()
        registry.counter("repro_requests_total", "Requests.").inc(3)
        by_name = registry.counter(
            "repro_synopsis_requests_total", "Per synopsis.", labels=("synopsis",)
        )
        by_name.labels(synopsis="SSPlays").inc(2)
        by_name.labels(synopsis='we"ird\n').inc()
        registry.gauge("repro_uptime_seconds", "Uptime.").set(12.5)
        registry.histogram(
            "repro_request_latency_seconds", "Latency.",
            buckets=DEFAULT_LATENCY_BUCKETS,
        ).observe(0.003)
        return registry

    def test_json_snapshot_shape(self, populated):
        document = populated.snapshot()
        assert document["repro_requests_total"]["type"] == "counter"
        assert document["repro_requests_total"]["values"] == [
            {"labels": {}, "value": 3}
        ]
        latency = document["repro_request_latency_seconds"]["values"][0]
        assert latency["count"] == 1
        assert latency["buckets"][-1][0] == "+Inf"
        import json

        json.dumps(document)  # JSON-ready all the way down

    def test_prom_text_parses(self, populated):
        text = populated.render_prom()
        assert text.endswith("\n")
        for line in text.splitlines():
            if not line:
                continue
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                continue
            assert SAMPLE_LINE.match(line), line

    def test_prom_histogram_series(self, populated):
        text = populated.render_prom()
        buckets = [
            line
            for line in text.splitlines()
            if line.startswith("repro_request_latency_seconds_bucket")
        ]
        # One line per bound plus +Inf, cumulative counts never decrease.
        assert len(buckets) == len(DEFAULT_LATENCY_BUCKETS) + 1
        counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
        assert counts == sorted(counts)
        assert 'le="+Inf"' in buckets[-1]
        assert "repro_request_latency_seconds_sum" in text
        assert "repro_request_latency_seconds_count 1" in text

    def test_prom_escapes_label_values(self, populated):
        text = populated.render_prom()
        assert '{synopsis="we\\"ird\\n"}' in text

    def test_type_and_help_comments_precede_samples(self, populated):
        lines = populated.render_prom().splitlines()
        index = lines.index("# TYPE repro_requests_total counter")
        assert lines[index - 1] == "# HELP repro_requests_total Requests."
        assert lines[index + 1] == "repro_requests_total 3"
