"""Tracer: nesting, aggregates, determinism, thread-safety, null path."""

from __future__ import annotations

import threading

from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    TRACE_FORMAT_VERSION,
    NullTracer,
    Tracer,
    _reset_trace_ids,
    make_trace_id,
)


def span_index(trace_root):
    """name -> span dict, flattened (asserts names are unique first)."""
    index = {}

    def walk(span):
        assert span["name"] not in index
        index[span["name"]] = span
        for child in span.get("children", []):
            walk(child)

    walk(trace_root)
    return index


class TestNesting:
    def test_children_follow_the_with_structure(self):
        tracer = Tracer("estimate")
        with tracer.span("parse"):
            pass
        with tracer.span("plan"):
            with tracer.span("route"):
                pass
        trace = tracer.finish()
        assert trace["version"] == TRACE_FORMAT_VERSION
        root = trace["root"]
        assert [c["name"] for c in root["children"]] == ["parse", "plan"]
        plan = root["children"][1]
        assert [c["name"] for c in plan["children"]] == ["route"]

    def test_span_records_wall_and_cpu_and_count(self):
        tracer = Tracer()
        with tracer.span("work") as span:
            span.incr("items", 3)
            span.incr("items", 2)
        payload = tracer.finish()["root"]["children"][0]
        assert payload["count"] == 1
        assert payload["wall_ms"] >= 0.0
        assert payload["cpu_ms"] >= 0.0
        assert payload["counters"] == {"items": 5}

    def test_fresh_spans_do_not_merge(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("round"):
                pass
        assert len(tracer.finish()["root"]["children"]) == 3

    def test_finish_is_idempotent(self):
        tracer = Tracer()
        with tracer.span("only"):
            pass
        assert tracer.finish() is tracer.finish()


class TestAggregate:
    def test_same_parent_sections_merge_into_one_span(self):
        tracer = Tracer()
        for index in range(4):
            with tracer.aggregate("p-hist lookup") as span:
                span.incr("cells_read", index + 1)
        root = tracer.finish()["root"]
        assert len(root["children"]) == 1
        merged = root["children"][0]
        assert merged["count"] == 4
        assert merged["counters"] == {"cells_read": 10}

    def test_different_parents_do_not_merge(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.aggregate("lookup"):
                pass
        with tracer.span("b"):
            with tracer.aggregate("lookup"):
                pass
        index = {}
        root = tracer.finish()["root"]
        for child in root["children"]:
            index[child["name"]] = [g["name"] for g in child.get("children", [])]
        assert index == {"a": ["lookup"], "b": ["lookup"]}


class TestDeterminism:
    def test_same_seed_sequence_same_ids(self):
        _reset_trace_ids()
        first = [make_trace_id("estimate", "//A/$B") for _ in range(3)]
        _reset_trace_ids()
        second = [make_trace_id("estimate", "//A/$B") for _ in range(3)]
        assert first == second
        assert len(set(first)) == 3  # sequence number still disambiguates

    def test_tracer_id_shape(self):
        tracer = Tracer("estimate", seed=("SSPlays", "//A/$B"))
        assert len(tracer.trace_id) == 16
        int(tracer.trace_id, 16)  # hex
        assert tracer.finish()["trace_id"] == tracer.trace_id


class TestThreadSafety:
    def test_concurrent_spans_land_under_root_without_corruption(self):
        tracer = Tracer("build")
        errors = []

        def worker(name):
            try:
                for _ in range(50):
                    with tracer.aggregate("scan") as span:
                        span.incr("shards")
                    with tracer.span(name):
                        pass
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=("w%d" % i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        root = tracer.finish()["root"]
        scans = [c for c in root["children"] if c["name"] == "scan"]
        # Each thread aggregates per (parent, name); parent is the shared
        # root so all 4x50 sections merged into one span.
        assert len(scans) == 1
        assert scans[0]["count"] == 200
        assert scans[0]["counters"] == {"shards": 200}
        named = [c for c in root["children"] if c["name"].startswith("w")]
        assert len(named) == 200


class TestNullFastPath:
    def test_singletons_and_no_allocation(self):
        assert isinstance(NULL_TRACER, NullTracer)
        assert NULL_TRACER.enabled is False
        # Both constructors hand back the one shared span: nothing is
        # allocated per span site when tracing is off.
        assert NULL_TRACER.span("parse") is NULL_SPAN
        assert NULL_TRACER.aggregate("p-hist lookup") is NULL_SPAN
        assert NULL_TRACER.current() is NULL_SPAN

    def test_null_span_is_inert(self):
        with NULL_TRACER.span("anything") as span:
            span.incr("cells_read", 10)
        assert NULL_TRACER.finish() is None
        assert NULL_TRACER.span_names() == []
        assert NULL_SPAN.to_dict() is None

    def test_null_types_are_slotted(self):
        # __slots__ = () guarantees no per-instance dict: the fast path
        # cannot accidentally accumulate state.
        assert not hasattr(NULL_TRACER, "__dict__")
        assert not hasattr(NULL_SPAN, "__dict__")
