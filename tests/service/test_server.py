"""HTTP server: endpoints, errors, concurrency, hot reload, metrics."""

import json
import os
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

import repro
from repro import EstimationSystem, persist
from repro.service import (
    EstimationService,
    ServiceClient,
    ServiceError,
    ServiceServer,
    SynopsisRegistry,
)
from repro.workload import WorkloadGenerator


def client_for(server):
    return ServiceClient(port=server.port)


class TestEndpoints:
    def test_healthz(self, running_server):
        assert client_for(running_server).healthz() == {
            "status": "ok",
            "synopses": 2,
            "reload_failures": 0,
            "kernels": {"SSPlays": "pending", "fig1": "pending"},
        }

    def test_synopses(self, running_server):
        names = [entry["name"] for entry in client_for(running_server).synopses()]
        assert names == ["SSPlays", "fig1"]

    def test_single_estimate(self, running_server, figure1_system):
        detail = client_for(running_server).estimate_detail("fig1", "//A/B")
        assert detail["estimate"] == figure1_system.estimate("//A/B")
        assert detail["synopsis"] == "fig1"
        assert detail["generation"] == 1
        assert detail["route"] == "no_order"

    def test_batch_estimate(self, running_server, figure1_system):
        queries = ["//A/B", "//A//$C", "//A[/C[/F]/folls::$B/D]"]
        served = client_for(running_server).estimate_batch("fig1", queries)
        assert served == [figure1_system.estimate(text) for text in queries]

    def test_cached_flag_flips_on_second_request(self, running_server):
        client = client_for(running_server)
        assert client.estimate_detail("fig1", "//F/E")["cached"] is False
        assert client.estimate_detail("fig1", "//F/E")["cached"] is True

    def test_metrics_endpoint_shape(self, running_server):
        client = client_for(running_server)
        client.estimate("fig1", "//A/B")
        doc = client.metrics()
        assert doc["requests_total"] >= 1
        assert "p95_ms" in doc["latency_ms"]
        assert "hit_rate" in doc["plan_cache"]
        assert "fig1" in doc["synopses"]


class TestErrors:
    def test_unknown_synopsis_is_404(self, running_server):
        with pytest.raises(ServiceError) as info:
            client_for(running_server).estimate("nope", "//A")
        assert info.value.status == 404

    def test_bad_query_is_400(self, running_server):
        with pytest.raises(ServiceError) as info:
            client_for(running_server).estimate("fig1", "A[[")
        assert info.value.status == 400

    def test_missing_fields_are_400(self, running_server):
        with pytest.raises(ServiceError) as info:
            client_for(running_server)._request("POST", "/estimate", {"query": "//A"})
        assert info.value.status == 400
        with pytest.raises(ServiceError) as info:
            client_for(running_server)._request(
                "POST", "/estimate", {"synopsis": "fig1", "queries": []}
            )
        assert info.value.status == 400

    def test_invalid_json_is_400(self, running_server):
        request = urllib.request.Request(
            running_server.address + "/estimate",
            data=b"{not json",
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request)
        assert info.value.code == 400

    def test_unknown_path_is_404(self, running_server):
        with pytest.raises(ServiceError) as info:
            client_for(running_server)._request("GET", "/nope")
        assert info.value.status == 404

    def test_errors_are_counted(self, running_server):
        client = client_for(running_server)
        before = client.metrics()["errors_total"]
        for _ in range(3):
            with pytest.raises(ServiceError):
                client.estimate("fig1", "][")
        assert client.metrics()["errors_total"] == before + 3


class TestConcurrency:
    def test_concurrent_estimates_match_direct(self, ssplays_small, ssplays_system):
        """8 client threads sweeping the Table-2 workload classes get
        byte-identical numbers to direct EstimationSystem.estimate."""
        workload = WorkloadGenerator(ssplays_small, seed=17).full_workload(25, 25, 25)
        items = workload.simple + workload.branch + workload.order_branch
        direct = {item.text: ssplays_system.estimate(item.query) for item in items}

        registry = SynopsisRegistry()
        registry.register("SSPlays", ssplays_system)
        service = EstimationService(registry)
        failures = []
        with ServiceServer(service, port=0) as server:
            def sweep(offset):
                client = client_for(server)
                rotated = items[offset:] + items[:offset]
                for item in rotated:
                    served = client.estimate("SSPlays", item.text)
                    if served != direct[item.text]:
                        failures.append((item.text, served, direct[item.text]))

            threads = [
                threading.Thread(target=sweep, args=(i * 3,)) for i in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            metrics = client_for(server).metrics()

        assert failures == []
        assert metrics["requests_total"] == 8 * len(items)
        assert metrics["synopses"]["SSPlays"]["queries"] == 8 * len(items)
        cache = metrics["plan_cache"]
        assert cache["hits"] + cache["misses"] == 8 * len(items)
        # Every distinct text compiles at most a handful of times (races
        # may duplicate a compile); the rest of the sweep hits the cache.
        assert cache["hits"] > 6 * len(items)

    def test_burst_metrics_consistent(self, running_server, figure1_system):
        client = client_for(running_server)
        before = client.metrics()["requests_total"]
        queries = ["//A/B", "//A//$C", "//F/E", "//C[/$E]/F"]

        def burst():
            own = client_for(running_server)
            for text in queries * 5:
                own.estimate("fig1", text)

        threads = [threading.Thread(target=burst) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        doc = client.metrics()
        burst_requests = 6 * 5 * len(queries)
        assert doc["requests_total"] == before + burst_requests
        assert doc["latency_ms"]["count"] == before + burst_requests
        assert doc["latency_ms"]["p50_ms"] <= doc["latency_ms"]["p95_ms"]
        assert doc["latency_ms"]["p95_ms"] <= doc["latency_ms"]["max_ms"]
        assert doc["synopses"]["fig1"]["qps"] > 0


class TestHotReloadOverHTTP:
    def test_rewritten_snapshot_changes_served_estimates(
        self, snapshot_dir, figure1, running_server
    ):
        client = client_for(running_server)
        assert client.estimate_detail("fig1", "//A/B")["generation"] == 1

        coarse = EstimationSystem.build(figure1, p_variance=1e9, o_variance=1e9)
        path = str(snapshot_dir / "fig1.json")
        persist.save(coarse, path)
        stamp = time.time_ns() + 1
        os.utime(path, ns=(stamp, stamp))

        detail = client.estimate_detail("fig1", "//A/B")
        assert detail["generation"] == 2
        assert detail["estimate"] == coarse.estimate("//A/B")
        # The old generation's plans are dead: first hit recompiles.
        assert detail["cached"] is False


class TestServeSubprocess:
    def test_cli_serve_end_to_end(self, snapshot_dir):
        """`python -m repro serve` in a real subprocess serves matching
        estimates on an ephemeral port."""
        src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [src_root] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--snapshot-dir", str(snapshot_dir), "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            banner = process.stdout.readline()
            assert "serving" in banner
            port = int(banner.rsplit(":", 1)[1].split()[0].rstrip(")"))
            client = ServiceClient(port=port)
            assert client.healthz()["synopses"] == 2
            served = client.estimate_batch("fig1", ["//A/B", "//A//$C"])
            assert served == [4.0, 2.0]
        finally:
            process.terminate()
            process.wait(timeout=10)
