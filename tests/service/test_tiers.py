"""QoS tiers over HTTP: selection, shedding, brownout, read deadlines."""

from __future__ import annotations

import json
import socket
import time

import pytest

from repro.reliability.brownout import BrownoutController
from repro.reliability.shedding import (
    BULK_TIER,
    INTERACTIVE_TIER,
    STANDARD_TIER,
    OverloadedError,
    TieredAdmissionGate,
    TierPolicy,
    default_tiers,
)
from repro.service import (
    EndpointClient,
    EstimationService,
    ServerConfig,
    ServiceError,
    ServiceServer,
    SynopsisRegistry,
    serve,
)


@pytest.fixture()
def tiered_server(snapshot_dir):
    server = serve(
        str(snapshot_dir), config=ServerConfig(port=0, max_inflight=8)
    ).start()
    yield server
    server.close()


def client_for(server):
    return EndpointClient(port=server.port)


class TestTierSelection:
    def test_single_estimate_defaults_to_interactive(self, tiered_server):
        detail = client_for(tiered_server).estimate_detail("fig1", "//A/B")
        assert detail["tier"] == INTERACTIVE_TIER

    def test_batch_defaults_to_bulk(self, tiered_server):
        client = client_for(tiered_server)
        reply = client._request(
            "POST", "/estimate", {"synopsis": "fig1", "queries": ["//A/B", "//F/E"]}
        )
        assert reply["tier"] == BULK_TIER

    def test_body_tier_field_is_honored(self, tiered_server):
        detail = client_for(tiered_server).estimate_detail(
            "fig1", "//A/B", tier=STANDARD_TIER
        )
        assert detail["tier"] == STANDARD_TIER

    def test_header_overrides_body_and_shape(self, tiered_server):
        client = client_for(tiered_server)
        connection = client._connect()
        connection.request(
            "POST",
            "/estimate",
            json.dumps(
                {"synopsis": "fig1", "query": "//A/B", "tier": INTERACTIVE_TIER}
            ),
            {"Content-Type": "application/json", "X-Repro-Tier": BULK_TIER},
        )
        response = connection.getresponse()
        body = json.loads(response.read())
        assert response.status == 200
        assert body["tier"] == BULK_TIER

    def test_unknown_tier_is_400(self, tiered_server):
        with pytest.raises(ServiceError) as info:
            client_for(tiered_server).estimate_detail(
                "fig1", "//A/B", tier="premium"
            )
        assert info.value.status == 400
        assert info.value.kind == "unknown_tier"

    def test_result_tier_survives_the_wire(self, tiered_server):
        detail = client_for(tiered_server).estimate_detail(
            "fig1", "//A/B", trace=True, tier=STANDARD_TIER
        )
        assert detail["result"]["tier"] == STANDARD_TIER

    def test_flat_gate_server_has_no_tier_field(self, snapshot_dir):
        server = serve(
            str(snapshot_dir),
            config=ServerConfig(port=0, qos=False),
        ).start()
        try:
            detail = client_for(server).estimate_detail("fig1", "//A/B")
            assert "tier" not in detail
        finally:
            server.close()


class TestTierShedding:
    def make_server(self, snapshot_dir):
        """A server whose bulk lane has exactly one slot and no queue."""
        registry = SynopsisRegistry(str(snapshot_dir))
        registry.scan()
        gate = TieredAdmissionGate(
            tiers=[
                TierPolicy(
                    INTERACTIVE_TIER, priority=0, max_inflight=4,
                    max_queue=2, queue_timeout_s=0.05, retry_after_s=0.5,
                ),
                TierPolicy(
                    BULK_TIER, priority=2, max_inflight=1,
                    max_queue=0, retry_after_s=2.0, brownout_sheddable=True,
                ),
            ],
            max_total=4,
        )
        service = EstimationService(registry, gate=gate)
        return ServiceServer(service, port=0).start()

    def test_shed_carries_tier_reason_and_retry_after(self, snapshot_dir):
        server = self.make_server(snapshot_dir)
        try:
            server.service.gate.enter(BULK_TIER)  # occupy the only slot
            with pytest.raises(ServiceError) as info:
                client_for(server).estimate_batch("fig1", ["//A/B", "//F/E"])
            assert info.value.status == 503
            assert info.value.kind == "overloaded"
            assert info.value.retry_after_s == 2.0
            # Interactive singles are untouched by bulk saturation.
            assert client_for(server).estimate("fig1", "//A/B") > 0
        finally:
            server.service.gate.leave(BULK_TIER)
            server.close()

    def test_shed_response_body_names_the_tier(self, snapshot_dir):
        server = self.make_server(snapshot_dir)
        try:
            server.service.gate.enter(BULK_TIER)
            client = client_for(server)
            connection = client._connect()
            connection.request(
                "POST",
                "/estimate",
                json.dumps({"synopsis": "fig1", "queries": ["//A/B", "//F/E"]}),
                {"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            body = json.loads(response.read())
            assert response.status == 503
            assert response.getheader("Retry-After") == "2"
            assert body["error"]["tier"] == BULK_TIER
            assert body["error"]["reason"] == "capacity"
        finally:
            server.service.gate.leave(BULK_TIER)
            server.close()


class TestBrownoutIntegration:
    def make_service(self, snapshot_dir):
        registry = SynopsisRegistry(str(snapshot_dir))
        registry.scan()
        gate = TieredAdmissionGate(tiers=default_tiers(4), max_total=4)
        # Hair-trigger controller: two trusted events and no dwell.
        brownout = BrownoutController(
            window_s=60.0,
            enter_threshold=0.10,
            escalate_threshold=0.30,
            exit_threshold=0.02,
            dwell_s=0.0,
            cooloff_s=60.0,
            min_events=2,
        )
        return EstimationService(registry, gate=gate, brownout=brownout)

    def saturate(self, service):
        """Drive capacity sheds through admit() until level 2."""
        held = [service.gate.enter(BULK_TIER) for _ in range(1)]
        # Bulk lane (cap 1, queue 2) is full; further bulk admits shed
        # with reason "capacity" and feed the controller.
        for _ in range(40):
            if service.brownout.level >= 2:
                break
            try:
                service.admit(BULK_TIER)
            except OverloadedError:
                pass
            else:
                service.release(BULK_TIER)
        for tier in held:
            service.gate.leave(tier)

    def test_capacity_sheds_escalate_to_shed_bulk(self, snapshot_dir):
        service = self.make_service(snapshot_dir)
        self.saturate(service)
        assert service.brownout.level == 2
        assert service.gate.shed_tiers == frozenset({BULK_TIER})
        # Now bulk sheds with reason "brownout" — which must NOT feed
        # back into the controller (no latch-up).
        with pytest.raises(OverloadedError) as info:
            service.admit(BULK_TIER)
        assert info.value.reason == "brownout"
        # Interactive is still admitted while bulk is browned out.
        service.admit(INTERACTIVE_TIER)
        service.release(INTERACTIVE_TIER)

    def test_healthz_advertises_degraded_state(self, snapshot_dir):
        service = self.make_service(snapshot_dir)
        self.saturate(service)
        body = service.healthz()
        assert body["status"] == "degraded"
        assert body["brownout"]["state"] == "shed_bulk"
        assert body["shed_tiers"] == [BULK_TIER]

    def test_brownout_suspends_tracing(self, snapshot_dir):
        service = self.make_service(snapshot_dir)
        self.saturate(service)
        tier = service.gate.enter(INTERACTIVE_TIER)
        try:
            reply = service.handle_estimate(
                {"synopsis": "fig1", "query": "//A/B", "trace": True},
                tier=tier,
            )
        finally:
            service.gate.leave(tier)
        # Level >= 1 sheds observability: trace requests get estimates
        # but no span tree.
        assert "estimate" in reply
        assert not reply["result"].get("trace")
        assert reply["brownout"] == "shed_bulk"


class TestReadDeadline:
    def test_slow_client_gets_408(self, snapshot_dir):
        server = serve(
            str(snapshot_dir),
            config=ServerConfig(port=0, read_deadline_s=0.3),
        ).start()
        try:
            body = json.dumps({"synopsis": "fig1", "query": "//A/B"}).encode()
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=5.0
            ) as sock:
                head = (
                    "POST /estimate HTTP/1.1\r\n"
                    "Host: 127.0.0.1\r\n"
                    "Content-Type: application/json\r\n"
                    "Content-Length: %d\r\n\r\n" % len(body)
                ).encode("ascii")
                sock.sendall(head)
                sock.sendall(body[: len(body) // 2])
                time.sleep(0.8)  # past the read deadline
                try:
                    sock.sendall(body[len(body) // 2:])
                except OSError:
                    return  # server already tore the connection down: fine
                raw = sock.recv(4096)
            assert raw, "server closed without a response"
            status = int(raw.split(b" ", 2)[1])
            assert status == 408
            payload = json.loads(raw.split(b"\r\n\r\n", 1)[1])
            assert payload["error"]["kind"] == "read_timeout"
        finally:
            server.close()

    def test_fast_client_is_unaffected_by_the_deadline(self, snapshot_dir):
        server = serve(
            str(snapshot_dir),
            config=ServerConfig(port=0, read_deadline_s=0.3),
        ).start()
        try:
            assert client_for(server).estimate("fig1", "//A/B") > 0
        finally:
            server.close()


class TestTierMetrics:
    def test_metrics_break_down_per_tier(self, tiered_server):
        client = client_for(tiered_server)
        client.estimate("fig1", "//A/B", tier=INTERACTIVE_TIER)
        client.estimate_batch("fig1", ["//A/B", "//F/E"])
        doc = client._request("GET", "/metrics")
        tiers = doc["tiers"]
        assert tiers[INTERACTIVE_TIER]["requests"] >= 1
        assert tiers[BULK_TIER]["requests"] >= 1
        assert "p99_ms" in tiers[INTERACTIVE_TIER]["latency_ms"]
        gate = doc["reliability"]["tiers"]
        assert set(gate) == {INTERACTIVE_TIER, STANDARD_TIER, BULK_TIER}
