"""Registry: scanning, hot reload, failure tolerance, live appends."""

import os
import time

import pytest

from repro import EstimationSystem, persist
from repro.service import SynopsisRegistry, UnknownSynopsisError
from repro.stats.maintenance import RequiresRebuild
from repro.xmltree.builder import el
from repro.xmltree.document import XmlDocument

QUERY = "//A/B"


def _touch(path, offset_ns=1):
    """Force a distinct mtime even on coarse-grained filesystems."""
    stamp = time.time_ns() + offset_ns
    os.utime(path, ns=(stamp, stamp))


class TestScanAndGet:
    def test_scan_loads_all_snapshots(self, snapshot_dir):
        registry = SynopsisRegistry(str(snapshot_dir))
        assert registry.scan() == ["SSPlays", "fig1"]
        assert registry.names() == ["SSPlays", "fig1"]
        assert len(registry) == 2

    def test_served_estimates_match_direct(self, snapshot_dir, figure1_system):
        registry = SynopsisRegistry(str(snapshot_dir))
        registry.scan()
        served = registry.system("fig1")
        assert served.estimate(QUERY) == pytest.approx(figure1_system.estimate(QUERY))

    def test_unknown_name(self, snapshot_dir):
        registry = SynopsisRegistry(str(snapshot_dir))
        registry.scan()
        with pytest.raises(UnknownSynopsisError):
            registry.get("nope")

    def test_snapshot_appearing_after_scan(self, snapshot_dir, figure1_system):
        registry = SynopsisRegistry(str(snapshot_dir))
        registry.scan()
        persist.save(figure1_system, str(snapshot_dir / "late.json"))
        assert registry.get("late").system.estimate(QUERY) == pytest.approx(
            figure1_system.estimate(QUERY)
        )

    def test_scan_skips_unloadable_snapshot(self, snapshot_dir):
        (snapshot_dir / "broken.json").write_text("{not json", encoding="utf-8")
        registry = SynopsisRegistry(str(snapshot_dir))
        assert registry.scan() == ["SSPlays", "fig1"]
        assert "broken" in registry.scan_errors
        assert "not valid JSON" in registry.scan_errors["broken"]
        # The bad file is also not servable through the late-load path.
        with pytest.raises(UnknownSynopsisError):
            registry.get("broken")

    def test_late_unloadable_snapshot_is_unknown(self, snapshot_dir):
        registry = SynopsisRegistry(str(snapshot_dir))
        registry.scan()
        (snapshot_dir / "late.json").write_text("{not json", encoding="utf-8")
        with pytest.raises(UnknownSynopsisError):
            registry.get("late")

    def test_describe_shape(self, snapshot_dir):
        registry = SynopsisRegistry(str(snapshot_dir))
        registry.scan()
        info = {entry["name"]: entry for entry in registry.describe()}
        assert info["fig1"]["generation"] == 1
        assert info["fig1"]["paths"] == 4
        assert str(snapshot_dir) in info["fig1"]["source"]


class TestHotReload:
    def test_rewritten_snapshot_is_picked_up(self, snapshot_dir, figure1, figure1_system):
        registry = SynopsisRegistry(str(snapshot_dir))
        registry.scan()
        before = registry.get("fig1")
        assert before.generation == 1

        coarse = EstimationSystem.build(figure1, p_variance=1e9, o_variance=1e9)
        path = str(snapshot_dir / "fig1.json")
        persist.save(coarse, path)
        _touch(path)

        after = registry.get("fig1")
        assert after.generation == 2
        assert after.system.estimate(QUERY) == pytest.approx(coarse.estimate(QUERY))

    def test_unchanged_snapshot_is_not_reloaded(self, snapshot_dir):
        registry = SynopsisRegistry(str(snapshot_dir))
        registry.scan()
        first = registry.get("fig1").system
        assert registry.get("fig1").system is first

    def test_malformed_overwrite_keeps_serving(self, snapshot_dir, figure1_system):
        registry = SynopsisRegistry(str(snapshot_dir))
        registry.scan()
        path = str(snapshot_dir / "fig1.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        _touch(path)

        entry = registry.get("fig1")
        assert entry.generation == 1
        assert entry.load_error is not None and "reload failed" in entry.load_error
        assert entry.system.estimate(QUERY) == pytest.approx(
            figure1_system.estimate(QUERY)
        )
        assert "load_error" in entry.describe()

    def test_deleted_snapshot_keeps_serving(self, snapshot_dir, figure1_system):
        registry = SynopsisRegistry(str(snapshot_dir))
        registry.scan()
        os.unlink(str(snapshot_dir / "fig1.json"))
        entry = registry.get("fig1")
        assert entry.system.estimate(QUERY) == pytest.approx(
            figure1_system.estimate(QUERY)
        )
        assert "unreadable" in entry.load_error

    def test_check_interval_throttles_stat(self, snapshot_dir, figure1):
        fake = [0.0]
        registry = SynopsisRegistry(
            str(snapshot_dir), check_interval=10.0, clock=lambda: fake[0]
        )
        registry.scan()
        path = str(snapshot_dir / "fig1.json")
        persist.save(EstimationSystem.build(figure1, p_variance=1e9), path)
        _touch(path)
        # Within the interval: stale entry is served without a stat.
        fake[0] = 5.0
        assert registry.get("fig1").generation == 1
        # Past the interval: the change is noticed.
        fake[0] = 20.0
        assert registry.get("fig1").generation == 2


def _library_document():
    root = el(
        "lib",
        el("rec", el("author"), el("title")),
        el("rec", el("author"), el("author"), el("title")),
    )
    return XmlDocument(root)


class TestLiveSynopsis:
    def test_append_updates_estimates_without_restart(self):
        registry = SynopsisRegistry()
        entry = registry.register_live("lib", _library_document())
        assert entry.system.estimate("//rec/$author") == pytest.approx(3.0)

        registry.append(
            "lib", entry.live.maintained.document.root,
            el("rec", el("author"), el("title")),
        )
        entry = registry.get("lib")
        assert entry.generation == 2
        assert entry.system.estimate("//rec/$author") == pytest.approx(4.0)
        assert entry.describe()["source"] == "live"

    def test_append_matches_full_rebuild(self):
        registry = SynopsisRegistry()
        entry = registry.register_live("lib", _library_document())
        registry.append(
            "lib", entry.live.maintained.document.root,
            el("rec", el("author"), el("title")),
        )
        rebuilt = EstimationSystem.build(entry.live.maintained.document)
        for query in ("//rec/$author", "//lib/rec", "//rec[/author]/$title"):
            assert registry.system("lib").estimate(query) == pytest.approx(
                rebuilt.estimate(query)
            )

    def test_new_path_type_requires_rebuild(self):
        registry = SynopsisRegistry()
        entry = registry.register_live("lib", _library_document())
        with pytest.raises(RequiresRebuild):
            registry.append(
                "lib", entry.live.maintained.document.root, el("rec", el("editor"))
            )
        # Nothing was mutated: the old estimate still holds.
        assert registry.system("lib").estimate("//rec/$author") == pytest.approx(3.0)

    def test_append_to_non_live_entry(self, figure1_system):
        registry = SynopsisRegistry()
        registry.register("fig1", figure1_system)
        with pytest.raises(ValueError):
            registry.append("fig1", None, el("x"))
