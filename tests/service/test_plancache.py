"""Compiled plans and the LRU cache."""

import pytest

from repro.core.system import ROUTE_NO_ORDER, ROUTE_ORDER, ROUTE_SCOPED
from repro.service import PlanCache, compile_plan

# One query per estimation route (figure-1 schema).
ROUTED_QUERIES = [
    ("//A/B", ROUTE_NO_ORDER),
    ("//A[/C/F]/B/$D", ROUTE_NO_ORDER),
    ("//A[/C[/F]/folls::$B/D]", ROUTE_ORDER),
    ("//A[/C/foll::$D]", ROUTE_SCOPED),
]


class TestCompiledPlan:
    @pytest.mark.parametrize("text,route", ROUTED_QUERIES)
    def test_route_selection(self, figure1_system, text, route):
        plan = compile_plan(figure1_system, text)
        assert plan.route == route
        assert (plan.variants is not None) == (route == ROUTE_SCOPED)

    @pytest.mark.parametrize("text,route", ROUTED_QUERIES)
    def test_execute_matches_direct_estimate(self, figure1_system, text, route):
        plan = compile_plan(figure1_system, text)
        assert plan.execute(figure1_system) == pytest.approx(
            figure1_system.estimate(text)
        )

    def test_result_is_memoized(self, figure1_system):
        plan = compile_plan(figure1_system, "//A/B")
        assert plan.result is None
        first = plan.execute(figure1_system)
        assert plan.result == first
        assert plan.execute(figure1_system) == first

    @pytest.mark.parametrize("text,route", ROUTED_QUERIES)
    def test_execute_traced_bypasses_memo_and_reprimes(
        self, figure1_system, text, route
    ):
        from repro.obs.trace import Tracer

        plan = compile_plan(figure1_system, text)
        memoized = plan.execute(figure1_system)
        tracer = Tracer("estimate", seed=(text,))
        traced = plan.execute_traced(figure1_system, tracer)
        document = tracer.finish()
        assert traced == pytest.approx(memoized)
        assert plan.result == traced  # re-primed for untraced followers
        # A real execution was observed, not the cached float.
        assert document["root"]["children"], document

    def test_workload_sweep_matches_direct(self, ssplays_system, ssplays_small):
        from repro.workload import WorkloadGenerator

        workload = WorkloadGenerator(ssplays_small, seed=17).full_workload(30, 30, 30)
        for item in workload.simple + workload.branch + workload.order_branch:
            plan = compile_plan(ssplays_system, item.text)
            assert plan.execute(ssplays_system) == pytest.approx(
                ssplays_system.estimate(item.query)
            )


class TestPlanCache:
    def test_hit_and_miss_counting(self, figure1_system):
        cache = PlanCache(capacity=8)
        _, hit = cache.get_or_compile("fig1", 1, figure1_system, "//A/B")
        assert not hit
        plan, hit = cache.get_or_compile("fig1", 1, figure1_system, "//A/B")
        assert hit
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)
        assert stats.hit_rate == pytest.approx(0.5)

    def test_same_plan_object_on_hit(self, figure1_system):
        cache = PlanCache(capacity=8)
        first, _ = cache.get_or_compile("fig1", 1, figure1_system, "//A/B")
        second, _ = cache.get_or_compile("fig1", 1, figure1_system, "//A/B")
        assert second is first

    def test_generation_invalidates(self, figure1_system):
        cache = PlanCache(capacity=8)
        first, _ = cache.get_or_compile("fig1", 1, figure1_system, "//A/B")
        second, hit = cache.get_or_compile("fig1", 2, figure1_system, "//A/B")
        assert not hit and second is not first

    def test_lru_eviction(self, figure1_system):
        cache = PlanCache(capacity=2)
        cache.get_or_compile("fig1", 1, figure1_system, "//A/B")
        cache.get_or_compile("fig1", 1, figure1_system, "//A/C")
        # Refresh //A/B, then push a third entry: //A/C is the LRU victim.
        cache.get_or_compile("fig1", 1, figure1_system, "//A/B")
        cache.get_or_compile("fig1", 1, figure1_system, "//F/E")
        assert len(cache) == 2
        _, hit = cache.get_or_compile("fig1", 1, figure1_system, "//A/B")
        assert hit
        _, hit = cache.get_or_compile("fig1", 1, figure1_system, "//A/C")
        assert not hit
        assert cache.stats().evictions >= 1

    def test_capacity_zero_disables(self, figure1_system):
        cache = PlanCache(capacity=0)
        assert not cache.enabled
        _, hit = cache.get_or_compile("fig1", 1, figure1_system, "//A/B")
        _, hit = cache.get_or_compile("fig1", 1, figure1_system, "//A/B")
        assert not hit
        stats = cache.stats()
        assert stats.hits == 0 and stats.misses == 2 and stats.size == 0

    def test_invalidate_by_name(self, figure1_system):
        cache = PlanCache(capacity=8)
        cache.get_or_compile("a", 1, figure1_system, "//A/B")
        cache.get_or_compile("b", 1, figure1_system, "//A/B")
        assert cache.invalidate("a") == 1
        assert len(cache) == 1
        assert cache.invalidate() == 1
        assert len(cache) == 0
