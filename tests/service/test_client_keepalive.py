"""Client connection reuse: ``connects_total`` observability.

The throughput benches report ``connects_total`` to prove client-side
connection churn is not what they measure; these tests pin the counter's
semantics — one connection across any number of keep-alive requests,
one per request without keep-alive, and exactly one extra after the
server drops a kept connection.
"""

from __future__ import annotations

import socket
import threading

from repro.service import ServiceClient


class TestKeepAliveReuse:
    def test_many_requests_one_connection(self, running_server):
        with ServiceClient(port=running_server.port) as client:
            for _ in range(10):
                client.healthz()
            assert client.connects_total == 1

    def test_estimates_share_the_connection(self, running_server):
        with ServiceClient(port=running_server.port) as client:
            client.estimate("fig1", "//A/B")
            client.estimate_batch("fig1", ["//A", "//A/B"])
            client.metrics()
            assert client.connects_total == 1

    def test_no_keep_alive_connects_per_request(self, running_server):
        with ServiceClient(port=running_server.port, keep_alive=False) as client:
            for _ in range(5):
                client.healthz()
            assert client.connects_total == 5

    def test_explicit_close_reconnects(self, running_server):
        with ServiceClient(port=running_server.port) as client:
            client.healthz()
            client.close()
            client.healthz()
            assert client.connects_total == 2


class _DroppingServer(threading.Thread):
    """Serves one HTTP response per TCP connection, then closes it —
    deterministically exercising the client's reconnect-once path."""

    def __init__(self):
        super().__init__(daemon=True)
        self.sock = socket.socket()
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(8)
        self.port = self.sock.getsockname()[1]
        self._stop = threading.Event()

    def run(self):
        body = b'{"status": "ok"}'
        response = (
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: %d\r\n"
            b"Connection: keep-alive\r\n\r\n%s" % (len(body), body)
        )
        while not self._stop.is_set():
            try:
                connection, _ = self.sock.accept()
            except OSError:
                return
            with connection:
                connection.settimeout(5.0)
                try:
                    while b"\r\n\r\n" not in connection.recv(65536):
                        pass
                    connection.sendall(response)
                except OSError:
                    pass
            # Connection closed here despite the keep-alive header.

    def close(self):
        self._stop.set()
        self.sock.close()


class TestServerDropsConnection:
    def test_reconnects_once_and_succeeds(self):
        server = _DroppingServer()
        server.start()
        try:
            with ServiceClient(port=server.port) as client:
                assert client.healthz()["status"] == "ok"
                assert client.connects_total == 1
                # The kept connection is dead; the client must notice,
                # reopen exactly one connection and complete the call.
                assert client.healthz()["status"] == "ok"
                assert client.connects_total == 2
        finally:
            server.close()
