"""Service metrics: latency summaries, counters, QPS windows."""

import threading

import pytest

from repro.service import LatencySummary, ServiceMetrics
from repro.service.metrics import LatencyRing


class TestLatencySummary:
    def test_empty(self):
        summary = LatencySummary.from_samples([])
        assert summary.count == 0 and summary.p99_ms == 0.0

    def test_percentile_convention_matches_harness(self):
        # Same index rule as harness.metrics.ErrorSummary: sorted[int(q*n)].
        seconds = [i / 1000.0 for i in range(1, 101)]  # 1..100 ms
        summary = LatencySummary.from_samples(seconds)
        assert summary.count == 100
        assert summary.p50_ms == pytest.approx(51.0)
        assert summary.p95_ms == pytest.approx(96.0)
        assert summary.p99_ms == pytest.approx(100.0)
        assert summary.max_ms == pytest.approx(100.0)

    def test_ordering_is_irrelevant(self):
        a = LatencySummary.from_samples([0.003, 0.001, 0.002])
        b = LatencySummary.from_samples([0.001, 0.002, 0.003])
        assert a == b


class TestLatencyRing:
    def test_bounded(self):
        ring = LatencyRing(capacity=10)
        for i in range(100):
            ring.observe(i / 1000.0)
        assert len(ring) == 10
        # Only the most recent 10 samples (90..99 ms) survive.
        assert ring.summary().p50_ms >= 90.0


class TestServiceMetrics:
    def make(self, start=0.0):
        fake = [start]
        metrics = ServiceMetrics(clock=lambda: fake[0], qps_window=10.0)
        return metrics, fake

    def test_counters(self):
        metrics, fake = self.make()
        fake[0] = 1.0
        metrics.observe("a", 0.002, queries=1)
        metrics.observe("a", 0.004, queries=3)
        metrics.observe("b", 0.001, queries=1, error=True)
        doc = metrics.snapshot()
        assert doc["requests_total"] == 3
        assert doc["queries_total"] == 5
        assert doc["errors_total"] == 1
        assert doc["synopses"]["a"]["requests"] == 2
        assert doc["synopses"]["a"]["queries"] == 4
        assert doc["synopses"]["b"]["errors"] == 1
        assert doc["latency_ms"]["count"] == 3

    def test_unattributed_error(self):
        metrics, fake = self.make()
        metrics.observe(None, 0.001, error=True)
        doc = metrics.snapshot()
        assert doc["errors_total"] == 1 and doc["synopses"] == {}

    def test_qps_window_expires(self):
        metrics, fake = self.make()
        for i in range(20):
            fake[0] = float(i) * 0.1
            metrics.observe("a", 0.001)
        fake[0] = 5.0
        in_window = metrics.snapshot()["synopses"]["a"]["qps"]
        assert in_window == pytest.approx(20 / 5.0)
        fake[0] = 100.0  # every stamp is now outside the window
        assert metrics.snapshot()["synopses"]["a"]["qps"] == 0.0

    def test_plan_cache_stats_embedded(self):
        metrics, _ = self.make()
        doc = metrics.snapshot({"hits": 1})
        assert doc["plan_cache"] == {"hits": 1}

    def test_concurrent_observe_is_consistent(self):
        metrics, fake = self.make()
        threads = [
            threading.Thread(
                target=lambda: [metrics.observe("a", 0.001) for _ in range(200)]
            )
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        doc = metrics.snapshot()
        assert doc["requests_total"] == 1600
        assert doc["synopses"]["a"]["requests"] == 1600
