"""The ``error.kind`` field: stable machine-readable failure slugs."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.service import ServiceClient, ServiceError


def client_for(server):
    return ServiceClient(port=server.port)


def raw_error_body(server, path, data=None, method=None):
    request = urllib.request.Request(
        server.address + path,
        data=data,
        method=method or ("POST" if data is not None else "GET"),
    )
    with pytest.raises(urllib.error.HTTPError) as info:
        urllib.request.urlopen(request)
    return json.loads(info.value.read().decode("utf-8"))


class TestErrorKinds:
    def test_unknown_synopsis_kind(self, running_server):
        with pytest.raises(ServiceError) as info:
            client_for(running_server).estimate("nope", "//A")
        assert info.value.kind == "unknown_synopsis"
        assert info.value.status == 404

    def test_query_syntax_kind(self, running_server):
        with pytest.raises(ServiceError) as info:
            client_for(running_server).estimate("fig1", "A[[")
        assert info.value.kind == "query_syntax"
        assert info.value.status == 400

    def test_bad_request_kind(self, running_server):
        with pytest.raises(ServiceError) as info:
            client_for(running_server)._request("POST", "/estimate", {"query": "//A"})
        assert info.value.kind == "bad_request"

    def test_not_found_kind(self, running_server):
        with pytest.raises(ServiceError) as info:
            client_for(running_server)._request("GET", "/nope")
        assert info.value.kind == "not_found"

    def test_wire_shape_is_kind_plus_message(self, running_server):
        body = raw_error_body(
            running_server,
            "/estimate",
            data=json.dumps({"synopsis": "nope", "query": "//A"}).encode("utf-8"),
        )
        assert set(body) == {"error"}
        assert set(body["error"]) == {"kind", "message"}
        assert body["error"]["kind"] == "unknown_synopsis"
        assert "nope" in body["error"]["message"]

    def test_invalid_json_kind(self, running_server):
        body = raw_error_body(running_server, "/estimate", data=b"{not json")
        assert body["error"]["kind"] == "bad_request"

    def test_client_exposes_kind_in_str(self, running_server):
        with pytest.raises(ServiceError) as info:
            client_for(running_server).estimate("nope", "//A")
        assert "unknown_synopsis" in str(info.value)

    def test_legacy_string_error_body_still_parses(self):
        # A pre-1.1 server replies {"error": "<message>"}: the client
        # falls back to kind="internal" instead of crashing.
        error = None
        try:
            raise ServiceError(500, "boom")
        except ServiceError as caught:
            error = caught
        assert error.kind == "internal"
