"""Pre-fork worker pool integration tests (real fork, real sockets).

One module-scoped pool serves most tests (forking workers costs ~a
second each); assertions on counters use deltas so test order cannot
matter.  The crash test SIGKILLs a live worker and waits for the
supervisor to respawn it, which also re-arms the pool for later tests.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import time

import pytest

from repro import persist
from repro.service import ServerConfig, ServiceClient
from repro.shm import WorkerPool, pool_supported, stage_packs
from repro.shm.control import ControlServer, pool_health, pool_metrics, render_pool_prom

pytestmark = pytest.mark.skipif(
    not pool_supported(), reason="needs os.fork and SO_REUSEPORT"
)


def _wait(predicate, timeout_s=20.0, interval_s=0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


@pytest.fixture(scope="module")
def pool_dir(tmp_path_factory, ssplays_system):
    directory = tmp_path_factory.mktemp("pool-snapshots")
    persist.save(ssplays_system, str(directory / "SSPlays.json"))
    return directory


@pytest.fixture(scope="module")
def pool(pool_dir):
    config = ServerConfig(port=0, workers=2, reload_interval_s=0.0)
    with WorkerPool(
        str(pool_dir), workers=2, config=config, reload_poll_s=0.05
    ) as pool:
        yield pool


@pytest.fixture()
def client(pool):
    with ServiceClient(port=pool.port) as client:
        yield client


class TestServing:
    def test_estimates_through_balanced_port(self, pool, client, ssplays_system):
        expected = ssplays_system.estimate("//PLAY/ACT")
        assert client.estimate("SSPlays", "//PLAY/ACT") == expected

    def test_batch(self, client, ssplays_system):
        values = client.estimate_batch("SSPlays", ["//PLAY", "//ACT"])
        assert values == [
            ssplays_system.estimate("//PLAY"),
            ssplays_system.estimate("//ACT"),
        ]

    def test_workers_serve_from_packs_not_recompiles(self, pool, client):
        client.estimate("SSPlays", "//PLAY/ACT/$SCENE")
        assert _wait(
            lambda: pool.arena.aggregate()["totals"]["pack_hits"] > 0
        ), "no worker decoded a pack table"
        assert pool.arena.aggregate()["totals"]["pack_misses"] == 0
        assert pool.pack_status.get("SSPlays") in ("staged", "fresh")

    def test_healthz_reports_kernels_and_workers(self, client):
        body = client.healthz()
        assert body["status"] == "ok"
        assert body["kernels"] == {"SSPlays": "ready"}
        assert len(body["workers"]) == 2

    def test_worker_metrics_carry_pool_block(self, client):
        document = client.metrics()
        workers = document["workers"]
        assert workers["count"] == 2
        assert len(workers["per_worker"]) == 2

    def test_describe(self, pool):
        info = pool.describe()
        assert info["workers"] == 2
        assert info["port"] == pool.port
        assert info["packs"]["SSPlays"] in ("staged", "fresh")


class TestAggregation:
    def test_aggregate_equals_sum_of_slabs(self, pool, client):
        for _ in range(7):
            client.estimate("SSPlays", "//PLAY")
        assert _wait(
            lambda: pool.arena.aggregate()["totals"]["requests"] >= 7
        )
        aggregate = pool.arena.aggregate()
        for field in ("requests", "queries", "errors", "latency_count"):
            assert aggregate["totals"][field] == sum(
                worker[field] for worker in aggregate["per_worker"]
            ), field

    def test_liveness_all_alive(self, pool):
        live = pool.liveness()
        assert len(live) == 2
        assert all(worker["alive"] for worker in live)
        assert all(worker["pid"] > 0 for worker in live)


class TestReload:
    def test_reload_converges_without_recompile(self, pool, client):
        before = pool.arena.aggregate()
        generation_before = before["reload_generation"]
        misses_before = before["totals"]["pack_misses"]
        reply = pool.reload(force=True)
        assert reply["generation"] == generation_before + 1
        assert reply["packs"]["SSPlays"] == "staged"
        assert _wait(pool.reload_converged), "workers never remapped"
        after = pool.arena.aggregate()
        assert all(
            worker["generation"] == reply["generation"]
            for worker in after["per_worker"]
        )
        assert after["totals"]["remaps"] >= 2
        # Still serving, still pack-backed: the remap decoded the staged
        # pack instead of recompiling the kernel in-process.
        client.estimate("SSPlays", "//PLAY/ACT")
        assert (
            pool.arena.aggregate()["totals"]["pack_misses"] == misses_before
        )

    def test_rewritten_snapshot_is_served_after_reload(
        self, pool, pool_dir, client, ssplays_system
    ):
        persist.save(ssplays_system, str(pool_dir / "SSPlays.json"))
        pool.reload(force=True)
        assert _wait(pool.reload_converged)
        assert client.estimate("SSPlays", "//PLAY") == (
            ssplays_system.estimate("//PLAY")
        )


class TestCrashRestart:
    def test_sigkilled_worker_is_respawned(self, pool, client):
        restarts_before = pool.restarts_total
        victim = pool.liveness()[0]["pid"]
        os.kill(victim, signal.SIGKILL)
        assert _wait(
            lambda: pool.restarts_total > restarts_before
            and all(worker["alive"] for worker in pool.liveness())
            and victim not in [worker["pid"] for worker in pool.liveness()],
            timeout_s=30.0,
        ), "supervisor did not respawn the killed worker"
        # The pool keeps serving throughout.
        assert client.estimate("SSPlays", "//PLAY") > 0


class TestControlPlane:
    def test_health_document(self, pool):
        assert _wait(lambda: pool_health(pool)["status"] == "ok")
        body = pool_health(pool)
        assert body["alive"] == 2 and body["converged"]

    def test_metrics_document(self, pool):
        document = pool_metrics(pool)
        assert document["workers"]["count"] == 2
        assert "totals" in document["workers"]

    def test_prometheus_rendering(self, pool):
        text = render_pool_prom(pool)
        assert "repro_pool_workers 2" in text
        assert 'repro_pool_worker_generation{worker="0"}' in text
        assert 'repro_pool_latency_ms{quantile="0.99"}' in text

    def test_http_endpoints(self, pool):
        control = ControlServer(pool, port=0).start()
        try:
            connection = http.client.HTTPConnection(
                control.host, control.port, timeout=10
            )
            connection.request("GET", "/healthz")
            health = json.loads(connection.getresponse().read())
            assert health["role"] == "pool-supervisor"
            connection.request("POST", "/reload", body=b"")
            reload_reply = json.loads(connection.getresponse().read())
            assert reload_reply["generation"] > 0
            connection.request("GET", "/metrics?format=prom")
            response = connection.getresponse()
            assert response.getheader("Content-Type", "").startswith("text/plain")
            assert b"repro_pool_workers" in response.read()
            connection.request("GET", "/nope")
            assert connection.getresponse().status == 404
            connection.close()
        finally:
            control.close()
        assert _wait(pool.reload_converged)


class TestStagePacks:
    def test_stage_then_fresh(self, tmp_path, ssplays_system):
        persist.save(ssplays_system, str(tmp_path / "SSPlays.json"))
        first = stage_packs(str(tmp_path))
        assert first == {"SSPlays": "staged"}
        assert (tmp_path / "SSPlays.kernelpack").exists()
        second = stage_packs(str(tmp_path))
        assert second == {"SSPlays": "fresh"}
        assert stage_packs(str(tmp_path), force=True) == {"SSPlays": "staged"}
