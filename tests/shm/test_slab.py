"""Shared-memory slab arena unit tests (single process).

Fork-free: the arena's layout, histogram math and aggregation are all
plain memory operations, so they are tested here directly; the
cross-process behaviour rides on ``mmap`` + fork semantics and is
covered by the pool tests.
"""

from __future__ import annotations

import os

import pytest

from repro.shm import SlabArena
from repro.shm.slab import LATENCY_BUCKET_BOUNDS_US, SLAB_FIELDS


class TestWorkerSlab:
    def test_scalar_fields_round_trip(self):
        arena = SlabArena(2)
        slab = arena.slab(0)
        for offset, field in enumerate(SLAB_FIELDS):
            slab.set(field, 1000 + offset)
        for offset, field in enumerate(SLAB_FIELDS):
            assert slab.get(field) == 1000 + offset
        # Slabs do not bleed into each other.
        assert all(arena.slab(1).get(field) == 0 for field in SLAB_FIELDS)
        arena.close()

    def test_incr_wraps_at_64_bits(self):
        arena = SlabArena(1)
        slab = arena.slab(0)
        slab.set("requests", 2**64 - 1)
        slab.incr("requests")
        assert slab.get("requests") == 0
        arena.close()

    def test_mark_started_records_pid(self):
        arena = SlabArena(1)
        slab = arena.slab(0)
        slab.mark_started(generation=7)
        assert slab.get("pid") == os.getpid()
        assert slab.get("generation") == 7
        assert slab.get("heartbeat_ns") > 0
        arena.close()

    def test_latency_buckets(self):
        arena = SlabArena(1)
        slab = arena.slab(0)
        slab.observe_latency(0.00005)   # 50us -> first bucket (<=100us)
        slab.observe_latency(0.0003)    # 300us -> <=500us bucket
        slab.observe_latency(5.0)       # 5s -> unbounded tail
        buckets = slab.buckets()
        assert buckets[0] == 1
        assert buckets[LATENCY_BUCKET_BOUNDS_US.index(500)] == 1
        assert buckets[-1] == 1
        assert slab.get("latency_count") == 3
        assert slab.get("latency_sum_us") == 50 + 300 + 5_000_000
        arena.close()

    def test_snapshot_percentiles(self):
        arena = SlabArena(1)
        slab = arena.slab(0)
        for _ in range(99):
            slab.observe_latency(0.00008)   # <=100us
        slab.observe_latency(0.4)           # <=500ms
        snap = slab.snapshot()
        assert snap["latency_ms"]["count"] == 100
        assert snap["latency_ms"]["p50_ms"] == 0.1
        assert snap["latency_ms"]["p99_ms"] == 0.1
        arena.close()


class TestSlabArena:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            SlabArena(0)

    def test_slab_index_bounds(self):
        arena = SlabArena(2)
        with pytest.raises(IndexError):
            arena.slab(2)
        arena.close()

    def test_reload_generation(self):
        arena = SlabArena(1)
        assert arena.reload_generation == 0
        assert arena.bump_reload_generation() == 1
        assert arena.bump_reload_generation() == 2
        assert arena.reload_generation == 2
        arena.close()

    def test_aggregate_totals_are_sums(self):
        arena = SlabArena(3)
        for index, slab in enumerate(arena.slabs()):
            slab.incr("requests", 10 * (index + 1))
            slab.incr("errors", index)
            slab.observe_latency(0.001 * (index + 1))
        aggregate = arena.aggregate()
        assert aggregate["count"] == 3
        assert aggregate["totals"]["requests"] == 10 + 20 + 30
        assert aggregate["totals"]["errors"] == 0 + 1 + 2
        assert aggregate["totals"]["latency_count"] == 3
        per_worker = aggregate["per_worker"]
        assert [w["worker"] for w in per_worker] == [0, 1, 2]
        assert sum(w["requests"] for w in per_worker) == (
            aggregate["totals"]["requests"]
        )

    def test_aggregate_percentiles_merge_buckets(self):
        # Worker 0 is fast, worker 1 is slow; the pool-wide p50 must come
        # from the union of observations, not an average of per-worker
        # quantiles.
        arena = SlabArena(2)
        for _ in range(10):
            arena.slab(0).observe_latency(0.00008)  # <=100us
        for _ in range(90):
            arena.slab(1).observe_latency(0.009)    # <=10ms
        aggregate = arena.aggregate()
        assert aggregate["totals"]["latency_ms"]["p50_ms"] == 10.0
        assert arena.slab(0).snapshot()["latency_ms"]["p50_ms"] == 0.1
        arena.close()

    def test_liveness(self):
        arena = SlabArena(2)
        arena.slab(0).mark_started(generation=3)
        live = arena.liveness(stale_after_s=30.0)
        assert live[0]["alive"] and live[0]["pid"] == os.getpid()
        assert live[0]["generation"] == 3
        assert not live[1]["alive"]  # never heartbeat
        # A heartbeat in the past beyond the staleness window is dead.
        arena.slab(0).set("heartbeat_ns", 1)
        assert not arena.liveness(stale_after_s=30.0)[0]["alive"]
        arena.close()
