"""Hot reload vs in-flight estimates: no batch ever sees a torn swap.

The service resolves the registry entry exactly once per request, so a
reload landing mid-batch must not split the batch across two synopsis
versions.  The tests hammer batches whose per-query answers differ
between two versions of the same snapshot while a writer swaps the file
underneath — every reply vector must equal one version's vector in
full, never a mixture.  Covered both in-process (threads against one
service) and across the pre-fork pool (real workers remapping packs).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import EstimationSystem, persist
from repro.datasets import generate_ssplays
from repro.reliability.shedding import (
    BULK_TIER,
    TieredAdmissionGate,
    default_tiers,
)
from repro.service import (
    EstimationService,
    ServerConfig,
    ServiceClient,
    SynopsisRegistry,
)
from repro.shm import WorkerPool, pool_supported

QUERIES = ["//PLAY", "//ACT", "//SCENE", "//SPEECH"]


@pytest.fixture(scope="module")
def version_a(ssplays_small):
    return EstimationSystem.build(ssplays_small, p_variance=0, o_variance=0)


@pytest.fixture(scope="module")
def version_b():
    document = generate_ssplays(scale=0.1, seed=5)
    return EstimationSystem.build(document, p_variance=0, o_variance=0)


@pytest.fixture(scope="module")
def expected_vectors(version_a, version_b):
    vector_a = tuple(version_a.estimate(text) for text in QUERIES)
    vector_b = tuple(version_b.estimate(text) for text in QUERIES)
    assert vector_a != vector_b, "versions must be distinguishable"
    return {vector_a, vector_b}


def _reply_vector(reply):
    return tuple(result["estimate"] for result in reply["results"])


class TestSingleProcess:
    def test_batches_never_mix_generations(
        self, tmp_path, version_a, version_b, expected_vectors
    ):
        path = str(tmp_path / "SSPlays.json")
        persist.save(version_a, path)
        registry = SynopsisRegistry(str(tmp_path), check_interval=0.0)
        registry.scan()
        service = EstimationService(registry)
        stop = threading.Event()
        torn = []

        def writer():
            flip = False
            while not stop.is_set():
                persist.save(version_b if flip else version_a, path)
                flip = not flip
                time.sleep(0.002)

        def reader():
            while not stop.is_set():
                reply = service.handle_estimate(
                    {"synopsis": "SSPlays", "queries": QUERIES}
                )
                vector = _reply_vector(reply)
                if vector not in expected_vectors:
                    torn.append((reply["generation"], vector))
                    return

        threads = [threading.Thread(target=writer)]
        threads += [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        time.sleep(1.5)
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
        assert torn == [], "a batch mixed synopsis versions: %r" % torn[:3]

    def test_reload_landing_exactly_mid_batch_is_invisible(
        self, tmp_path, version_a, version_b, expected_vectors
    ):
        """Deterministic version of the race the chaos tests hunt: force
        the hot swap to land *between* two queries of one batch (via the
        bulk lane's preemption checkpoint) and assert the batch still
        serves the pinned pre-swap version end to end."""
        path = str(tmp_path / "SSPlays.json")
        persist.save(version_a, path)
        registry = SynopsisRegistry(str(tmp_path), check_interval=0.0)
        registry.scan()
        swapped = []

        class ReloadingGate(TieredAdmissionGate):
            def checkpoint(self, tier, max_wait_s=0.0):
                if not swapped:
                    swapped.append(True)
                    persist.save(version_b, path)
                    entry = registry.get("SSPlays")  # in-place hot swap
                    assert entry.generation == 2
                return False

        service = EstimationService(
            registry, gate=ReloadingGate(tiers=default_tiers(8), max_total=8)
        )
        reply = service.handle_estimate(
            {"synopsis": "SSPlays", "queries": QUERIES}, tier=BULK_TIER
        )
        assert swapped, "the checkpoint hook must have fired mid-batch"
        vector_a = tuple(version_a.estimate(text) for text in QUERIES)
        assert _reply_vector(reply) == vector_a
        assert reply["generation"] == 1
        # The next request sees the new version whole.
        after = service.handle_estimate(
            {"synopsis": "SSPlays", "queries": QUERIES}, tier=BULK_TIER
        )
        assert _reply_vector(after) in expected_vectors
        assert _reply_vector(after) != vector_a
        assert after["generation"] == 2

    def test_generation_advances_after_swap(
        self, tmp_path, version_a, version_b
    ):
        path = str(tmp_path / "SSPlays.json")
        persist.save(version_a, path)
        registry = SynopsisRegistry(str(tmp_path), check_interval=0.0)
        registry.scan()
        service = EstimationService(registry)
        first = service.handle_estimate(
            {"synopsis": "SSPlays", "queries": QUERIES}
        )
        persist.save(version_b, path)
        second = service.handle_estimate(
            {"synopsis": "SSPlays", "queries": QUERIES}
        )
        assert second["generation"] == first["generation"] + 1
        assert _reply_vector(second) != _reply_vector(first)


@pytest.mark.skipif(
    not pool_supported(), reason="needs os.fork and SO_REUSEPORT"
)
class TestPreFork:
    def test_pool_batches_never_mix_versions(
        self, tmp_path, version_a, version_b, expected_vectors
    ):
        path = str(tmp_path / "SSPlays.json")
        persist.save(version_a, path)
        config = ServerConfig(port=0, workers=2, reload_interval_s=0.0)
        torn = []
        stop = threading.Event()
        with WorkerPool(
            str(tmp_path), workers=2, config=config, reload_poll_s=0.05
        ) as pool:

            def writer():
                flip = False
                while not stop.is_set():
                    persist.save(version_b if flip else version_a, path)
                    flip = not flip
                    pool.reload(force=True)
                    time.sleep(0.05)

            def reader():
                with ServiceClient(port=pool.port) as client:
                    while not stop.is_set():
                        reply = client._request(
                            "POST",
                            "/estimate",
                            {"synopsis": "SSPlays", "queries": QUERIES},
                        )
                        vector = _reply_vector(reply)
                        if vector not in expected_vectors:
                            torn.append(vector)
                            return

            threads = [threading.Thread(target=writer)]
            threads += [threading.Thread(target=reader) for _ in range(3)]
            for thread in threads:
                thread.start()
            time.sleep(3.0)
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        assert torn == [], "a pooled batch mixed versions: %r" % torn[:3]
