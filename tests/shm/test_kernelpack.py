"""Kernelpack format: round-trip bit-identity, corruption, registry use.

The pack is a flat serialization of the compiled kernel's buffers, so
the strongest possible check is structural: eagerly compile both the
in-process kernel and the pack-decoded kernel and compare every buffer
byte for byte (frequencies via ``array.tobytes()``, bitsets as ints).
Estimates then cannot differ.
"""

from __future__ import annotations

import os
import struct

import pytest

from repro import persist
from repro.service import SynopsisRegistry, UnknownSynopsisError
from repro.shm import (
    KernelPackError,
    PACK_SUFFIX,
    describe_pack,
    load_pack,
    pack_stamp,
    write_pack,
)

QUERIES = {
    "SSPlays": ["//PLAY", "//PLAY/ACT", "//ACT//$SCENE", "//SCENE/SPEECH"],
    "DBLP": ["//article", "//article/$author", "//inproceedings//title"],
    "XMark": ["//item", "//item//$name", "//open_auction//bidder"],
}


def _write(tmp_path, system, name):
    path = str(tmp_path / (name + PACK_SUFFIX))
    write_pack(path, system=system, name=name)
    return path


def _assert_kernels_bit_identical(reference, packed):
    reference.compile_full()
    packed.compile_full()
    ref_tags, ref_pairs = reference.export_state()
    got_tags, got_pairs = packed.export_state()
    assert sorted(got_tags) == sorted(ref_tags)
    for tag, ref in ref_tags.items():
        got = got_tags[tag]
        assert got.pids == ref.pids, tag
        assert got.freqs.tobytes() == ref.freqs.tobytes(), tag
        assert got.index_of == ref.index_of, tag
        assert got.init_at == ref.init_at, tag
        assert got.alive_mask == ref.alive_mask, tag
    assert sorted(got_pairs) == sorted(ref_pairs)
    for key, ref in ref_pairs.items():
        got = got_pairs[key]
        assert got.down == ref.down, key
        assert got.up == ref.up, key


class TestRoundTrip:
    def test_all_three_datasets_bit_identical(
        self, tmp_path, ssplays_system, dblp_system, xmark_system
    ):
        systems = {
            "SSPlays": ssplays_system,
            "DBLP": dblp_system,
            "XMark": xmark_system,
        }
        for name, system in systems.items():
            path = _write(tmp_path, system, name)
            loaded = load_pack(path)
            try:
                _assert_kernels_bit_identical(system.kernel(), loaded.kernel)
                assert loaded.kernel.pack_misses == 0, name
                assert loaded.kernel.packed
                for text in QUERIES[name]:
                    assert (
                        loaded.system.estimate(text)
                        == system.estimate(text)
                    ), (name, text)
            finally:
                loaded.pack.close()

    def test_loaded_system_reports_ready_kernel(self, tmp_path, ssplays_system):
        loaded = load_pack(_write(tmp_path, ssplays_system, "SSPlays"))
        try:
            assert loaded.system.kernel_state() == "ready"
            assert loaded.system.kernel_peek() is loaded.kernel
        finally:
            loaded.pack.close()

    def test_describe_pack(self, tmp_path, ssplays_system):
        path = _write(tmp_path, ssplays_system, "SSPlays")
        info = describe_pack(path)
        assert info["name"] == "SSPlays"
        assert info["version"] == 1
        assert info["tags"] > 0 and info["pairs"] > 0
        assert info["size_bytes"] == os.path.getsize(path)

    def test_pack_stamp_tracks_rewrites(self, tmp_path, ssplays_system):
        path = _write(tmp_path, ssplays_system, "SSPlays")
        first = pack_stamp(path)
        os.utime(path, ns=(1, 1))
        assert pack_stamp(path) != first


class TestCorruption:
    def test_flipped_body_byte_is_rejected(self, tmp_path, ssplays_system):
        path = _write(tmp_path, ssplays_system, "SSPlays")
        blob = bytearray(open(path, "rb").read())
        blob[len(blob) // 2] ^= 0xFF
        open(path, "wb").write(bytes(blob))
        with pytest.raises(KernelPackError):
            load_pack(path)

    def test_truncated_pack_is_rejected(self, tmp_path, ssplays_system):
        path = _write(tmp_path, ssplays_system, "SSPlays")
        blob = open(path, "rb").read()
        open(path, "wb").write(blob[: len(blob) // 2])
        with pytest.raises(KernelPackError):
            load_pack(path)

    def test_bad_magic_is_rejected(self, tmp_path, ssplays_system):
        path = _write(tmp_path, ssplays_system, "SSPlays")
        blob = bytearray(open(path, "rb").read())
        blob[:4] = b"NOPE"
        open(path, "wb").write(bytes(blob))
        with pytest.raises(KernelPackError):
            load_pack(path)

    def test_future_version_is_rejected(self, tmp_path, ssplays_system):
        path = _write(tmp_path, ssplays_system, "SSPlays")
        blob = bytearray(open(path, "rb").read())
        blob[4:6] = struct.pack("<H", 999)
        open(path, "wb").write(bytes(blob))
        with pytest.raises(KernelPackError):
            load_pack(path)


class TestRegistryIntegration:
    def test_fresh_pack_is_preferred(self, snapshot_dir, ssplays_system):
        _write(snapshot_dir, ssplays_system, "SSPlays")
        registry = SynopsisRegistry(str(snapshot_dir))
        registry.scan()
        entry = registry.get("SSPlays")
        assert entry.packed
        assert entry.system.kernel_state() == "ready"
        described = {info["name"]: info for info in registry.describe()}
        assert described["SSPlays"]["packed"]

    def test_corrupt_pack_falls_back_to_json(self, snapshot_dir, ssplays_system):
        path = _write(snapshot_dir, ssplays_system, "SSPlays")
        blob = bytearray(open(path, "rb").read())
        blob[-1] ^= 0xFF
        open(path, "wb").write(bytes(blob))
        registry = SynopsisRegistry(str(snapshot_dir))
        registry.scan()
        entry = registry.get("SSPlays")
        assert not entry.packed
        assert registry.pack_failures >= 1
        assert entry.system.estimate("//PLAY/ACT") == (
            ssplays_system.estimate("//PLAY/ACT")
        )

    def test_stale_pack_is_ignored(self, snapshot_dir, ssplays_system):
        path = _write(snapshot_dir, ssplays_system, "SSPlays")
        json_path = str(snapshot_dir / "SSPlays.json")
        pack_ns = os.stat(path).st_mtime_ns
        os.utime(json_path, ns=(pack_ns + 10_000_000_000,) * 2)
        registry = SynopsisRegistry(str(snapshot_dir))
        registry.scan()
        assert not registry.get("SSPlays").packed

    def test_pack_only_directory_serves(self, tmp_path, ssplays_system):
        _write(tmp_path, ssplays_system, "SSPlays")
        registry = SynopsisRegistry(str(tmp_path))
        assert registry.scan() == ["SSPlays"]
        entry = registry.get("SSPlays")
        assert entry.packed
        assert entry.system.estimate("//PLAY") == (
            ssplays_system.estimate("//PLAY")
        )
        with pytest.raises(UnknownSynopsisError):
            registry.get("nope")

    def test_pack_appearing_later_upgrades_entry(
        self, snapshot_dir, ssplays_system
    ):
        registry = SynopsisRegistry(str(snapshot_dir), check_interval=0.0)
        registry.scan()
        assert not registry.get("SSPlays").packed
        path = _write(snapshot_dir, ssplays_system, "SSPlays")
        json_ns = os.stat(str(snapshot_dir / "SSPlays.json")).st_mtime_ns
        os.utime(path, ns=(json_ns + 10_000_000_000,) * 2)
        entry = registry.get("SSPlays")
        assert entry.packed

    def test_embedded_synopsis_round_trips(self, tmp_path, ssplays_system):
        path = _write(tmp_path, ssplays_system, "SSPlays")
        loaded = load_pack(path)
        try:
            text = loaded.pack.synopsis_text()
        finally:
            loaded.pack.close()
        system = persist.loads(text)
        assert system.estimate("//PLAY/ACT") == (
            ssplays_system.estimate("//PLAY/ACT")
        )
