"""Shared fixtures for the shared-memory serving tests.

The pool tests fork real worker processes, so everything they need
(snapshots, packs) is staged on disk first; systems are module scoped
because building them dominates the suite's runtime.
"""

from __future__ import annotations

import pytest

from repro import EstimationSystem, persist


@pytest.fixture(scope="package")
def ssplays_system(ssplays_small):
    return EstimationSystem.build(ssplays_small, p_variance=0, o_variance=0)


@pytest.fixture(scope="package")
def dblp_system(dblp_small):
    return EstimationSystem.build(dblp_small, p_variance=0, o_variance=0)


@pytest.fixture(scope="package")
def xmark_system(xmark_small):
    return EstimationSystem.build(xmark_small, p_variance=0, o_variance=0)


@pytest.fixture()
def snapshot_dir(tmp_path, ssplays_system):
    persist.save(ssplays_system, str(tmp_path / "SSPlays.json"))
    return tmp_path
