"""Shared fixtures.

Expensive artifacts (datasets, labeled documents, workloads) are session
scoped; tests must not mutate them.
"""

from __future__ import annotations

import pytest

from repro.datasets import generate_dblp, generate_ssplays, generate_xmark
from repro.pathenc import label_document
from repro.xmltree.builder import paper_figure1_document
from repro.xpath import Evaluator


@pytest.fixture(scope="session")
def figure1():
    """The paper's running example document (Figure 1)."""
    return paper_figure1_document()


@pytest.fixture(scope="session")
def figure1_labeled(figure1):
    return label_document(figure1)


@pytest.fixture(scope="session")
def figure1_evaluator(figure1):
    return Evaluator(figure1)


@pytest.fixture(scope="session")
def ssplays_small():
    return generate_ssplays(scale=0.2, seed=3)


@pytest.fixture(scope="session")
def dblp_small():
    return generate_dblp(scale=0.05, seed=3)


@pytest.fixture(scope="session")
def xmark_small():
    return generate_xmark(scale=0.2, seed=3)


# Path-id constants of the Figure 1 example (4-bit, MSB = encoding 1).
P = {
    1: 0b0001,
    2: 0b0010,
    3: 0b0011,
    4: 0b0100,
    5: 0b1000,
    6: 0b1010,
    7: 0b1011,
    8: 0b1100,
    9: 0b1111,
}


@pytest.fixture(scope="session")
def pid():
    """Figure 1(c) path-id constants: pid[3] == p3 == 0011."""
    return dict(P)
