"""Tests for workload persistence."""

import json

import pytest

from repro.workload import WorkloadGenerator
from repro.workload.io import (
    WorkloadLoadError,
    load_workload,
    save_workload,
    workload_from_dict,
    workload_to_dict,
)


@pytest.fixture(scope="module")
def workload(ssplays_small):
    return WorkloadGenerator(ssplays_small, seed=19).full_workload(60, 60, 60)


class TestRoundTrip:
    def test_counts_and_texts_preserved(self, workload):
        restored = workload_from_dict(workload_to_dict(workload))
        assert restored.dataset == workload.dataset
        for attribute in ("simple", "branch", "order_branch", "order_trunk"):
            original = getattr(workload, attribute)
            loaded = getattr(restored, attribute)
            assert [i.text for i in loaded] == [i.text for i in original]
            assert [i.actual for i in loaded] == [i.actual for i in original]
            assert [i.kind for i in loaded] == [i.kind for i in original]

    def test_queries_reparsed_equivalently(self, workload, ssplays_small):
        from repro.xpath import Evaluator

        restored = workload_from_dict(workload_to_dict(workload))
        evaluator = Evaluator(ssplays_small)
        for item in (restored.simple + restored.order_branch)[:20]:
            assert evaluator.selectivity(item.query) == item.actual

    def test_file_roundtrip(self, workload, tmp_path):
        path = str(tmp_path / "workload.json")
        save_workload(workload, path)
        restored = load_workload(path)
        assert restored.table2_row() == workload.table2_row()

    def test_payload_is_json(self, workload):
        text = json.dumps(workload_to_dict(workload))
        assert "format_version" in text


class TestErrors:
    def test_version_check(self, workload):
        payload = workload_to_dict(workload)
        payload["format_version"] = 9
        with pytest.raises(WorkloadLoadError):
            workload_from_dict(payload)

    def test_missing_section(self, workload):
        payload = workload_to_dict(workload)
        del payload["branch"]
        with pytest.raises(WorkloadLoadError):
            workload_from_dict(payload)

    def test_malformed_entry(self, workload):
        payload = workload_to_dict(workload)
        payload["simple"] = [{"text": "///broken", "kind": "simple", "actual": 1}]
        with pytest.raises(WorkloadLoadError):
            workload_from_dict(payload)
