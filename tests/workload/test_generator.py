"""Tests for the Section 7 workload generator."""

import pytest

from repro.workload import WorkloadGenerator
from repro.xpath import Evaluator, parse_query
from repro.xpath.ast import QueryAxis


@pytest.fixture(scope="module")
def gen(ssplays_small):
    return WorkloadGenerator(ssplays_small, seed=9)


class TestSimpleQueries:
    def test_all_positive_with_recorded_actuals(self, gen, ssplays_small):
        items = gen.simple_queries(150)
        evaluator = Evaluator(ssplays_small)
        assert items
        for item in items[:30]:
            assert item.actual > 0
            assert item.kind == "simple"
            assert evaluator.selectivity(item.query) == item.actual

    def test_no_duplicates(self, gen):
        items = gen.simple_queries(200)
        texts = [item.text for item in items]
        assert len(texts) == len(set(texts))

    def test_queries_are_chains(self, gen):
        for item in gen.simple_queries(80):
            for node in item.query.nodes():
                assert len(node.edges) <= 1
                assert not node.predicate_edges()

    def test_deterministic(self, ssplays_small):
        a = WorkloadGenerator(ssplays_small, seed=4).simple_queries(60)
        b = WorkloadGenerator(ssplays_small, seed=4).simple_queries(60)
        assert [i.text for i in a] == [i.text for i in b]


class TestBranchQueries:
    def test_shape_is_standardized(self, gen):
        items = gen.branch_queries(200)
        assert items
        for item in items[:40]:
            branching = [
                node for node in item.query.nodes()
                if node.predicate_edges() and node.inline_edge() is not None
            ]
            assert len(branching) == 1  # q1[/q2]/q3

    def test_positive_and_deduped(self, gen, ssplays_small):
        items = gen.branch_queries(150)
        evaluator = Evaluator(ssplays_small)
        texts = [item.text for item in items]
        assert len(texts) == len(set(texts))
        for item in items[:25]:
            assert evaluator.selectivity(item.query) == item.actual > 0

    def test_size_bounds(self, gen):
        for item in gen.branch_queries(120):
            assert 3 <= len(item.query) <= 12


class TestOrderQueries:
    def test_paired_targets(self, gen):
        branch_items, trunk_items = gen.order_queries(250)
        assert len(branch_items) == len(trunk_items)
        assert branch_items
        for b_item, t_item in zip(branch_items[:20], trunk_items[:20]):
            assert b_item.kind == "order_branch"
            assert t_item.kind == "order_trunk"
            # Same underlying pattern, different target.
            assert b_item.query.root.tag == t_item.query.root.tag
            assert b_item.query.has_order_axes()

    def test_exactly_one_sibling_order_edge(self, gen):
        branch_items, _ = gen.order_queries(150)
        for item in branch_items[:30]:
            order_edges = [
                axis for axis, _, _ in item.query.iter_edges()
                if axis in (QueryAxis.FOLLS, QueryAxis.PRES)
            ]
            assert len(order_edges) == 1

    def test_actuals_positive_and_correct(self, gen, ssplays_small):
        evaluator = Evaluator(ssplays_small)
        branch_items, trunk_items = gen.order_queries(150)
        for item in branch_items[:15] + trunk_items[:15]:
            assert item.actual > 0
            assert evaluator.selectivity(item.query) == item.actual

    def test_queries_parse_back(self, gen):
        branch_items, _ = gen.order_queries(100)
        for item in branch_items[:20]:
            assert parse_query(item.text).to_string() == item.text


class TestFullWorkload:
    def test_table2_row(self, gen):
        workload = gen.full_workload(raw_simple=80, raw_branch=80, raw_order=80)
        row = workload.table2_row()
        assert row["total"] == row["simple"] + row["branch"]
        assert row["with_order"] == len(workload.order_branch)
        assert len(workload.no_order()) == row["total"]
