"""Tests for the scoped-order workload generation."""

import pytest

from repro.workload import WorkloadGenerator
from repro.xpath import Evaluator, parse_query
from repro.xpath.ast import QueryAxis


@pytest.fixture(scope="module")
def items(ssplays_small):
    return WorkloadGenerator(ssplays_small, seed=31).scoped_order_queries(150)


class TestShape:
    def test_exactly_one_scoped_edge(self, items):
        assert items
        for item in items[:30]:
            scoped = [
                axis for axis, _, _ in item.query.iter_edges()
                if axis in (QueryAxis.FOLL, QueryAxis.PRE)
            ]
            assert len(scoped) == 1
            assert not any(
                axis in (QueryAxis.FOLLS, QueryAxis.PRES)
                for axis, _, _ in item.query.iter_edges()
            )

    def test_target_is_the_scoped_node(self, items):
        for item in items[:30]:
            _, _, dest = next(
                (a, s, d) for a, s, d in item.query.iter_edges() if a.is_scoped_order
            )
            assert item.query.target is dest
            assert item.kind == "order_scoped"

    def test_positive_with_correct_actuals(self, items, ssplays_small):
        evaluator = Evaluator(ssplays_small)
        for item in items[:20]:
            assert item.actual > 0
            assert evaluator.selectivity(item.query) == item.actual

    def test_parse_roundtrip(self, items):
        for item in items[:20]:
            assert parse_query(item.text).to_string() == item.text

    def test_deduplicated(self, items):
        texts = [item.text for item in items]
        assert len(texts) == len(set(texts))


class TestEstimationSoundness:
    def test_no_zero_estimates(self, items, ssplays_small):
        from repro import EstimationSystem

        system = EstimationSystem.build(ssplays_small, p_variance=0, o_variance=0)
        for item in items:
            assert system.estimate(item.query) > 0
