"""Both box-growth directions of Algorithm 2 (DESIGN.md §5.6)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.histograms.ohistogram import OHistogramSet, build_ohistogram
from repro.histograms.phistogram import PHistogramSet
from repro.histograms.variance import bucket_std_dev
from repro.pathenc import label_document
from repro.stats import collect_path_order, collect_pathid_frequencies


def coverage_and_variance_ok(cells, pid_order, variance, growth):
    histogram = build_ohistogram("x", "+ele", cells, pid_order, variance, growth=growth)
    row_of = {t: i for i, t in enumerate(sorted({t for _, t in cells}))}
    col_of = {p: i for i, p in enumerate(pid_order)}
    covered = set()
    for bucket in histogram.buckets:
        values = []
        for (pid, tag), count in cells.items():
            if bucket.covers(col_of[pid], row_of[tag]):
                assert (pid, tag) not in covered
                covered.add((pid, tag))
                values.append(count)
        assert values, "empty bucket emitted"
        assert bucket_std_dev(values) <= variance + 1e-6
    assert covered == set(cells)
    return histogram


class TestGrowthDirections:
    @settings(deadline=None)
    @given(
        st.dictionaries(
            st.tuples(st.integers(min_value=1, max_value=7), st.sampled_from("abcd")),
            st.integers(min_value=1, max_value=30),
            min_size=1,
            max_size=24,
        ),
        st.floats(min_value=0, max_value=15),
    )
    def test_both_directions_valid(self, cells, variance):
        pid_order = sorted({pid for pid, _ in cells})
        down = coverage_and_variance_ok(cells, pid_order, variance, "down")
        up = coverage_and_variance_ok(cells, pid_order, variance, "up")
        # Both directions partition the same cells (bucket *counts* may
        # differ on asymmetric layouts — an L-shape splits one way and
        # not the other); each stays within one of the other's count ±
        # the number of cells.
        assert abs(down.bucket_count - up.bucket_count) <= len(cells)

    def test_invalid_direction_rejected(self):
        with pytest.raises(ValueError):
            build_ohistogram("x", "+ele", {(1, "a"): 1}, [1], 0, growth="sideways")

    def test_lookup_equivalent_at_zero_variance(self, figure1_labeled):
        freq = collect_pathid_frequencies(figure1_labeled)
        order = collect_path_order(figure1_labeled)
        phist = PHistogramSet.from_table(freq, 0)
        down = OHistogramSet.from_table(order, phist, 0, growth="down")
        up = OHistogramSet.from_table(order, phist, 0, growth="up")
        for grid in order.iter_grids():
            for before in (True, False):
                for (pid, other), count in grid.region(before).items():
                    assert down.order_count(grid.tag, pid, other, before) == count
                    assert up.order_count(grid.tag, pid, other, before) == count
