"""Tests for the o-histogram (Algorithm 2, Figure 8)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.histograms.ohistogram import OHistogramSet, build_ohistogram
from repro.histograms.phistogram import PHistogramSet
from repro.histograms.variance import bucket_std_dev
from repro.pathenc import label_document
from repro.stats import collect_path_order, collect_pathid_frequencies


def simple_cells():
    """A small grid: pids 1..4 as columns, tags a..c as rows."""
    return {
        (1, "a"): 2,
        (2, "a"): 2,
        (3, "a"): 2,
        (1, "b"): 2,
        (2, "b"): 2,
        (4, "c"): 9,
    }


class TestConstruction:
    def test_exact_at_zero_variance(self):
        cells = simple_cells()
        histogram = build_ohistogram("x", "+ele", cells, [1, 2, 3, 4], 0)
        for (pid, tag), count in cells.items():
            assert histogram.lookup(pid, tag) == pytest.approx(count)

    def test_uncovered_cell_is_zero(self):
        histogram = build_ohistogram("x", "+ele", simple_cells(), [1, 2, 3, 4], 0)
        # (4, "a") and (1, "c") sit outside every bounding box; note that a
        # box may legitimately cover empty cells *inside* its rectangle.
        assert histogram.lookup(4, "a") == 0.0
        assert histogram.lookup(1, "c") == 0.0
        assert histogram.lookup(1, "zz") == 0.0
        assert histogram.lookup(99, "a") == 0.0

    def test_uniform_grid_collapses_to_one_box(self):
        cells = {(p, t): 5 for p in (1, 2, 3) for t in ("a", "b")}
        histogram = build_ohistogram("x", "+ele", cells, [1, 2, 3], 0)
        assert histogram.bucket_count == 1
        bucket = histogram.buckets[0]
        assert (bucket.x_start, bucket.y_start, bucket.x_end, bucket.y_end) == (0, 0, 2, 1)
        assert bucket.avg_frequency == 5

    def test_boxes_do_not_overlap(self):
        histogram = build_ohistogram("x", "+ele", simple_cells(), [1, 2, 3, 4], 5)
        covered = set()
        for bucket in histogram.buckets:
            for x in range(bucket.x_start, bucket.x_end + 1):
                for y in range(bucket.y_start, bucket.y_end + 1):
                    assert (x, y) not in covered
                    covered.add((x, y))

    def test_negative_variance_rejected(self):
        with pytest.raises(ValueError):
            build_ohistogram("x", "+ele", simple_cells(), [1, 2, 3, 4], -0.5)


class TestProperties:
    @settings(deadline=None)
    @given(
        st.dictionaries(
            st.tuples(st.integers(min_value=1, max_value=8), st.sampled_from("abcde")),
            st.integers(min_value=1, max_value=40),
            min_size=1,
            max_size=30,
        ),
        st.floats(min_value=0, max_value=20),
    )
    def test_invariants(self, cells, variance):
        pid_order = sorted({pid for pid, _ in cells})
        histogram = build_ohistogram("x", "ele+", cells, pid_order, variance)
        # Every non-empty cell is covered and approximated within the
        # bucket-variance bound.
        row_of = {t: i for i, t in enumerate(sorted({t for _, t in cells}))}
        col_of = {p: i for i, p in enumerate(pid_order)}
        assignment = {}
        for bucket in histogram.buckets:
            for (pid, tag), count in cells.items():
                if bucket.covers(col_of[pid], row_of[tag]):
                    assert (pid, tag) not in assignment
                    assignment[(pid, tag)] = bucket
        assert set(assignment) == set(cells)
        # Variance bound holds over each bucket's non-empty cells.
        for bucket in histogram.buckets:
            values = [
                count for (pid, tag), count in cells.items()
                if bucket.covers(col_of[pid], row_of[tag])
            ]
            assert bucket_std_dev(values) <= variance + 1e-6
            assert bucket.avg_frequency == pytest.approx(sum(values) / len(values))

    @settings(deadline=None)
    @given(
        st.dictionaries(
            st.tuples(st.integers(min_value=1, max_value=6), st.sampled_from("abc")),
            st.integers(min_value=1, max_value=9),
            min_size=1,
            max_size=18,
        )
    )
    def test_zero_variance_exact(self, cells):
        pid_order = sorted({pid for pid, _ in cells})
        histogram = build_ohistogram("x", "+ele", cells, pid_order, 0)
        for (pid, tag), count in cells.items():
            assert histogram.lookup(pid, tag) == pytest.approx(count)


class TestSet:
    def build_set(self, labeled, p_variance, o_variance):
        freq_table = collect_pathid_frequencies(labeled)
        order_table = collect_path_order(labeled)
        phistograms = PHistogramSet.from_table(freq_table, p_variance)
        return OHistogramSet.from_table(order_table, phistograms, o_variance)

    def test_figure2b_lookup(self, figure1_labeled, pid):
        ohistograms = self.build_set(figure1_labeled, 0, 0)
        assert ohistograms.order_count("B", pid[5], "C", before=True) == 1
        assert ohistograms.order_count("B", pid[5], "C", before=False) == 2
        assert ohistograms.order_count("B", pid[8], "C", before=True) == 0

    def test_unknown_tag(self, figure1_labeled, pid):
        ohistograms = self.build_set(figure1_labeled, 0, 0)
        assert ohistograms.order_count("nope", pid[1], "B", before=True) == 0

    def test_memory_decreases_with_variance(self, ssplays_small):
        labeled = label_document(ssplays_small)
        sizes = [
            self.build_set(labeled, 0, v).size_bytes() for v in (0, 1, 4, 10)
        ]
        assert sizes == sorted(sizes, reverse=True)
        assert sizes[-1] > 0

    def test_total_buckets_positive(self, figure1_labeled):
        ohistograms = self.build_set(figure1_labeled, 0, 0)
        assert ohistograms.total_buckets() > 0
        assert ohistograms.size_bytes() == ohistograms.total_buckets() * 12
