"""Tests for the running variance tracker, including hypothesis checks."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.histograms.variance import RunningVariance, bucket_std_dev


class TestRunningVariance:
    def test_empty(self):
        tracker = RunningVariance()
        assert tracker.std_dev == 0.0
        assert tracker.mean == 0.0

    def test_single_value(self):
        tracker = RunningVariance()
        tracker.add(5)
        assert tracker.std_dev == 0.0
        assert tracker.mean == 5.0

    def test_paper_formula(self):
        # v_b = sqrt(((f1-avg)^2 + ... + (fk-avg)^2) / k)
        tracker = RunningVariance()
        for value in (2, 2, 5, 7):
            tracker.add(value)
        expected = math.sqrt(((2 - 4) ** 2 + (2 - 4) ** 2 + (5 - 4) ** 2 + (7 - 4) ** 2) / 4)
        assert tracker.std_dev == pytest.approx(expected)

    def test_remove(self):
        tracker = RunningVariance()
        tracker.add(1)
        tracker.add(9)
        tracker.remove(9)
        assert tracker.count == 1
        assert tracker.std_dev == pytest.approx(0.0, abs=1e-9)

    def test_remove_empty_raises(self):
        with pytest.raises(ValueError):
            RunningVariance().remove(1)

    def test_would_exceed_matches_actual_add(self):
        tracker = RunningVariance()
        tracker.add(1)
        tracker.add(2)
        assert tracker.would_exceed(100, threshold=1.0)
        assert not tracker.would_exceed(2, threshold=1.0)


class TestAgainstReference:
    @given(st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=50))
    def test_matches_one_shot_formula(self, values):
        tracker = RunningVariance()
        for value in values:
            tracker.add(value)
        assert tracker.std_dev == pytest.approx(bucket_std_dev(values), abs=1e-6, rel=1e-6)

    @given(
        st.lists(st.integers(min_value=0, max_value=10**4), min_size=1, max_size=30),
        st.integers(min_value=0, max_value=10**4),
        st.floats(min_value=0, max_value=100),
    )
    def test_would_exceed_is_consistent(self, values, extra, threshold):
        tracker = RunningVariance()
        for value in values:
            tracker.add(value)
        prediction = tracker.would_exceed(extra, threshold)
        actual = bucket_std_dev(values + [extra]) > threshold + 1e-12
        assert prediction == actual
