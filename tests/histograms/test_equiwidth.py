"""Tests for the equi-count bucketing ablation."""

import pytest

from repro.histograms.equiwidth import (
    EquiCountPHistogramSet,
    build_equicount_phistogram,
)
from repro.histograms.phistogram import PHistogramSet
from repro.pathenc import label_document
from repro.stats import collect_pathid_frequencies


class TestBuild:
    def test_exact_when_buckets_cover_all(self):
        pairs = [(1, 3), (2, 5), (3, 9)]
        histogram = build_equicount_phistogram("t", pairs, 3)
        for pid, freq in pairs:
            assert histogram.approx_frequency(pid) == freq

    def test_single_bucket_averages(self):
        pairs = [(1, 2), (2, 4)]
        histogram = build_equicount_phistogram("t", pairs, 1)
        assert histogram.bucket_count == 1
        assert histogram.approx_frequency(1) == 3.0

    def test_bucket_sizes_balanced(self):
        pairs = [(i, i) for i in range(1, 11)]
        histogram = build_equicount_phistogram("t", pairs, 3)
        sizes = sorted(len(b) for b in histogram.buckets)
        assert sizes == [3, 3, 4]

    def test_more_buckets_than_pairs(self):
        pairs = [(1, 1), (2, 2)]
        histogram = build_equicount_phistogram("t", pairs, 10)
        assert histogram.bucket_count == 2

    def test_empty_pairs(self):
        histogram = build_equicount_phistogram("t", [], 4)
        assert histogram.bucket_count == 0

    def test_invalid_bucket_count(self):
        with pytest.raises(ValueError):
            build_equicount_phistogram("t", [(1, 1)], 0)


class TestFromReference:
    def test_matches_reference_bucket_counts(self, ssplays_small):
        labeled = label_document(ssplays_small)
        table = collect_pathid_frequencies(labeled)
        reference = PHistogramSet.from_table(table, 2)
        ablation = EquiCountPHistogramSet.from_reference(table, reference)
        for tag in reference.tags():
            assert (
                ablation.histogram(tag).bucket_count
                == reference.histogram(tag).bucket_count
            )
        pid_bytes = labeled.pathid_size_bytes()
        assert ablation.size_bytes(pid_bytes) == reference.size_bytes(pid_bytes)

    def test_provider_protocol(self, figure1_labeled):
        table = collect_pathid_frequencies(figure1_labeled)
        ablation = EquiCountPHistogramSet.from_table(table, 2)
        assert ablation.frequency_pairs("missing") == []
        assert set(ablation.frequency_map("B")) == set(table.frequency_map("B"))
