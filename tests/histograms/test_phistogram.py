"""Tests for the p-histogram (Algorithm 1, Figure 7)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.histograms.phistogram import PHistogramSet, build_phistogram
from repro.histograms.variance import bucket_std_dev
from repro.pathenc import label_document
from repro.stats import collect_pathid_frequencies


# The Figure 7 example list: (p2,2) (p3,2) (p1,5) (p5,7)
FIGURE7 = [(2, 2), (3, 2), (1, 5), (5, 7)]


class TestFigure7:
    def test_variance_zero(self):
        histogram = build_phistogram("x", FIGURE7, 0)
        groups = [set(bucket.pathids) for bucket in histogram.buckets]
        assert groups == [{2, 3}, {1}, {5}]
        assert [b.avg_frequency for b in histogram.buckets] == [2, 5, 7]

    def test_variance_one(self):
        histogram = build_phistogram("x", FIGURE7, 1)
        groups = [set(bucket.pathids) for bucket in histogram.buckets]
        # Figure 7: {p2,p3} with avg 2 and {p1,p5} with avg 6.
        assert groups == [{2, 3}, {1, 5}]
        assert [b.avg_frequency for b in histogram.buckets] == [2, 6]

    def test_bucket_variance_bounded(self):
        histogram = build_phistogram("x", FIGURE7, 1)
        freq_of = dict(FIGURE7)
        for bucket in histogram.buckets:
            values = [freq_of[p] for p in bucket.pathids]
            assert bucket_std_dev(values) <= 1 + 1e-9


class TestProperties:
    @given(
        st.lists(
            st.tuples(st.integers(min_value=1, max_value=1000), st.integers(min_value=1, max_value=500)),
            min_size=1,
            max_size=60,
            unique_by=lambda pair: pair[0],
        ),
        st.floats(min_value=0, max_value=50),
    )
    def test_invariants(self, pairs, variance):
        histogram = build_phistogram("t", pairs, variance)
        freq_of = dict(pairs)
        # Every pid appears exactly once across buckets.
        seen = [p for bucket in histogram.buckets for p in bucket.pathids]
        assert sorted(seen) == sorted(freq_of)
        # Buckets respect the variance threshold and store true means.
        for bucket in histogram.buckets:
            values = [freq_of[p] for p in bucket.pathids]
            assert bucket_std_dev(values) <= variance + 1e-6
            assert bucket.avg_frequency == pytest.approx(sum(values) / len(values))
        # Total mass is preserved by bucket averages.
        total = sum(len(b) * b.avg_frequency for b in histogram.buckets)
        assert total == pytest.approx(sum(freq_of.values()))

    @given(st.lists(
        st.tuples(st.integers(min_value=1, max_value=100), st.integers(min_value=1, max_value=50)),
        min_size=1, max_size=30, unique_by=lambda pair: pair[0]))
    def test_variance_zero_is_exact(self, pairs):
        histogram = build_phistogram("t", pairs, 0)
        for pid, freq in pairs:
            assert histogram.approx_frequency(pid) == pytest.approx(freq)

    def test_monotone_bucket_count(self):
        pairs = [(i, i * 3 % 17 + 1) for i in range(1, 40)]
        counts = [len(build_phistogram("t", pairs, v).buckets) for v in (0, 1, 2, 4, 8)]
        assert counts == sorted(counts, reverse=True)

    def test_negative_variance_rejected(self):
        with pytest.raises(ValueError):
            build_phistogram("t", FIGURE7, -1)


class TestSet:
    def test_from_table_exact_at_zero(self, figure1_labeled, pid):
        table = collect_pathid_frequencies(figure1_labeled)
        histograms = PHistogramSet.from_table(table, 0)
        assert histograms.frequency_map("B") == {pid[5]: 3.0, pid[8]: 1.0}
        assert histograms.frequency_pairs("unknown") == []

    def test_memory_decreases_with_variance(self, ssplays_small):
        labeled = label_document(ssplays_small)
        table = collect_pathid_frequencies(labeled)
        sizes = [
            PHistogramSet.from_table(table, v).size_bytes(labeled.pathid_size_bytes())
            for v in (0, 1, 5, 10)
        ]
        assert sizes == sorted(sizes, reverse=True)
        assert sizes[-1] > 0

    def test_pid_order_matches_approx_pairs(self, figure1_labeled):
        table = collect_pathid_frequencies(figure1_labeled)
        histograms = PHistogramSet.from_table(table, 1)
        for tag in histograms.tags():
            histogram = histograms.histogram(tag)
            assert histogram.pid_order() == [p for p, _ in histogram.approx_pairs()]
