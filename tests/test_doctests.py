"""Run the doctests embedded in module docstrings.

A few modules carry small executable examples (``repro.pathenc.pathid``'s
bit helpers); this keeps them honest.
"""

import doctest

import pytest

import repro.harness.metrics
import repro.pathenc.pathid

MODULES = [
    repro.pathenc.pathid,
    repro.harness.metrics,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0


def test_pathid_module_has_examples():
    result = doctest.testmod(repro.pathenc.pathid, verbose=False)
    assert result.attempted >= 3
