"""The event scanner: tokenization without tree construction."""

from __future__ import annotations

import pytest

from repro.errors import ParseError
from repro.xmltree.parser import EVENT_END, EVENT_START, XmlParseError, scan_events


def events(text, **kwargs):
    return list(scan_events(text, **kwargs))


class TestScanEvents:
    def test_single_element(self):
        assert events("<a/>") == [(EVENT_START, "a"), (EVENT_END, "a")]

    def test_nesting_order(self):
        assert events("<a><b/><c>t</c></a>") == [
            (EVENT_START, "a"),
            (EVENT_START, "b"),
            (EVENT_END, "b"),
            (EVENT_START, "c"),
            (EVENT_END, "c"),
            (EVENT_END, "a"),
        ]

    def test_attributes_skipped(self):
        assert events('<a x="1" y="<&gt;"><b z="/>"/></a>') == [
            (EVENT_START, "a"),
            (EVENT_START, "b"),
            (EVENT_END, "b"),
            (EVENT_END, "a"),
        ]

    def test_prolog_comments_cdata_pi(self):
        text = (
            '<?xml version="1.0"?><!DOCTYPE a><!-- c -->'
            "<a><?pi data?><![CDATA[<not><tags>]]><!-- <b/> --><b/></a>"
        )
        assert events(text) == [
            (EVENT_START, "a"),
            (EVENT_START, "b"),
            (EVENT_END, "b"),
            (EVENT_END, "a"),
        ]

    def test_mismatched_end_tag_raises(self):
        with pytest.raises(XmlParseError):
            events("<a><b></a></b>")

    def test_unclosed_element_raises(self):
        with pytest.raises(XmlParseError):
            events("<a><b/>")

    def test_trailing_content_raises(self):
        with pytest.raises(XmlParseError):
            events("<a/><b/>")

    def test_parse_errors_are_repro_parse_errors(self):
        with pytest.raises(ParseError):
            events("<a><b/>")

    def test_fragment_accepts_sibling_run(self):
        assert events("<a/>junk<b><c/></b>", fragment=True) == [
            (EVENT_START, "a"),
            (EVENT_END, "a"),
            (EVENT_START, "b"),
            (EVENT_START, "c"),
            (EVENT_END, "c"),
            (EVENT_END, "b"),
        ]

    def test_event_stream_matches_tree_preorder(self, ssplays_small):
        from repro.xmltree.serializer import serialize

        text = serialize(ssplays_small)
        starts = [tag for kind, tag in scan_events(text) if kind == EVENT_START]
        preorder = [node.tag for node in ssplays_small]
        assert starts == preorder
