"""Partial-table merge algebra and the shard wire format."""

from __future__ import annotations

import json
import random

import pytest

from repro import persist
from repro.build import merge_partials, scan_text, split_text
from repro.errors import BuildError
from repro.stats.path_order import PathOrderTable, TagOrderGrid
from repro.stats.pathid_freq import PathIdFrequencyTable
from repro.xmltree.serializer import serialize


def random_freq_table(rng):
    tags = ["a", "b", "c", "d"]
    return PathIdFrequencyTable(
        {
            tag: {
                rng.getrandbits(8) | 1: rng.randint(1, 50)
                for _ in range(rng.randint(1, 5))
            }
            for tag in rng.sample(tags, rng.randint(1, len(tags)))
        }
    )


def random_order_table(rng):
    grids = {}
    for tag in rng.sample(["a", "b", "c"], rng.randint(1, 3)):
        grid = TagOrderGrid(tag)
        for _ in range(rng.randint(0, 6)):
            grid.add_count(
                rng.getrandbits(6) | 1,
                rng.choice(["x", "y", "z"]),
                rng.randint(1, 9),
                rng.random() < 0.5,
            )
        grids[tag] = grid
    return PathOrderTable(grids)


class TestMergeAlgebra:
    def test_freq_merge_is_order_independent(self):
        rng = random.Random(5)
        tables = [random_freq_table(rng) for _ in range(4)]
        merged = tables[0].merge(*tables[1:])
        shuffled = list(tables)
        rng.shuffle(shuffled)
        assert shuffled[0].merge(*shuffled[1:]) == merged

    def test_freq_merge_is_associative(self):
        rng = random.Random(6)
        a, b, c = (random_freq_table(rng) for _ in range(3))
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    def test_order_merge_is_order_independent(self):
        rng = random.Random(7)
        tables = [random_order_table(rng) for _ in range(4)]
        merged = tables[0].merge(*tables[1:])
        shuffled = list(tables)
        rng.shuffle(shuffled)
        assert shuffled[0].merge(*shuffled[1:]) == merged

    def test_order_merge_is_associative(self):
        rng = random.Random(8)
        a, b, c = (random_order_table(rng) for _ in range(3))
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    def test_remap_requires_consistency(self):
        table = PathIdFrequencyTable({"a": {0b01: 2, 0b10: 3}})
        remapped = table.remap_pathids(lambda pid: pid << 4)
        assert remapped.frequency_map("a") == {0b010000: 2, 0b100000: 3}


class TestMergePartials:
    def test_empty_input_rejected(self):
        with pytest.raises(BuildError):
            merge_partials([])

    def test_root_tag_shard_consistency_enforced(self, figure1):
        text = serialize(figure1)
        whole = scan_text(text)
        with pytest.raises(BuildError):
            merge_partials([whole], root_tag="PLAY")  # whole doc + root_tag
        root_tag, shards = split_text(text, shard_count=2)
        fragments = [scan_text(shard, (root_tag,)) for shard in shards]
        with pytest.raises(BuildError):
            merge_partials(fragments)  # shards without root_tag
        with pytest.raises(BuildError):
            merge_partials([fragments[0], whole], root_tag=root_tag)  # mixed

    def test_grouping_of_shards_does_not_matter(self, dblp_small):
        """Scanning k shards then merging equals scanning fewer, coarser
        shards — the reduce step is agnostic to the cut granularity."""
        text = serialize(dblp_small)
        root_tag, shards = split_text(text, shard_count=8)
        fine = merge_partials(
            [scan_text(s, (root_tag,)) for s in shards], root_tag=root_tag
        )
        coarse_texts = ["".join(shards[:3]), "".join(shards[3:])]
        coarse = merge_partials(
            [scan_text(s, (root_tag,)) for s in coarse_texts], root_tag=root_tag
        )
        assert fine.encoding_table.all_paths() == coarse.encoding_table.all_paths()
        assert fine.pathid_table == coarse.pathid_table
        assert fine.order_table == coarse.order_table
        assert fine.element_count == coarse.element_count


class TestPartialWireFormat:
    def test_round_trip_preserves_merge_result(self, ssplays_small):
        text = serialize(ssplays_small)
        root_tag, shards = split_text(text, shard_count=4)
        partials = [scan_text(shard, (root_tag,)) for shard in shards]
        direct = merge_partials(partials, root_tag=root_tag)
        wired = [
            persist.partial_from_dict(
                json.loads(json.dumps(persist.partial_to_dict(p)))
            )
            for p in partials
        ]
        via_wire = merge_partials(wired, root_tag=root_tag)
        assert via_wire.encoding_table.all_paths() == direct.encoding_table.all_paths()
        assert via_wire.pathid_table == direct.pathid_table
        assert via_wire.order_table == direct.order_table
        assert via_wire.element_count == direct.element_count

    def test_version_checked(self):
        with pytest.raises(persist.PersistError):
            persist.partial_from_dict({"partial_format_version": 99})
        with pytest.raises(persist.PersistError):
            persist.partial_from_dict([])

    def test_malformed_payload_is_persist_error(self, figure1):
        payload = persist.partial_to_dict(scan_text(serialize(figure1)))
        payload["freq"] = {"a": {"zz": "not hex"}}
        with pytest.raises(persist.PersistError):
            persist.partial_from_dict(payload)
