"""Streaming and sharded builds are bit-identical to the tree pipeline.

This is the tentpole property: on every bundled dataset the
stream-collected synopsis — and any contiguous sharding of it — matches
the in-memory tree build on the encoding table, both statistics tables,
the distinct path-id list and therefore every estimate.
"""

from __future__ import annotations

import random

import pytest

from repro.build import SynopsisBuilder, build_synopsis, scan_text, split_text
from repro.build.merge import merge_partials
from repro.core.system import EstimationSystem
from repro.workload import WorkloadGenerator
from repro.xmltree.serializer import serialize


def assert_same_synopsis(built, reference):
    assert (
        built.encoding_table.all_paths() == reference.encoding_table.all_paths()
    )
    assert built.pathid_table == reference.pathid_table
    assert built.order_table == reference.order_table
    assert built.labeled.distinct_pathids() == reference.labeled.distinct_pathids()


@pytest.fixture(
    scope="module",
    params=["figure1", "ssplays_small", "dblp_small", "xmark_small"],
)
def dataset(request):
    document = request.getfixturevalue(request.param)
    return document, serialize(document), EstimationSystem.build(document)


class TestStreamingEquivalence:
    def test_streaming_build_matches_tree_build(self, dataset):
        _, text, reference = dataset
        assert_same_synopsis(build_synopsis(text), reference)

    def test_sharded_build_matches_tree_build(self, dataset):
        _, text, reference = dataset
        builder = SynopsisBuilder(workers=4, shard_bytes=max(1, len(text) // 7))
        assert_same_synopsis(builder.from_text(text), reference)

    def test_workload_estimates_identical(self, dataset):
        document, text, reference = dataset
        streamed = build_synopsis(text)
        sharded = build_synopsis(text, workers=3, shard_bytes=max(1, len(text) // 5))
        workload = WorkloadGenerator(document, seed=7).full_workload(40, 40, 40)
        queries = workload.simple + workload.branch + workload.order_branch
        assert queries
        for item in queries:
            expected = reference.estimate(item.text)
            assert streamed.estimate(item.text) == expected
            assert sharded.estimate(item.text) == expected

    def test_random_contiguous_splits_are_identical(self, dataset):
        """Any grouping of the root's children into contiguous document-order
        shards reduces to the same synopsis."""
        _, text, reference = dataset
        try:
            root_tag, shards = split_text(text, shard_count=6)
        except Exception:
            pytest.skip("document cannot be sharded")
        rng = random.Random(13)
        for _ in range(4):
            # Re-cut the shard list at random boundaries (still contiguous).
            pieces = []
            pool = list(shards)
            while pool:
                take = rng.randint(1, len(pool))
                pieces.append("".join(pool[:take]))
                pool = pool[take:]
            builder = SynopsisBuilder()
            assert_same_synopsis(
                builder.from_shards(pieces, root_tag), reference
            )


class TestSingleShardAndPrefix:
    def test_single_partial_whole_document(self, figure1):
        text = serialize(figure1)
        tables = merge_partials([scan_text(text)])
        reference = EstimationSystem.build(figure1)
        assert tables.encoding_table.all_paths() == reference.encoding_table.all_paths()
        assert tables.pathid_table == reference.pathid_table
        assert tables.order_table == reference.order_table
        assert tables.element_count == len(figure1)

    def test_element_count_matches_document(self, ssplays_small):
        text = serialize(ssplays_small)
        assert merge_partials([scan_text(text)]).element_count == len(ssplays_small)
        builder = SynopsisBuilder(workers=2, shard_bytes=max(1, len(text) // 3))
        assert builder.collect_text(text).element_count == len(ssplays_small)
