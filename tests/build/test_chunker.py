"""The chunker: lexical outlining and contiguous span grouping."""

from __future__ import annotations

import pytest

from repro.build.chunker import group_spans, outline, split_text
from repro.errors import BuildError
from repro.xmltree.parser import XmlParseError, parse_xml


class TestOutline:
    def test_finds_root_and_child_spans(self):
        text = "<r><a><b/></a><c/></r>"
        parsed = outline(text)
        assert parsed.root_tag == "r"
        assert [text[s:e] for s, e in parsed.spans] == ["<a><b/></a>", "<c/>"]

    def test_prolog_and_trailing_misc(self):
        text = '<?xml version="1.0"?><!-- pre --><r><a/></r><!-- post -->'
        parsed = outline(text)
        assert parsed.root_tag == "r"
        assert len(parsed.spans) == 1

    def test_comments_between_children_excluded(self):
        text = "<r><!-- x --><a/>text<b/><!-- y --></r>"
        parsed = outline(text)
        assert [text[s:e] for s, e in parsed.spans] == ["<a/>", "<b/>"]

    def test_childless_root(self):
        assert outline("<r/>").spans == []
        assert outline("<r>only text</r>").spans == []

    def test_attribute_with_angle_bracket(self):
        text = '<r><a x="</a>"><b/></a><c/></r>'
        parsed = outline(text)
        assert [text[s:e] for s, e in parsed.spans] == ['<a x="</a>"><b/></a>', "<c/>"]

    def test_malformed_document_raises(self):
        with pytest.raises(XmlParseError):
            outline("<r><a/>")
        with pytest.raises(XmlParseError):
            outline("<r></s>")
        with pytest.raises(XmlParseError):
            outline("no markup")


class TestSplitText:
    def test_split_covers_all_children(self):
        text = "<r>" + "".join("<a>%d</a>" % i for i in range(10)) + "</r>"
        root_tag, shards = split_text(text, shard_count=3)
        assert root_tag == "r"
        assert len(shards) == 3
        # Re-parsing the concatenated shards yields every child.
        rejoined = parse_xml("<r>" + "".join(shards) + "</r>")
        assert len(rejoined.root.children) == 10

    def test_shard_bytes_bounds_shard_size(self):
        child = "<a>xxxxxxxx</a>"
        text = "<r>" + child * 50 + "</r>"
        _, shards = split_text(text, shard_bytes=4 * len(child))
        assert all(len(shard) <= 4 * len(child) for shard in shards)
        assert sum(shard.count("<a>") for shard in shards) == 50

    def test_oversized_child_becomes_own_shard(self):
        text = "<r><a>" + "y" * 100 + "</a><b/><c/></r>"
        _, shards = split_text(text, shard_bytes=10)
        assert shards[0].startswith("<a>") and shards[0].endswith("</a>")
        assert shards[1:] == ["<b/><c/>"]

    def test_requires_some_limit(self):
        with pytest.raises(BuildError):
            split_text("<r><a/></r>")

    def test_childless_root_is_unshardable(self):
        with pytest.raises(BuildError):
            split_text("<r>text only</r>", shard_count=2)


class TestGroupSpans:
    def test_balanced_grouping_is_contiguous_and_complete(self):
        spans = [(i * 10, i * 10 + 10) for i in range(7)]
        groups = group_spans(spans, shard_count=3)
        assert [span for group in groups for span in group] == spans
        assert len(groups) == 3

    def test_count_larger_than_spans(self):
        spans = [(0, 5), (5, 9)]
        groups = group_spans(spans, shard_count=10)
        assert [span for group in groups for span in group] == spans

    def test_empty(self):
        assert group_spans([], shard_count=4) == []
