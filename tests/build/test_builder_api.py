"""SynopsisBuilder / build_synopsis dispatch, knobs and failure modes."""

from __future__ import annotations

import pathlib

import pytest

from repro.build import SynopsisBuilder, build_synopsis
from repro.core.system import EstimationSystem
from repro.errors import BuildError, ParseError
from repro.xmltree.parser import parse_xml
from repro.xmltree.serializer import serialize

TEXT = "<R><A><B/><C/></A><A><B/></A><D>x</D></R>"


class TestDispatch:
    def test_text_source(self):
        assert build_synopsis(TEXT).estimate("//A/$B") == 2.0

    def test_leading_whitespace_text(self):
        assert build_synopsis("\n  " + TEXT).estimate("//A/$B") == 2.0

    def test_path_source(self, tmp_path):
        target = tmp_path / "doc.xml"
        target.write_text(TEXT, encoding="utf-8")
        system = build_synopsis(str(target))
        assert system.estimate("//A/$B") == 2.0
        assert system.name == "doc"

    def test_pathlike_source(self, tmp_path):
        target = tmp_path / "doc.xml"
        target.write_text(TEXT, encoding="utf-8")
        assert build_synopsis(pathlib.Path(target)).estimate("//A/$B") == 2.0

    def test_document_source(self):
        document = parse_xml(TEXT)
        assert build_synopsis(document).estimate("//A/$B") == 2.0

    def test_name_is_kept(self):
        assert build_synopsis(TEXT, name="toy").name == "toy"

    def test_missing_file_is_build_error(self):
        with pytest.raises(BuildError):
            build_synopsis("no/such/file.xml")

    def test_unsupported_type_is_build_error(self):
        with pytest.raises(BuildError):
            build_synopsis(42)

    def test_malformed_text_is_parse_error(self):
        with pytest.raises(ParseError):
            build_synopsis("<R><A></R>")


class TestKnobs:
    def test_workers_must_be_positive(self):
        with pytest.raises(BuildError):
            SynopsisBuilder(workers=0)
        with pytest.raises(BuildError):
            SynopsisBuilder(shard_bytes=0)

    def test_variances_forwarded(self, ssplays_small):
        text = serialize(ssplays_small)
        loose = build_synopsis(text, p_variance=1e9, o_variance=1e9)
        exact = build_synopsis(text)
        assert len(loose.path_provider.tags()) == len(exact.path_provider.tags())

    def test_no_histograms_mode(self):
        system = build_synopsis(TEXT, use_histograms=False)
        assert system.estimate("//A/$B") == 2.0

    def test_no_binary_tree(self):
        assert build_synopsis(TEXT, build_binary_tree=False).binary_tree is None
        assert build_synopsis(TEXT).binary_tree is not None

    def test_workers_do_not_change_result_on_tiny_doc(self):
        serial = build_synopsis(TEXT)
        parallel = build_synopsis(TEXT, workers=8, shard_bytes=4)
        assert parallel.pathid_table == serial.pathid_table
        assert parallel.order_table == serial.order_table

    def test_unshardable_doc_falls_back_to_single_scan(self):
        text = "<R><Only><B/><C/></Only></R>"
        serial = build_synopsis(text)
        parallel = build_synopsis(text, workers=4, shard_bytes=2)
        assert parallel.pathid_table == serial.pathid_table


class TestEstimationSystemBuildFacade:
    def test_build_accepts_text(self):
        system = EstimationSystem.build(TEXT)
        assert system.estimate("//A/$B") == 2.0

    def test_build_accepts_path(self, tmp_path):
        target = tmp_path / "doc.xml"
        target.write_text(TEXT, encoding="utf-8")
        assert EstimationSystem.build(str(target), workers=2).estimate("//A/$B") == 2.0

    def test_build_document_unchanged(self):
        document = parse_xml(TEXT)
        system = EstimationSystem.build(document)
        assert system.labeled.document is document

    def test_depth_refined_requires_document(self):
        with pytest.raises(BuildError):
            EstimationSystem.build(TEXT, depth_refined=True, use_histograms=False)

    def test_from_statistics_derives_distinct_pids(self):
        reference = build_synopsis(TEXT)
        rebuilt = EstimationSystem.from_statistics(
            reference.encoding_table,
            reference.pathid_table,
            reference.order_table,
        )
        assert rebuilt.estimate("//A/$B") == reference.estimate("//A/$B")
        assert (
            rebuilt.labeled.distinct_pathids() == reference.labeled.distinct_pathids()
        )
