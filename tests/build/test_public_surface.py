"""The ``repro`` package surface: ``__all__``, shims, error hierarchy."""

from __future__ import annotations

import warnings

import pytest

import repro
from repro.errors import (
    BuildError,
    ParseError,
    PersistError,
    QuerySyntaxError,
    ReproError,
    error_kind,
)


class TestAll:
    def test_all_is_the_documented_surface(self):
        assert set(repro.__all__) == {
            "EstimateResult",
            "EstimationSystem",
            "SynopsisBuilder",
            "build_synopsis",
            "parse_xml",
            "parse_query",
            "ReproError",
            "ParseError",
            "QuerySyntaxError",
            "PersistError",
            "BuildError",
            "ObservabilityError",
            "__version__",
        }

    def test_all_names_resolve_without_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            for name in repro.__all__:
                assert getattr(repro, name) is not None

    def test_star_import_matches_all(self):
        namespace = {}
        exec("from repro import *", namespace)
        assert set(repro.__all__) - {"__version__"} <= set(namespace)


class TestDeprecatedShims:
    SHIMS = ["XmlDocument", "XmlNode", "Evaluator", "Query", "explain", "EstimateReport"]

    @pytest.mark.parametrize("name", SHIMS)
    def test_legacy_name_warns_then_resolves(self, name):
        repro.__dict__.pop(name, None)  # undo the warn-once cache
        with pytest.warns(DeprecationWarning, match=name):
            value = getattr(repro, name)
        assert value is not None
        # Cached now: no second warning.
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert getattr(repro, name) is value

    def test_shims_resolve_to_canonical_objects(self):
        from repro.core.explain import explain
        from repro.xmltree.document import XmlDocument

        repro.__dict__.pop("XmlDocument", None)
        repro.__dict__.pop("explain", None)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert repro.XmlDocument is XmlDocument
            assert repro.explain is explain

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.does_not_exist

    def test_dir_lists_legacy_names(self):
        listing = dir(repro)
        for name in self.SHIMS:
            assert name in listing


class TestErrorHierarchy:
    def test_kinds(self):
        assert ReproError.kind == "error"
        assert ParseError.kind == "parse"
        assert QuerySyntaxError.kind == "query_syntax"
        assert PersistError.kind == "persist"
        assert BuildError.kind == "build"

    def test_subclass_relationships(self):
        for cls in (ParseError, QuerySyntaxError, PersistError, BuildError):
            assert issubclass(cls, ReproError)
            assert issubclass(cls, ValueError)

    def test_concrete_errors_join_the_hierarchy(self):
        from repro.persist import SynopsisLoadError
        from repro.xmltree.parser import XmlParseError
        from repro.xpath.parser import XPathSyntaxError

        assert issubclass(XmlParseError, ParseError)
        assert issubclass(XPathSyntaxError, QuerySyntaxError)
        assert issubclass(SynopsisLoadError, PersistError)

    def test_error_kind_helper(self):
        assert error_kind(BuildError("x")) == "build"
        assert error_kind(ValueError("x")) == "internal"

    def test_parse_and_query_errors_raised_through_public_api(self):
        with pytest.raises(ParseError):
            repro.parse_xml("<a><b></a>")
        with pytest.raises(QuerySyntaxError):
            repro.parse_query("//[[")
