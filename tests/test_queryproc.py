"""Tests for the structural-join processor (reference [8] pipeline)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.transform import UnsupportedQueryError
from repro.queryproc import IntervalIndex, StructuralJoinProcessor
from repro.queryproc.structural import (
    ancestors_with_descendant,
    children_with_parent,
    descendants_with_ancestor,
    parents_with_child,
)
from repro.workload import WorkloadGenerator
from repro.xmltree.builder import el
from repro.xmltree.document import XmlDocument
from repro.xpath import Evaluator, parse_query


@pytest.fixture(scope="module")
def processor(figure1):
    return StructuralJoinProcessor(figure1)


class TestSemijoinPrimitives:
    @pytest.fixture(scope="class")
    def index(self, figure1):
        return IntervalIndex(figure1)

    def test_descendants_with_ancestor(self, index, figure1):
        a_pres = [n.pre for n in figure1.nodes_with_tag("A")]
        e_pres = [n.pre for n in figure1.nodes_with_tag("E")]
        kept = descendants_with_ancestor(index, e_pres, a_pres)
        assert kept == e_pres  # every E is under an A

    def test_ancestors_with_descendant(self, index, figure1):
        a_pres = [n.pre for n in figure1.nodes_with_tag("A")]
        f_pres = [n.pre for n in figure1.nodes_with_tag("F")]
        kept = ancestors_with_descendant(index, a_pres, f_pres)
        assert len(kept) == 1  # only one A has an F below

    def test_parent_child_primitives(self, index, figure1):
        b_pres = [n.pre for n in figure1.nodes_with_tag("B")]
        d_pres = [n.pre for n in figure1.nodes_with_tag("D")]
        assert children_with_parent(index, d_pres, b_pres) == d_pres
        assert parents_with_child(index, b_pres, d_pres) == b_pres

    def test_empty_sides(self, index, figure1):
        pres = [n.pre for n in figure1.nodes_with_tag("A")]
        assert descendants_with_ancestor(index, pres, []) == []
        assert ancestors_with_descendant(index, pres, []) == []


class TestExactness:
    @pytest.mark.parametrize(
        "text",
        [
            "//A", "/Root/A", "//A/B", "//A//E", "//A[/C/F]/B/$D",
            "//C[/$E]/F", "//A[/B][/C]", "/Root//D", "//F/E",
        ],
    )
    def test_matches_evaluator_on_figure1(self, processor, figure1, text):
        query = parse_query(text)
        expected = Evaluator(figure1).matching_pres(query, query.target)
        for use_path_ids in (True, False):
            got = processor.matching_pres(query, use_path_ids=use_path_ids)
            assert set(got) == expected

    def test_scoped_axes_rejected(self, processor):
        with pytest.raises(UnsupportedQueryError):
            processor.count(parse_query("//A[/C/foll::D]"))

    @pytest.mark.parametrize(
        "text",
        [
            "//A[/C/folls::$B]",
            "//A[/C[/F]/folls::$B/D]",
            "//A[/C[/F]/folls::B/$D]",
            "//$A[/C[/F]/folls::B/D]",
            "//A[/$B/pres::C]",
            "//A[/F/folls::E]",
        ],
    )
    def test_sibling_order_axes_exact(self, processor, figure1, text):
        query = parse_query(text)
        expected = Evaluator(figure1).matching_pres(query, query.target)
        for use_path_ids in (True, False):
            got = processor.matching_pres(query, use_path_ids=use_path_ids)
            assert set(got) == expected

    def test_order_workload_equality(self, ssplays_small):
        processor = StructuralJoinProcessor(ssplays_small)
        generator = WorkloadGenerator(ssplays_small, seed=33)
        branch_items, trunk_items = generator.order_queries(80)
        for item in branch_items + trunk_items:
            assert processor.count(item.query) == item.actual

    def test_workload_equality(self, ssplays_small):
        processor = StructuralJoinProcessor(ssplays_small)
        evaluator = Evaluator(ssplays_small)
        generator = WorkloadGenerator(ssplays_small, seed=21)
        items = generator.simple_queries(60) + generator.branch_queries(60)
        for item in items:
            assert processor.count(item.query) == item.actual
            assert processor.count(item.query, use_path_ids=False) == item.actual

    def test_recursive_document_equality(self, xmark_small):
        processor = StructuralJoinProcessor(xmark_small)
        evaluator = Evaluator(xmark_small)
        for text in ("//parlist/listitem//$text", "//listitem/parlist/$listitem",
                     "//item[/mailbox]/description//$keyword"):
            query = parse_query(text)
            expected = evaluator.selectivity(query)
            assert processor.count(query) == expected
            assert processor.count(query, use_path_ids=False) == expected


class TestPathIdPruning:
    def test_pruning_shrinks_join_inputs(self, ssplays_small):
        processor = StructuralJoinProcessor(ssplays_small)
        query = parse_query("//ACT[/PROLOGUE]/SCENE/SPEECH")
        processor.matching_pres(query, use_path_ids=False)
        unpruned = processor.last_candidate_count
        processor.matching_pres(query, use_path_ids=True)
        pruned = processor.last_candidate_count
        assert pruned <= unpruned

    def test_negative_query_short_circuits(self, processor):
        query = parse_query("//F/E")
        assert processor.matching_pres(query, use_path_ids=True) == []
        assert processor.last_candidate_count == 0


class TestRandomizedEquality:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_random_docs_and_queries(self, seed):
        rng = random.Random(seed)
        # Small recursive-capable random document.
        tags = "wxyz"

        def grow(node, depth):
            if depth > 3:
                return
            for _ in range(rng.randint(0, 3)):
                grow(node.append(el(rng.choice(tags))), depth + 1)

        root = el("r")
        grow(root, 1)
        document = XmlDocument(root)
        processor = StructuralJoinProcessor(document)
        evaluator = Evaluator(document)
        generator = WorkloadGenerator(document, seed=seed)
        items = generator.simple_queries(10) + generator.branch_queries(10)
        order_branch, order_trunk = generator.order_queries(10)
        for item in items + order_branch + order_trunk:
            assert processor.count(item.query) == evaluator.selectivity(item.query)
