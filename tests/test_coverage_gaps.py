"""Direct unit tests for helpers that were only covered indirectly."""

import random

import pytest

from repro.cli import build_parser
from repro.core.system import EstimationSystem
from repro.datasets._text import (
    person_name,
    pick_count,
    sentence,
    title_text,
    words,
    year,
)
from repro.harness import SystemFactory
from repro.histograms.equiwidth import EquiCountPHistogramSet
from repro.histograms.ohistogram import OHistogramSet
from repro.histograms.phistogram import PHistogramSet
from repro.queryproc import IntervalIndex
from repro.queryproc.structural import (
    count_candidates_in_range,
    siblings_ordered_after,
    siblings_ordered_before,
)
from repro.stats import collect_path_order, collect_pathid_frequencies
from repro.stats.path_order import TagOrderGrid, scan_sibling_group
from repro.xmltree.builder import el
from repro.xmltree.document import XmlDocument, document_from_root
from repro.xpath.ast import QueryAxis


class TestQueryAxisProperties:
    def test_partition(self):
        structural = {a for a in QueryAxis if a.is_structural}
        sibling = {a for a in QueryAxis if a.is_sibling_order}
        scoped = {a for a in QueryAxis if a.is_scoped_order}
        assert structural == {QueryAxis.CHILD, QueryAxis.DESCENDANT}
        assert sibling == {QueryAxis.FOLLS, QueryAxis.PRES}
        assert scoped == {QueryAxis.FOLL, QueryAxis.PRE}
        assert not (structural & sibling) and not (sibling & scoped)

    def test_forward(self):
        assert QueryAxis.FOLLS.is_forward and QueryAxis.FOLL.is_forward
        assert not QueryAxis.PRES.is_forward and not QueryAxis.PRE.is_forward


class TestDocumentHelpers:
    def test_document_from_root(self):
        document = document_from_root(el("r", el("a")), name="n")
        assert document.name == "n" and len(document) == 2

    def test_renumber_after_mutation(self):
        document = XmlDocument(el("r", el("a")))
        document.root.append(el("b"))
        document.renumber()
        assert [n.tag for n in document] == ["r", "a", "b"]
        assert document.tag_count("b") == 1


class TestTextHelpers:
    def test_deterministic(self):
        a, b = random.Random(1), random.Random(1)
        assert words(a, 2, 5) == words(b, 2, 5)
        assert person_name(a) == person_name(b)

    def test_sentence_shape(self):
        text = sentence(random.Random(2))
        assert text.endswith(".") and text[0].isupper()

    def test_title_text_title_case(self):
        assert title_text(random.Random(3)).istitle()

    def test_year_range(self):
        value = int(year(random.Random(4), 1990, 1999))
        assert 1990 <= value <= 1999

    def test_pick_count_respects_weights(self):
        rng = random.Random(5)
        draws = {pick_count(rng, [0, 1, 0]) for _ in range(50)}
        assert draws == {1}

    def test_pick_count_distribution_support(self):
        rng = random.Random(6)
        draws = {pick_count(rng, [1, 1, 1]) for _ in range(200)}
        assert draws == {0, 1, 2}


class TestScanSiblingGroup:
    def test_shared_scanner_matches_collector(self, figure1_labeled):
        from_table = collect_path_order(figure1_labeled)
        grids = {}

        def grid_for(tag):
            return grids.setdefault(tag, TagOrderGrid(tag))

        pathids = figure1_labeled.pathids
        for parent in figure1_labeled.document:
            scan_sibling_group(parent.children, lambda n: pathids[n.pre], grid_for)
        for tag in from_table.tags():
            assert grids[tag].region(True) == from_table.grid(tag).region(True)
            assert grids[tag].region(False) == from_table.grid(tag).region(False)

    def test_short_groups_noop(self):
        called = []
        scan_sibling_group([el("only")], lambda n: 1, lambda t: called.append(t))
        assert called == []


class TestHistogramAccessors:
    def test_column_and_row_maps(self, figure1_labeled):
        freq = collect_pathid_frequencies(figure1_labeled)
        order = collect_path_order(figure1_labeled)
        phist = PHistogramSet.from_table(freq, 0)
        ohist = OHistogramSet.from_table(order, phist, 0)
        histogram = ohist.histogram("B", "ele+")
        cols = histogram.column_map()
        rows = histogram.row_map()
        assert 0b1000 in cols and "C" in rows
        # Returned maps are copies.
        cols.clear()
        assert histogram.column_map()

    def test_matching_budget(self, figure1_labeled):
        freq = collect_pathid_frequencies(figure1_labeled)
        reference = PHistogramSet.from_table(freq, 1)
        budget = EquiCountPHistogramSet.matching_budget(reference)
        assert budget == {
            tag: reference.histogram(tag).bucket_count for tag in reference.tags()
        }


class TestSiblingSemijoins:
    @pytest.fixture()
    def setup(self):
        document = XmlDocument(
            el("r", el("g", el("a"), el("b"), el("a")), el("g", el("b"), el("a")))
        )
        index = IntervalIndex(document)
        a = [n.pre for n in document.nodes_with_tag("a")]
        b = [n.pre for n in document.nodes_with_tag("b")]
        return index, a, b

    def test_after(self, setup):
        index, a, b = setup
        # a's with an earlier b sibling: second a of g1, the a of g2.
        assert len(siblings_ordered_after(index, a, b)) == 2

    def test_before(self, setup):
        index, a, b = setup
        # a's with a later b sibling: first a of g1 only.
        assert len(siblings_ordered_before(index, a, b)) == 1

    def test_empty_anchors(self, setup):
        index, a, _ = setup
        assert siblings_ordered_after(index, a, []) == []

    def test_count_candidates_in_range(self, setup):
        index, a, _ = setup
        document = index.document
        g1 = document.root.children[0]
        count = count_candidates_in_range(
            index, a, index.starts[g1.pre], index.ends[g1.pre]
        )
        assert count == 2  # both a's of the first group


class TestFromTables:
    def test_equivalent_to_build(self, figure1):
        factory = SystemFactory(figure1)
        via_tables = EstimationSystem.from_tables(
            factory.labeled, factory.pathid_table, factory.order_table,
            p_variance=0, o_variance=0,
        )
        direct = EstimationSystem.build(figure1, p_variance=0, o_variance=0)
        for text in ("//A/B", "//C[/$E]/F", "//A[/C[/F]/folls::$B/D]"):
            assert via_tables.estimate(text) == pytest.approx(direct.estimate(text))


class TestCliParser:
    def test_build_parser_commands(self):
        parser = build_parser()
        args = parser.parse_args(["stats", "--dataset", "SSPlays"])
        assert args.command == "stats" and callable(args.handler)
        args = parser.parse_args(
            ["estimate", "--dataset", "DBLP", "//a", "--p-variance", "2"]
        )
        assert args.p_variance == 2.0
