"""Tests for the synthetic dataset generators (Table 1 calibration)."""

import pytest

from repro.datasets import generate, generate_dblp, generate_ssplays, generate_xmark
from repro.datasets.dblp import DBLP_TAGS
from repro.datasets.registry import DATASET_NAMES, dataset_stats_row
from repro.datasets.ssplays import SSPLAYS_TAGS
from repro.datasets.xmark import XMARK_TAGS
from repro.xmltree.stats import document_stats


class TestTagInventories:
    def test_declared_sizes(self):
        assert len(SSPLAYS_TAGS) == 21
        assert len(DBLP_TAGS) == 31
        assert len(XMARK_TAGS) == 74

    def test_ssplays_emits_full_inventory(self):
        doc = generate_ssplays(scale=1.0, seed=1)
        assert set(doc.distinct_tags) == set(SSPLAYS_TAGS)

    def test_dblp_emits_full_inventory(self):
        doc = generate_dblp(scale=0.5, seed=1)
        assert set(doc.distinct_tags) == set(DBLP_TAGS)

    def test_xmark_emits_full_inventory(self):
        doc = generate_xmark(scale=1.0, seed=1)
        assert set(doc.distinct_tags) == set(XMARK_TAGS)


class TestDeterminismAndScaling:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_same_seed_same_document(self, name):
        a = generate(name, scale=0.1)
        b = generate(name, scale=0.1)
        assert len(a) == len(b)
        assert [n.tag for n in a] == [n.tag for n in b]

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_different_seed_differs(self, name):
        a = generate(name, scale=0.1, seed=1)
        b = generate(name, scale=0.1, seed=2)
        assert [n.tag for n in a] != [n.tag for n in b]

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_scale_roughly_linear(self, name):
        small = len(generate(name, scale=0.1))
        large = len(generate(name, scale=0.4))
        assert 2.0 < large / small < 8.0

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            generate("unknown")


class TestShapes:
    def test_dblp_is_shallow_and_wide(self, dblp_small):
        stats = document_stats(dblp_small, include_size=False)
        assert stats.max_depth == 2
        assert stats.max_fanout > 100  # the record group under the root

    def test_xmark_is_path_rich(self, xmark_small):
        stats = document_stats(xmark_small, include_size=False)
        assert stats.distinct_paths > 100
        assert stats.max_depth >= 8  # parlist/listitem recursion

    def test_ssplays_is_regular(self, ssplays_small):
        stats = document_stats(ssplays_small, include_size=False)
        assert stats.distinct_paths < 60
        assert stats.max_depth == 5

    def test_relative_sizes_mirror_table1(self):
        sizes = {name: len(generate(name, scale=0.25)) for name in DATASET_NAMES}
        assert sizes["DBLP"] > sizes["XMark"] > sizes["SSPlays"] * 0.5

    def test_stats_row(self):
        row = dataset_stats_row("SSPlays", scale=0.1)
        assert row["dataset"] == "ssplays"
        # A single play may miss rare tags (INDUCT/EPILOGUE are optional);
        # the full inventory is asserted at scale 1.0 above.
        assert 18 <= row["#distinct_eles"] <= 21
