"""Tests for the temporal (intro-motivated) dataset."""

import pytest

from repro.core.system import EstimationSystem
from repro.datasets import generate, generate_temporal
from repro.datasets.temporal import TEMPORAL_TAGS
from repro.harness.metrics import relative_error
from repro.workload import WorkloadGenerator
from repro.xmltree.stats import document_stats
from repro.xpath import Evaluator, parse_query


@pytest.fixture(scope="module")
def archive():
    return generate_temporal(scale=0.3, seed=2)


class TestShape:
    def test_tag_inventory(self):
        document = generate_temporal(scale=1.0, seed=1)
        assert set(document.distinct_tags) == set(TEMPORAL_TAGS)
        assert len(TEMPORAL_TAGS) == 18

    def test_registry_lookup(self):
        assert generate("Temporal", scale=0.1).root.tag == "archive"

    def test_chronology_in_sibling_order(self, archive):
        # Within every contract: signed precedes every revision, and
        # revisions are ordered by their seq attribute.
        for contract in archive.nodes_with_tag("contract"):
            kinds = [child.tag for child in contract.children]
            if "signed" in kinds and "revision" in kinds:
                assert kinds.index("signed") < kinds.index("revision")
            seqs = [
                int(child.attributes["seq"])
                for child in contract.children
                if child.tag == "revision"
            ]
            assert seqs == sorted(seqs)

    def test_shallow_stats(self, archive):
        stats = document_stats(archive, include_size=False)
        assert stats.max_depth == 4
        assert stats.distinct_paths < 30


class TestOrderQueries:
    """The dataset's raison d'être: time-as-sibling-order queries."""

    @pytest.mark.parametrize(
        "text,meaning",
        [
            ("//contract[/signed/folls::$revision]", "revisions after signing"),
            ("//contract[/$revision/folls::dispute]", "revisions before a dispute"),
            ("//contract[/dispute/folls::$settlement]", "settlements after a dispute"),
            ("//contract[/$revision/folls::expiry]", "revisions before expiry"),
        ],
    )
    def test_estimates_track_truth(self, archive, text, meaning):
        system = EstimationSystem.build(archive, p_variance=0, o_variance=0)
        query = parse_query(text)
        actual = Evaluator(archive).selectivity(query)
        assert actual > 0, meaning
        estimate = system.estimate(query)
        assert relative_error(estimate, actual) < 0.25, meaning

    def test_workload_generation_works(self, archive):
        generator = WorkloadGenerator(archive, seed=5)
        workload = generator.full_workload(80, 80, 80)
        assert workload.table2_row()["with_order"] > 0
