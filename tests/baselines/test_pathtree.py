"""Tests for the path-tree (DataGuide) baseline."""

import pytest

from repro.baselines import PathTree
from repro.core.transform import UnsupportedQueryError
from repro.xpath import Evaluator, parse_query


@pytest.fixture(scope="module")
def tree(figure1):
    return PathTree.build(figure1)


class TestBuild:
    def test_node_count_figure1(self, tree):
        # Path types: Root, Root/A, Root/A/B, Root/A/B/D, Root/A/B/E,
        # Root/A/C, Root/A/C/E, Root/A/C/F.
        assert len(tree) == 8

    def test_counts_per_path_type(self, tree):
        assert tree.count_at("Root") == 1
        assert tree.count_at("Root/A") == 3
        assert tree.count_at("Root/A/B") == 4
        assert tree.count_at("Root/A/B/D") == 4
        assert tree.count_at("Root/A/C/E") == 2
        assert tree.count_at("Root/Z") == 0
        assert tree.count_at("X") == 0


class TestEstimation:
    @pytest.mark.parametrize(
        "text",
        ["//A", "//B", "//A/B", "//A//E", "/Root/A/C", "//C/F", "/Root//D"],
    )
    def test_simple_queries_exact(self, tree, figure1, text):
        query = parse_query(text)
        actual = Evaluator(figure1).selectivity(query)
        assert tree.estimate(query) == pytest.approx(float(actual))

    def test_branch_schema_existence_overestimates(self, tree, figure1):
        # //C[/E]/$F: the path tree cannot separate C instances, but the
        # estimate must still be an upper bound of the truth here.
        query = parse_query("//C[/E]/$F")
        actual = Evaluator(figure1).selectivity(query)
        assert tree.estimate(query) >= actual

    def test_order_axes_rejected(self, tree):
        with pytest.raises(UnsupportedQueryError):
            tree.estimate(parse_query("//A[/B/folls::C]"))

    def test_size_positive(self, tree):
        assert tree.size_bytes() == len(tree) * 8


class TestOnDataset(object):
    def test_simple_exactness_holds_at_scale(self, dblp_small):
        tree = PathTree.build(dblp_small)
        evaluator = Evaluator(dblp_small)
        for text in ("//article/author", "//dblp/book", "//inproceedings//cite"):
            query = parse_query(text)
            assert tree.estimate(query) == pytest.approx(
                float(evaluator.selectivity(query))
            )
