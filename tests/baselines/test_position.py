"""Tests for the position-histogram baseline [16]."""

import pytest

from repro.baselines.position import PositionHistogram
from repro.xmltree.intervals import interval_labeling
from repro.core.transform import UnsupportedQueryError
from repro.xmltree.builder import el
from repro.xmltree.document import XmlDocument
from repro.xpath import Evaluator, parse_query


@pytest.fixture(scope="module")
def histogram(ssplays_small):
    return PositionHistogram(ssplays_small, grid=12)


class TestIntervalLabeling:
    def test_nesting(self, figure1):
        starts, ends, top = interval_labeling(figure1)
        for node in figure1:
            assert starts[node.pre] < ends[node.pre] <= top
            for child in node.children:
                assert starts[node.pre] < starts[child.pre]
                assert ends[child.pre] < ends[node.pre]

    def test_siblings_disjoint(self, figure1):
        starts, ends, _ = interval_labeling(figure1)
        for node in figure1:
            for left, right in zip(node.children, node.children[1:]):
                assert ends[left.pre] < starts[right.pre]


class TestConstruction:
    def test_totals(self, histogram, ssplays_small):
        for tag in ("PLAY", "SPEECH", "LINE"):
            assert histogram.total(tag) == ssplays_small.tag_count(tag)

    def test_invalid_grid(self, ssplays_small):
        with pytest.raises(ValueError):
            PositionHistogram(ssplays_small, grid=0)

    def test_size_grows_with_grid(self, ssplays_small):
        coarse = PositionHistogram(ssplays_small, grid=2)
        fine = PositionHistogram(ssplays_small, grid=32)
        assert coarse.size_bytes() <= fine.size_bytes()


class TestEstimation:
    def test_single_tag_exact(self, histogram, ssplays_small):
        assert histogram.estimate(parse_query("//LINE")) == pytest.approx(
            float(ssplays_small.tag_count("LINE"))
        )

    def test_absolute_root(self, histogram):
        assert histogram.estimate(parse_query("/PLAYS/PLAY")) > 0
        assert histogram.estimate(parse_query("/PLAY")) == 0.0

    def test_descendant_step_reasonable(self, histogram, ssplays_small):
        query = parse_query("//PLAY//SPEAKER")
        actual = float(Evaluator(ssplays_small).selectivity(query))
        assert histogram.estimate(query) == pytest.approx(actual, rel=0.5)

    def test_child_treated_as_descendant(self, histogram):
        # The documented limitation: / and // estimates coincide.
        child = histogram.estimate(parse_query("//PLAY/TITLE"))
        descendant = histogram.estimate(parse_query("//PLAY//TITLE"))
        assert child == pytest.approx(descendant)

    def test_branch_factor_bounded(self, histogram):
        plain = histogram.estimate(parse_query("//SCENE//SPEECH"))
        branched = histogram.estimate(parse_query("//SCENE[//SUBHEAD]//SPEECH"))
        assert 0 <= branched <= plain + 1e-9

    def test_missing_tags(self, histogram):
        assert histogram.estimate(parse_query("//NOPE//X")) == 0.0

    def test_order_rejected(self, histogram):
        with pytest.raises(UnsupportedQueryError):
            histogram.estimate(parse_query("//ACT[/SCENE/folls::SCENE]"))

    def test_finer_grid_not_worse_on_average(self, ssplays_small):
        queries = [
            parse_query(text)
            for text in ("//PLAY//SPEECH", "//ACT//LINE", "//SCENE//SPEAKER",
                          "//PLAY//STAGEDIR")
        ]
        evaluator = Evaluator(ssplays_small)
        actuals = [float(evaluator.selectivity(q)) for q in queries]

        def error(grid):
            histogram = PositionHistogram(ssplays_small, grid=grid)
            return sum(
                abs(histogram.estimate(q) - a) / a
                for q, a in zip(queries, actuals) if a
            )

        assert error(24) <= error(2) + 1e-6
