"""Tests for the Markov path model baseline."""

import pytest

from repro.baselines import MarkovPathModel
from repro.core.transform import UnsupportedQueryError
from repro.xpath import Evaluator, parse_query


@pytest.fixture(scope="module")
def model(ssplays_small):
    return MarkovPathModel.build(ssplays_small, order=2)


class TestBuild:
    def test_tag_counts(self, model, ssplays_small):
        assert model.tag_counts["PLAY"] == ssplays_small.tag_count("PLAY")

    def test_fragment_lengths_bounded(self, model):
        assert max(len(path) for path in model.path_counts) <= 2

    def test_order3_has_triples(self, ssplays_small):
        model3 = MarkovPathModel.build(ssplays_small, order=3)
        assert any(len(path) == 3 for path in model3.path_counts)

    def test_descendant_pairs_counted_once_per_pair(self, model, ssplays_small):
        # (PLAYS, PLAY): every PLAY is counted once.
        assert model.descendant_counts[("PLAYS", "PLAY")] == ssplays_small.tag_count("PLAY")

    def test_invalid_order(self, ssplays_small):
        with pytest.raises(ValueError):
            MarkovPathModel.build(ssplays_small, order=0)


class TestEstimation:
    def test_single_tag(self, model, ssplays_small):
        assert model.estimate(parse_query("//LINE")) == pytest.approx(
            float(ssplays_small.tag_count("LINE"))
        )

    def test_child_pair_exact_for_order2(self, model, ssplays_small):
        # A length-2 chain is stored exactly.
        query = parse_query("//ACT/SCENE")
        actual = Evaluator(ssplays_small).selectivity(query)
        assert model.estimate(query) == pytest.approx(float(actual))

    def test_longer_chain_is_markov_estimate(self, model, ssplays_small):
        query = parse_query("//PLAY/ACT/SCENE/SPEECH")
        actual = float(Evaluator(ssplays_small).selectivity(query))
        estimate = model.estimate(query)
        assert estimate > 0
        # The Markov assumption holds well on this regular schema.
        assert estimate == pytest.approx(actual, rel=0.35)

    def test_descendant_step(self, model, ssplays_small):
        query = parse_query("//PLAY//SPEAKER")
        actual = float(Evaluator(ssplays_small).selectivity(query))
        assert model.estimate(query) == pytest.approx(actual, rel=0.25)

    def test_missing_path_gives_zero(self, model):
        assert model.estimate(parse_query("//LINE/ACT")) == 0.0

    def test_order_axes_rejected(self, model):
        with pytest.raises(UnsupportedQueryError):
            model.estimate(parse_query("//ACT[/SCENE/folls::SCENE]"))

    def test_branch_factor_at_most_one(self, model):
        plain = model.estimate(parse_query("//SCENE/SPEECH"))
        branched = model.estimate(parse_query("//SCENE[/TITLE]/SPEECH"))
        assert 0 <= branched <= plain + 1e-9


class TestSize:
    def test_size_grows_with_order(self, ssplays_small):
        sizes = [
            MarkovPathModel.build(ssplays_small, order=k).size_bytes()
            for k in (1, 2, 3)
        ]
        assert sizes == sorted(sizes)
