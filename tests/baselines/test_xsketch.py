"""Tests for the XSketch-style graph synopsis."""

import pytest

from repro.baselines import XSketch
from repro.core.transform import UnsupportedQueryError
from repro.xpath import Evaluator, parse_query


@pytest.fixture(scope="module")
def sketch(ssplays_small):
    return XSketch.build(ssplays_small, budget_bytes=4096)


class TestBuild:
    def test_counts_cover_document(self, sketch, ssplays_small):
        assert sum(sketch.counts.values()) == len(ssplays_small)

    def test_edges_cover_parent_child_pairs(self, sketch, ssplays_small):
        assert sum(sketch.edges.values()) == len(ssplays_small) - 1

    def test_budget_controls_size(self, ssplays_small):
        small = XSketch.build(ssplays_small, budget_bytes=400)
        large = XSketch.build(ssplays_small, budget_bytes=8192)
        assert small.size_bytes() <= large.size_bytes()
        assert len(small.counts) <= len(large.counts)

    def test_label_split_base(self, ssplays_small):
        base = XSketch.build(ssplays_small, budget_bytes=0)
        labels = {key[0] for key in base.counts}
        assert len(base.counts) == len(labels)  # one cluster per tag

    def test_refinement_happens_with_budget(self, ssplays_small):
        base = XSketch.build(ssplays_small, budget_bytes=0)
        refined = XSketch.build(ssplays_small, budget_bytes=8192)
        assert len(refined.counts) > len(base.counts)


class TestEstimation:
    def test_root_count(self, sketch):
        assert sketch.estimate(parse_query("//PLAYS")) == pytest.approx(1.0)

    def test_tag_counts_exact(self, sketch, ssplays_small):
        for tag in ("PLAY", "ACT", "SPEECH"):
            query = parse_query("//%s" % tag)
            assert sketch.estimate(query) == pytest.approx(
                float(ssplays_small.tag_count(tag))
            )

    def test_stable_chain_exact(self, sketch, ssplays_small):
        # ACT/SCENE is backward-stable: every SCENE under an ACT.
        query = parse_query("//ACT/SCENE")
        actual = Evaluator(ssplays_small).selectivity(query)
        assert sketch.estimate(query) == pytest.approx(float(actual), rel=0.05)

    def test_descendant_step(self, sketch, ssplays_small):
        query = parse_query("//PLAY//SPEAKER")
        actual = Evaluator(ssplays_small).selectivity(query)
        assert sketch.estimate(query) == pytest.approx(float(actual), rel=0.2)

    def test_absolute_root(self, sketch):
        assert sketch.estimate(parse_query("/PLAYS/PLAY")) > 0
        assert sketch.estimate(parse_query("/PLAY")) == 0.0

    def test_branch_factor_bounded(self, sketch):
        plain = sketch.estimate(parse_query("//SCENE/SPEECH"))
        filtered = sketch.estimate(parse_query("//SCENE[/STAGEDIR]/SPEECH"))
        assert 0 < filtered <= plain * 1.0001

    def test_unknown_tag(self, sketch):
        assert sketch.estimate(parse_query("//NOPE/X")) == 0.0

    def test_order_axes_rejected(self, sketch):
        with pytest.raises(UnsupportedQueryError):
            sketch.estimate(parse_query("//ACT[/SCENE/folls::EPILOGUE]"))


class TestAccuracyImprovesWithBudget(object):
    def test_refinement_reduces_error(self, ssplays_small):
        queries = [
            parse_query(text)
            for text in ("//PLAY/ACT/SCENE/SPEECH/LINE", "//PERSONAE/PGROUP/PERSONA",
                          "//ACT/SCENE/STAGEDIR", "//SCENE/SPEECH/SPEAKER")
        ]
        evaluator = Evaluator(ssplays_small)
        actuals = [float(evaluator.selectivity(q)) for q in queries]

        def mean_error(sketch):
            errors = []
            for query, actual in zip(queries, actuals):
                if actual:
                    errors.append(abs(sketch.estimate(query) - actual) / actual)
            return sum(errors) / len(errors)

        coarse = XSketch.build(ssplays_small, budget_bytes=0)
        fine = XSketch.build(ssplays_small, budget_bytes=16384)
        assert mean_error(fine) <= mean_error(coarse) + 1e-9
