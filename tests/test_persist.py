"""Tests for synopsis persistence."""

import json

import pytest

from repro import EstimationSystem
from repro.persist import (
    PersistError,
    SynopsisLoadError,
    dumps,
    load,
    loads,
    save,
    system_from_dict,
    system_to_dict,
)

QUERIES = [
    "//A/B",
    "//A//$C",
    "//C[/$E]/F",
    "//A[/C/F]/B/$D",
    "//A[/C[/F]/folls::$B/D]",
    "//A[/C[/F]/folls::B/$D]",
    "//$A[/C[/F]/folls::B/D]",
    "//A[/C/foll::$D]",
    "//F/E",
]


@pytest.fixture(scope="module")
def system(figure1):
    return EstimationSystem.build(figure1, p_variance=0, o_variance=0)


class TestRoundTrip:
    def test_estimates_identical(self, system):
        restored = loads(dumps(system))
        for text in QUERIES:
            assert restored.estimate(text) == pytest.approx(system.estimate(text))

    def test_roundtrip_with_lossy_histograms(self, ssplays_small):
        original = EstimationSystem.build(ssplays_small, p_variance=2, o_variance=4)
        restored = loads(dumps(original))
        for text in ("//PLAY/ACT/$SCENE", "//SCENE[/TITLE]/$SPEECH",
                     "//SPEECH[/$LINE/folls::STAGEDIR]"):
            assert restored.estimate(text) == pytest.approx(original.estimate(text))

    def test_file_roundtrip(self, system, tmp_path):
        path = str(tmp_path / "synopsis.json")
        save(system, path)
        restored = load(path)
        assert restored.estimate("//A/B") == pytest.approx(system.estimate("//A/B"))

    def test_payload_is_plain_json(self, system):
        payload = json.loads(dumps(system))
        assert payload["format_version"] == 1
        assert "Root/A/B/D" in payload["paths"]

    def test_dict_roundtrip_stable(self, system):
        once = system_to_dict(system)
        twice = system_to_dict(system_from_dict(once))
        assert once == twice


class TestErrors:
    def test_exact_mode_not_persistable(self, figure1):
        exact = EstimationSystem.build(figure1, use_histograms=False)
        with pytest.raises(SynopsisLoadError):
            system_to_dict(exact)

    def test_version_check(self, system):
        payload = system_to_dict(system)
        payload["format_version"] = 99
        with pytest.raises(SynopsisLoadError):
            system_from_dict(payload)

    def test_malformed_payload(self):
        with pytest.raises(SynopsisLoadError):
            system_from_dict({"format_version": 1, "paths": ["a"]})

    def test_synopsis_load_error_is_persist_error(self):
        assert issubclass(SynopsisLoadError, PersistError)
        assert issubclass(PersistError, ValueError)

    def test_absent_version(self, system):
        payload = system_to_dict(system)
        del payload["format_version"]
        with pytest.raises(PersistError, match="no format_version"):
            system_from_dict(payload)

    def test_non_dict_payload(self):
        with pytest.raises(PersistError, match="JSON object"):
            system_from_dict(["not", "a", "dict"])

    def test_loads_rejects_invalid_json(self):
        with pytest.raises(PersistError, match="not valid JSON"):
            loads("{broken")

    def test_loads_rejects_non_object_json(self):
        with pytest.raises(PersistError, match="JSON object"):
            loads("[1, 2, 3]")

    def test_corrupt_field_types(self, system):
        payload = system_to_dict(system)
        payload["p_histograms"] = {"A": {"buckets": [{"pids": ["zz"], "avg": 1}]}}
        with pytest.raises(PersistError, match="malformed synopsis"):
            system_from_dict(payload)


class TestLoadedSystemShape:
    def test_no_document_artifacts(self, system):
        restored = loads(dumps(system))
        assert restored.binary_tree is None
        assert restored.pathid_table.tags() == []
        sizes = restored.summary_sizes()
        assert sizes["p_histogram"] > 0 and sizes["o_histogram"] > 0
