"""Tests for the stitched reproduction report."""

import pytest

from repro.cli import main
from repro.harness.report import (
    PREFERRED_ORDER,
    build_report,
    collect_results,
    ordered_names,
    write_report,
)


@pytest.fixture()
def results_dir(tmp_path):
    (tmp_path / "table1_datasets.txt").write_text("T1 CONTENT", encoding="utf-8")
    (tmp_path / "fig9_memory.txt").write_text("F9 CONTENT", encoding="utf-8")
    (tmp_path / "zz_custom.txt").write_text("EXTRA", encoding="utf-8")
    (tmp_path / "notes.md").write_text("ignored", encoding="utf-8")
    return str(tmp_path)


class TestCollect:
    def test_reads_only_txt(self, results_dir):
        results = collect_results(results_dir)
        assert set(results) == {"table1_datasets", "fig9_memory", "zz_custom"}
        assert results["table1_datasets"] == "T1 CONTENT"

    def test_missing_directory(self):
        assert collect_results("/nonexistent/dir") == {}


class TestOrdering:
    def test_paper_order_then_extras(self, results_dir):
        names = ordered_names(collect_results(results_dir))
        assert names == ["table1_datasets", "fig9_memory", "zz_custom"]

    def test_preferred_order_covers_all_bench_modules(self):
        import glob
        import os

        bench_names = {
            os.path.basename(path)[len("bench_"):-3]
            for path in glob.glob("benchmarks/bench_*.py")
        }
        # Every bench module's result name appears in the preferred order
        # (result names match the module suffixes by convention).
        unmatched = [
            name for name in bench_names
            if not any(name.startswith(p.split("_")[0]) or p.startswith(name.split("_")[0])
                       for p in PREFERRED_ORDER)
        ]
        assert not unmatched


class TestBuild:
    def test_report_contains_sections(self, results_dir):
        text = build_report(results_dir)
        assert "REPRODUCTION REPORT" in text
        assert "T1 CONTENT" in text and "EXTRA" in text
        assert "Missing experiments" in text  # most benches not present

    def test_empty_directory_message(self, tmp_path):
        text = build_report(str(tmp_path))
        assert "No results found" in text

    def test_write_report(self, results_dir, tmp_path):
        output = str(tmp_path / "out.txt")
        text = write_report(results_dir, output=output)
        assert open(output, encoding="utf-8").read().strip() == text.strip()


class TestCliIntegration:
    def test_report_subcommand(self, results_dir, tmp_path, capsys):
        output = str(tmp_path / "rep.txt")
        code = main(["report", "--results-dir", results_dir, "--output", output])
        assert code == 0
        assert "report written" in capsys.readouterr().out
        assert "T1 CONTENT" in open(output, encoding="utf-8").read()

    def test_report_to_stdout(self, results_dir, capsys):
        main(["report", "--results-dir", results_dir])
        assert "T1 CONTENT" in capsys.readouterr().out
