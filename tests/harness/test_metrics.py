"""Tests for the accuracy metrics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.harness.metrics import ErrorSummary, average_relative_error, relative_error


class TestRelativeError:
    def test_exact_is_zero(self):
        assert relative_error(5, 5) == 0.0

    def test_overestimate(self):
        assert relative_error(15, 10) == pytest.approx(0.5)

    def test_underestimate_symmetric(self):
        assert relative_error(5, 10) == pytest.approx(0.5)

    def test_zero_actual_rejected(self):
        with pytest.raises(ValueError):
            relative_error(1, 0)

    @given(st.floats(min_value=0, max_value=1e9), st.floats(min_value=0.1, max_value=1e9))
    def test_nonnegative(self, est, act):
        assert relative_error(est, act) >= 0


class TestAverage:
    def test_empty(self):
        assert average_relative_error([]) == 0.0

    def test_mixed(self):
        pairs = [(10, 10), (20, 10), (5, 10)]
        assert average_relative_error(pairs) == pytest.approx((0 + 1 + 0.5) / 3)


class TestSummary:
    def test_empty_summary(self):
        summary = ErrorSummary.from_errors([])
        assert summary.count == 0 and summary.mean == 0.0

    def test_odd_median(self):
        summary = ErrorSummary.from_errors([0.1, 0.5, 0.9])
        assert summary.median == 0.5

    def test_even_median(self):
        summary = ErrorSummary.from_errors([0.1, 0.3, 0.5, 0.7])
        assert summary.median == pytest.approx(0.4)

    def test_percentiles_ordered(self):
        errors = [i / 100 for i in range(100)]
        summary = ErrorSummary.from_errors(errors)
        assert summary.median <= summary.p90 <= summary.maximum

    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=80))
    def test_summary_bounds(self, errors):
        summary = ErrorSummary.from_errors(errors)
        assert min(errors) - 1e-9 <= summary.mean <= max(errors) + 1e-9
        assert summary.maximum == max(errors)
        assert summary.count == len(errors)

    def test_str_contains_fields(self):
        text = str(ErrorSummary.from_errors([0.25]))
        assert "mean=0.25" in text and "n=1" in text
