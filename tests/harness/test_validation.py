"""Tests for the self-check validator."""

import pytest

from repro.cli import main
from repro.harness.validation import ValidationReport, validate_document
from repro.xmltree.builder import el, paper_figure1_document
from repro.xmltree.document import XmlDocument


class TestReport:
    def test_record_and_ok(self):
        report = ValidationReport()
        report.record("a", True)
        assert report.ok
        report.record("b", False, "boom")
        assert not report.ok
        rendered = report.render()
        assert "[ok] a" in rendered and "[FAIL] b" in rendered and "boom" in rendered


class TestValidateDocuments:
    @pytest.mark.parametrize(
        "document_fixture",
        ["figure1", "ssplays_small", "dblp_small", "xmark_small"],
    )
    def test_all_checks_pass(self, document_fixture, request):
        document = request.getfixturevalue(document_fixture)
        report = validate_document(document, sample_queries=10)
        assert report.ok, report.render()

    def test_tiny_document(self):
        report = validate_document(XmlDocument(el("r", el("a"), el("a"))))
        assert report.ok, report.render()

    def test_check_inventory(self, figure1):
        report = validate_document(figure1, sample_queries=5)
        assert "theorem-4.1-spot-check" in report.checks
        assert "order-table-matches-evaluator" in report.checks
        assert len(report.checks) == 9


class TestCliValidate:
    def test_cli_exit_zero_on_pass(self, tmp_path, capsys):
        from repro.xmltree.serializer import serialize

        path = tmp_path / "doc.xml"
        path.write_text(serialize(paper_figure1_document()), encoding="utf-8")
        code = main(["validate", "--file", str(path)])
        assert code == 0
        assert "0 failures" in capsys.readouterr().out
