"""Tests for the ASCII chart renderer."""

import pytest

from repro.harness.figures import render_chart, render_series_chart


class TestRenderChart:
    def test_empty(self):
        assert "(no data)" in render_chart({})
        assert render_chart({}, title="T").startswith("T")

    def test_contains_glyphs_and_legend(self):
        text = render_chart(
            {"up": [(0, 0), (1, 1)], "down": [(0, 1), (1, 0)]},
            width=20,
            height=8,
        )
        assert "o up" in text and "x down" in text
        assert "o" in text.splitlines()[0] or any("o" in line for line in text.splitlines())

    def test_axis_labels(self):
        text = render_chart(
            {"s": [(1, 2), (3, 4)]}, x_label="memory", y_label="error", title="T"
        )
        assert text.startswith("T")
        assert "x: memory" in text and "y: error" in text

    def test_extreme_corners_plotted(self):
        text = render_chart({"s": [(0, 0), (10, 5)]}, width=30, height=10)
        lines = [line for line in text.splitlines() if "|" in line]
        # Max y in the top plot row, min y in the bottom plot row.
        assert "o" in lines[0]
        assert "o" in lines[-1]

    def test_single_point(self):
        text = render_chart({"s": [(2, 3)]})
        assert "o" in text

    def test_collision_marker(self):
        text = render_chart(
            {"a": [(0, 0)], "b": [(0, 0)]}, width=10, height=5
        )
        assert "?" in text

    def test_y_range_labels(self):
        text = render_chart({"s": [(0, 0.25), (1, 0.75)]}, width=10, height=5)
        assert "0.75" in text and "0.25" in text


class TestRenderSeriesChart:
    def test_wrapper_equivalent(self):
        direct = render_chart({"s": [(1, 2), (3, 4)]}, width=12, height=6)
        wrapped = render_series_chart({"s": ([1, 3], [2, 4])}, width=12, height=6)
        assert direct == wrapped

    def test_monotone_curve_shape(self):
        xs = list(range(10))
        ys = [9 - x for x in xs]
        text = render_series_chart({"falling": (xs, ys)}, width=20, height=10)
        rows = [line.split("|", 1)[1] for line in text.splitlines() if "|" in line]
        first_cols = [row.index("o") for row in rows if "o" in row]
        # Glyph positions move rightwards as we go down the chart.
        assert first_cols == sorted(first_cols)
