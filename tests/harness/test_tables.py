"""Tests for table rendering and the results registry."""

import os

from repro.harness.tables import (
    clear_results,
    format_table,
    record_result,
    rendered_results,
)


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "n"], [["a", 1], ["long-name", 23]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "long-name" in lines[-1]
        widths = {len(line) for line in lines if line and not line.startswith("-")}
        assert len(widths) == 1  # every row padded to equal width

    def test_title(self):
        text = format_table(["x"], [[1]], title="Table 1")
        assert text.splitlines()[0] == "Table 1"

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text


class TestRegistry:
    def test_record_and_render(self, tmp_path):
        clear_results()
        record_result("t1", "hello", results_dir=str(tmp_path))
        record_result("t2", "world", results_dir=str(tmp_path))
        rendered = rendered_results()
        assert "t1" in rendered and "hello" in rendered
        assert rendered.index("t1") < rendered.index("t2")
        assert (tmp_path / "t1.txt").read_text().strip() == "hello"
        clear_results()
        assert rendered_results() == ""

    def test_env_var_directory(self, tmp_path, monkeypatch):
        clear_results()
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "envdir"))
        record_result("t3", "via-env")
        assert (tmp_path / "envdir" / "t3.txt").exists()
        clear_results()
