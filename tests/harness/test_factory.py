"""Tests for the cached system factory."""

import pytest

from repro.core.system import EstimationSystem
from repro.harness import SystemFactory


@pytest.fixture(scope="module")
def factory(ssplays_small):
    return SystemFactory(ssplays_small)


class TestCaching:
    def test_same_variances_same_instance(self, factory):
        assert factory.system(0, 2) is factory.system(0, 2)

    def test_different_variances_different_instances(self, factory):
        assert factory.system(0, 0) is not factory.system(1, 0)

    def test_shared_collected_tables(self, factory):
        a = factory.system(0, 0)
        b = factory.system(5, 5)
        assert a.pathid_table is b.pathid_table
        assert a.order_table is b.order_table
        assert a.binary_tree is b.binary_tree


class TestEquivalenceWithDirectBuild(object):
    def test_matches_estimation_system_build(self, factory, ssplays_small):
        direct = EstimationSystem.build(ssplays_small, p_variance=1, o_variance=3)
        cached = factory.system(1, 3)
        for text in ("//PLAY/ACT/$SCENE", "//SCENE[/TITLE]/$SPEECH",
                     "//PLAY[/ACT/folls::$EPILOGUE]"):
            assert cached.estimate(text) == pytest.approx(direct.estimate(text))

    def test_sizes_match(self, factory, ssplays_small):
        direct = EstimationSystem.build(ssplays_small, p_variance=2, o_variance=2)
        cached = factory.system(2, 2)
        assert cached.summary_sizes() == direct.summary_sizes()
