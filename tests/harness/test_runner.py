"""Tests for the sweep runner."""

import pytest

from repro.harness.runner import (
    evaluate_estimator,
    memory_series,
    sweep_o_variance,
    sweep_p_variance,
    system_estimator,
)
from repro.core.system import EstimationSystem
from repro.workload import WorkloadGenerator


@pytest.fixture(scope="module")
def small_env(ssplays_small):
    gen = WorkloadGenerator(ssplays_small, seed=2)
    workload = gen.simple_queries(60) + gen.branch_queries(60)
    return ssplays_small, workload


class TestEvaluate:
    def test_exact_system_on_simple_queries(self, small_env):
        document, workload = small_env
        simple_only = [w for w in workload if w.kind == "simple"]
        system = EstimationSystem.build(document, p_variance=0)
        summary = evaluate_estimator(system_estimator(system), simple_only)
        assert summary.mean == pytest.approx(0.0, abs=1e-9)
        assert summary.count == len(simple_only)


class TestSweeps:
    def test_p_variance_memory_monotone(self, small_env):
        document, workload = small_env
        points = sweep_p_variance(document, workload, variances=[0, 2, 8])
        memories = [p.memory_bytes for p in points]
        assert memories == sorted(memories, reverse=True)
        assert all(p.summary.count == len(workload) for p in points)

    def test_error_grows_with_variance_overall(self, small_env):
        document, workload = small_env
        points = sweep_p_variance(document, workload, variances=[0, 10])
        assert points[0].mean_error <= points[-1].mean_error + 1e-9

    def test_o_variance_sweep_shapes(self, small_env, ssplays_small):
        gen = WorkloadGenerator(ssplays_small, seed=5)
        order_branch, _ = gen.order_queries(80)
        points = sweep_o_variance(
            ssplays_small, order_branch[:25], p_variance=0, o_variances=[0, 4]
        )
        memories = [p.memory_bytes for p in points]
        assert memories == sorted(memories, reverse=True)
        assert points[0].label == "p-histo.v=0"

    def test_memory_series_keys(self, ssplays_small):
        series = memory_series(ssplays_small, variances=[0, 5])
        assert set(series) == {"p_histogram", "o_histogram"}
        assert series["p_histogram"][0] >= series["p_histogram"][1]

    def test_accuracy_point_properties(self, small_env):
        document, workload = small_env
        point = sweep_p_variance(document, workload[:10], variances=[1])[0]
        assert point.memory_kb == pytest.approx(point.memory_bytes / 1024.0)
        assert point.mean_error == point.summary.mean
