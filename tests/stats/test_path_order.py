"""Tests for the Path-Order table (Figure 2(b))."""

from repro.pathenc import label_document
from repro.stats import collect_path_order
from repro.xmltree.builder import el
from repro.xmltree.document import XmlDocument


class TestFigure2b:
    def test_b_versus_c(self, figure1_labeled, pid):
        table = collect_path_order(figure1_labeled)
        grid = table.grid("B")
        # Example 3.2: one B(p5) before C, two B(p5) after C.
        assert grid.g_before(pid[5], "C") == 1
        assert grid.g_after(pid[5], "C") == 2

    def test_totals_are_not_symmetric_in_general(self):
        # Existential per-element counts are asymmetric: in the group
        # "a b b" one element precedes a b (the a... and the first b),
        # but *two* b's follow an a plus one b follows a b.
        from repro.pathenc import label_document
        from repro.xmltree.builder import el
        from repro.xmltree.document import XmlDocument

        labeled = label_document(XmlDocument(el("r", el("a"), el("b"), el("b"))))
        table = collect_path_order(labeled)
        total_before = sum(
            sum(grid.region(True).values()) for grid in table.iter_grids()
        )
        total_after = sum(
            sum(grid.region(False).values()) for grid in table.iter_grids()
        )
        assert total_before == 2  # a-before-b, b-before-b
        assert total_after == 3   # two b-after-a, one b-after-b

    def test_counts_match_evaluator(self, figure1_labeled, figure1):
        # The correct invariant: summed g_before(X, Y) equals the exact
        # count of X elements with a following Y sibling.
        from repro.xpath import Evaluator, parse_query

        table = collect_path_order(figure1_labeled)
        evaluator = Evaluator(figure1)
        for x_tag, y_tag in (("B", "C"), ("C", "B"), ("D", "E"), ("E", "D")):
            grid = table.grid(x_tag)
            total = sum(grid.g_before(pid, y_tag) for pid in grid.column_pids())
            query = parse_query("//$%s/folls::%s" % (x_tag, y_tag))
            assert total == evaluator.selectivity(query)

    def test_empty_cells_are_zero(self, figure1_labeled, pid):
        table = collect_path_order(figure1_labeled)
        assert table.grid("B").g_before(pid[8], "F") == 0
        assert table.grid("nosuch").g_after(pid[1], "B") == 0


class TestCountingSemantics:
    def build(self, *children):
        labeled = label_document(XmlDocument(el("r", *children)))
        return collect_path_order(labeled), labeled

    def test_counted_once_per_direction(self):
        # a x a x a: middle 'a' has x on both sides -> counted in both
        # regions; per the paper's note it appears in each region once.
        table, labeled = self.build(el("a"), el("x"), el("a"), el("x"), el("a"))
        grid = table.grid("a")
        a_pid = labeled.pathids[1]
        assert grid.g_before(a_pid, "x") == 2  # first and middle a
        assert grid.g_after(a_pid, "x") == 2   # middle and last a

    def test_multiple_same_siblings_counted_once(self):
        # a followed by three x's: the a is still counted once.
        table, labeled = self.build(el("a"), el("x"), el("x"), el("x"))
        a_pid = labeled.pathids[1]
        assert table.grid("a").g_before(a_pid, "x") == 1

    def test_same_tag_pairs(self):
        table, labeled = self.build(el("a"), el("a"), el("a"))
        a_pid = labeled.pathids[1]
        grid = table.grid("a")
        assert grid.g_before(a_pid, "a") == 2
        assert grid.g_after(a_pid, "a") == 2

    def test_singleton_groups_produce_nothing(self):
        table, _ = self.build(el("only", el("deep")))
        assert table.grid("only").nonzero_cell_count() == 0
        assert table.grid("deep").nonzero_cell_count() == 0

    def test_grid_rows_and_columns(self):
        table, labeled = self.build(el("a"), el("x"), el("b"))
        grid = table.grid("x")
        assert grid.row_tags() == ["a", "b"]
        assert grid.column_pids() == [labeled.pathids[2]]


class TestOnDatasets:
    def test_dblp_has_big_order_tables(self, dblp_small):
        labeled = label_document(dblp_small)
        table = collect_path_order(labeled)
        # The wide sibling groups of DBLP must produce substantial order
        # data (the Section 7.1 observation).
        assert table.total_nonzero_cells() > 50
        assert "author" in table.tags()

    def test_lookup_consistency(self, ssplays_small):
        labeled = label_document(ssplays_small)
        table = collect_path_order(labeled)
        for grid in table.iter_grids():
            for (cell_pid, other), count in grid.region(True).items():
                assert count > 0
                assert grid.g_before(cell_pid, other) == count
