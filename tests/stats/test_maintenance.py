"""Incremental maintenance == rebuild from scratch, on every structure."""

import random

import pytest

from repro.datasets import generate_dblp
from repro.stats.maintenance import MaintainedStatistics, RequiresRebuild
from repro.xmltree.builder import el
from repro.xmltree.document import XmlDocument
from repro.xmltree.node import XmlNode


def clone_subtree(node: XmlNode) -> XmlNode:
    copy = XmlNode(node.tag, dict(node.attributes), node.text)
    for child in node.children:
        copy.append(clone_subtree(child))
    return copy


def assert_equivalent_to_rebuild(maintained: MaintainedStatistics) -> None:
    rebuilt = MaintainedStatistics(maintained.document)
    # pid arrays
    assert maintained.labeled.pathids == rebuilt.labeled.pathids
    # frequency tables
    for tag in rebuilt.pathid_table.tags():
        assert maintained.pathid_table.pairs(tag) == rebuilt.pathid_table.pairs(tag)
    assert maintained.pathid_table.tags() == rebuilt.pathid_table.tags()
    # order tables
    assert maintained.order_table.tags() == rebuilt.order_table.tags()
    for tag in rebuilt.order_table.tags():
        ours = maintained.order_table.grid(tag)
        theirs = rebuilt.order_table.grid(tag)
        assert ours.region(True) == theirs.region(True)
        assert ours.region(False) == theirs.region(False)


class TestAppendRecord:
    def make(self):
        root = el(
            "lib",
            el("rec", el("author"), el("title")),
            el("rec", el("author"), el("author"), el("title")),
        )
        return MaintainedStatistics(XmlDocument(root))

    def test_append_known_shape(self):
        maintained = self.make()
        new_record = el("rec", el("author"), el("title"))
        maintained.append_subtree(maintained.document.root, new_record)
        assert len(maintained.document) == 11  # 8 original + 3 appended
        assert_equivalent_to_rebuild(maintained)

    def test_append_deep_position(self):
        maintained = self.make()
        first_record = maintained.document.root.children[0]
        maintained.append_subtree(first_record, el("author"))
        assert_equivalent_to_rebuild(maintained)

    def test_multiple_appends(self):
        maintained = self.make()
        for _ in range(4):
            maintained.append_subtree(
                maintained.document.root, el("rec", el("author"), el("title"))
            )
        assert_equivalent_to_rebuild(maintained)

    def test_new_path_type_rejected_without_mutation(self):
        maintained = self.make()
        before = len(maintained.document)
        with pytest.raises(RequiresRebuild):
            maintained.append_subtree(
                maintained.document.root, el("rec", el("isbn"))
            )
        assert len(maintained.document) == before

    def test_subtree_not_under_parent_coverage_rejected(self):
        maintained = self.make()
        # 'author' exists under rec, not directly under lib/rec/title...
        title = maintained.document.root.children[0].children[1]
        with pytest.raises(RequiresRebuild):
            maintained.append_subtree(title, el("author"))

    def test_attached_subtree_rejected(self):
        maintained = self.make()
        existing = maintained.document.root.children[0].children[0]
        with pytest.raises(ValueError):
            maintained.append_subtree(maintained.document.root, existing)


class TestOnDataset:
    def test_randomized_appends_match_rebuild(self):
        document = generate_dblp(scale=0.01, seed=5)
        maintained = MaintainedStatistics(document)
        rng = random.Random(3)
        records = [node for node in document if node.parent is document.root]
        for _ in range(5):
            template = rng.choice(records)
            maintained.append_subtree(document.root, clone_subtree(template))
        assert_equivalent_to_rebuild(maintained)

    def test_estimates_reflect_appends(self):
        from repro.core.providers import ExactPathStats
        from repro.core.noorder import estimate_no_order
        from repro.xpath import parse_query

        document = generate_dblp(scale=0.01, seed=5)
        maintained = MaintainedStatistics(document)
        query = parse_query("//dblp/article/$author")
        provider = ExactPathStats(maintained.pathid_table)
        before = estimate_no_order(query, provider, maintained.labeled.encoding_table)
        articles = [n for n in document if n.tag == "article"]
        maintained.append_subtree(document.root, clone_subtree(articles[0]))
        provider = ExactPathStats(maintained.pathid_table)
        after = estimate_no_order(query, provider, maintained.labeled.encoding_table)
        assert after > before
