"""Tests for the depth-refined statistics extension."""

import pytest

from repro.core.noorder import estimate_no_order
from repro.core.providers import ExactPathStats
from repro.pathenc import label_document
from repro.stats import collect_pathid_frequencies
from repro.stats.depth_refined import DepthRefinedPathStats
from repro.workload import WorkloadGenerator
from repro.xmltree.builder import el
from repro.xmltree.document import XmlDocument
from repro.xpath import Evaluator, parse_query


@pytest.fixture(scope="module")
def chain_doc():
    # r/x/x/y plus r/x/x/x/y: same-tag chains whose (tag, pid) groups mix
    # depths — the case plain statistics cannot split.
    root = el(
        "r",
        el("x", el("x", el("y"))),
        el("x", el("x", el("x", el("y")))),
    )
    return XmlDocument(root)


class TestCollection:
    def test_totals_match_plain_table(self, xmark_small):
        labeled = label_document(xmark_small)
        plain = collect_pathid_frequencies(labeled)
        refined = DepthRefinedPathStats.collect(labeled)
        for tag in plain.tags():
            assert refined.frequency_map(tag) == {
                pid: float(freq) for pid, freq in plain.pairs(tag)
            }

    def test_depth_split(self, chain_doc):
        labeled = label_document(chain_doc)
        refined = DepthRefinedPathStats.collect(labeled)
        depth_map = refined.depth_frequency_map("x")
        all_depths = {d for per in depth_map.values() for d in per}
        assert all_depths == {1, 2, 3}

    def test_extra_entries_zero_without_recursion(self, dblp_small):
        labeled = label_document(dblp_small)
        refined = DepthRefinedPathStats.collect(labeled)
        assert refined.extra_entries() == 0  # depth-unique schema

    def test_extra_entries_positive_with_recursion(self, xmark_small):
        labeled = label_document(xmark_small)
        refined = DepthRefinedPathStats.collect(labeled)
        assert refined.extra_entries() > 0


class TestEstimation:
    def test_resolves_chain_ambiguity(self, chain_doc):
        labeled = label_document(chain_doc)
        plain = ExactPathStats(collect_pathid_frequencies(labeled))
        refined = DepthRefinedPathStats.collect(labeled)
        evaluator = Evaluator(chain_doc)
        table = labeled.encoding_table
        for text in ("//x/$x", "//x/x/$x", "/r/$x", "//x/x/$y"):
            query = parse_query(text)
            actual = float(evaluator.selectivity(query))
            refined_est = estimate_no_order(query, refined, table)
            assert refined_est == pytest.approx(actual), text

    def test_never_worse_than_plain_on_simple_queries(self, xmark_small):
        labeled = label_document(xmark_small)
        plain = ExactPathStats(collect_pathid_frequencies(labeled))
        refined = DepthRefinedPathStats.collect(labeled)
        items = WorkloadGenerator(xmark_small, seed=3).simple_queries(120)
        table = labeled.encoding_table

        def mean_error(provider):
            errors = [
                abs(estimate_no_order(i.query, provider, table) - i.actual) / i.actual
                for i in items
            ]
            return sum(errors) / len(errors)

        assert mean_error(refined) <= mean_error(plain) + 1e-9

    def test_identical_on_depth_unique_schema(self, ssplays_small):
        labeled = label_document(ssplays_small)
        plain = ExactPathStats(collect_pathid_frequencies(labeled))
        refined = DepthRefinedPathStats.collect(labeled)
        items = WorkloadGenerator(ssplays_small, seed=3).simple_queries(60)
        table = labeled.encoding_table
        for item in items[:30]:
            assert estimate_no_order(item.query, refined, table) == pytest.approx(
                estimate_no_order(item.query, plain, table)
            )
