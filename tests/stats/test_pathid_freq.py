"""Tests for the PathId-Frequency table (Figure 2(a))."""

from repro.pathenc import label_document
from repro.stats import collect_pathid_frequencies


class TestFigure2a:
    def test_exact_table(self, figure1_labeled, pid):
        table = collect_pathid_frequencies(figure1_labeled)
        assert table.pairs("A") == [(pid[6], 1), (pid[7], 1), (pid[8], 1)]
        assert table.pairs("B") == [(pid[5], 3), (pid[8], 1)]
        assert table.pairs("C") == [(pid[2], 1), (pid[3], 1)]
        assert table.pairs("D") == [(pid[5], 4)]
        assert table.pairs("E") == [(pid[2], 2), (pid[4], 1)]
        assert table.pairs("F") == [(pid[1], 1)]
        assert table.pairs("Root") == [(pid[9], 1)]

    def test_tags(self, figure1_labeled):
        table = collect_pathid_frequencies(figure1_labeled)
        assert table.tags() == ["A", "B", "C", "D", "E", "F", "Root"]
        assert "A" in table and "Z" not in table

    def test_unknown_tag_empty(self, figure1_labeled):
        table = collect_pathid_frequencies(figure1_labeled)
        assert table.pairs("nope") == []
        assert table.total_frequency("nope") == 0

    def test_total_frequency_matches_tag_count(self, figure1_labeled, figure1):
        table = collect_pathid_frequencies(figure1_labeled)
        for tag in table.tags():
            assert table.total_frequency(tag) == figure1.tag_count(tag)

    def test_frequency_map(self, figure1_labeled, pid):
        table = collect_pathid_frequencies(figure1_labeled)
        assert table.frequency_map("B") == {pid[5]: 3, pid[8]: 1}

    def test_distinct_pathid_count(self, figure1_labeled):
        table = collect_pathid_frequencies(figure1_labeled)
        assert table.distinct_pathid_count("A") == 3
        assert table.distinct_pathid_count("F") == 1


class TestOnDatasets:
    def test_totals_cover_document(self, dblp_small):
        labeled = label_document(dblp_small)
        table = collect_pathid_frequencies(labeled)
        total = sum(table.total_frequency(tag) for tag in table.tags())
        assert total == len(dblp_small)

    def test_iter_items_sorted(self, ssplays_small):
        labeled = label_document(ssplays_small)
        table = collect_pathid_frequencies(labeled)
        tags = [tag for tag, _ in table.iter_items()]
        assert tags == sorted(tags)
        for _, pairs in table.iter_items():
            pids = [p for p, _ in pairs]
            assert pids == sorted(pids)
