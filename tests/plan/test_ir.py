"""The plan IR: step drift math, wire shape, counters."""

from __future__ import annotations

import json

from repro.plan.ir import (
    PLAN_FORMAT_VERSION,
    Plan,
    PlannerStats,
    PlanStep,
)


def step(**overrides) -> PlanStep:
    base = dict(
        index=0, phase="up", axis="/", node_id=1, node_tag="A",
        partner_id=2, partner_tag="B",
        est_in=10.0, est_out=5.0, est_partner=5.0, est_cost=15.0,
    )
    base.update(overrides)
    return PlanStep(**base)


class TestPlanStep:
    def test_drift_is_none_before_execution(self):
        assert step().drift() is None

    def test_drift_is_symmetric_and_at_least_one(self):
        over = step(observed_in=10, observed_out=9, predicted_out=4.0)
        under = step(observed_in=10, observed_out=4, predicted_out=9.0)
        assert over.drift() == under.drift()
        assert step(observed_in=5, observed_out=5, predicted_out=5.0).drift() == 1.0

    def test_as_dict_adds_observed_fields_after_execution(self):
        planned = step().as_dict()
        assert "observed_in" not in planned and "drift" not in planned
        executed = step(
            observed_in=10, observed_out=5, observed_partner=5, predicted_out=5.0
        ).as_dict()
        assert executed["observed_out"] == 5
        assert executed["drift"] == 1.0

    def test_root_step_has_no_partner(self):
        payload = step(phase="root", axis="root", partner_id=None, partner_tag=None).as_dict()
        assert "partner" not in payload


class TestPlanWire:
    def plan(self, **overrides) -> Plan:
        base = dict(
            query_text="//A/$B",
            ordering="enumerated",
            steps=[step()],
            est_cost=15.0,
            naive_cost=20.0,
            est_cardinality=5.0,
            drift_threshold=3.0,
        )
        base.update(overrides)
        return Plan(**base)

    def test_versioned_and_json_serializable(self):
        payload = self.plan().as_dict()
        assert payload["version"] == PLAN_FORMAT_VERSION
        assert payload["ordering"] == "enumerated"
        json.dumps(payload)  # wire-safe

    def test_execution_fields_only_when_executed(self):
        assert "replans" not in self.plan().as_dict()
        ran = self.plan(executed=True, replans=1, replanned_at=[0], max_drift=4.0)
        payload = ran.as_dict()
        assert payload["replans"] == 1
        assert payload["replanned_at"] == [0]

    def test_reordered_means_cheaper_than_naive(self):
        assert self.plan().reordered  # 15 < 20
        assert not self.plan(est_cost=20.0).reordered
        assert not self.plan(ordering="naive").reordered

    def test_render_marks_replanned_steps(self):
        ran = self.plan(steps=[step(replanned=True)], executed=True)
        assert ran.render().splitlines()[1].startswith("*")


class TestPlannerStats:
    def test_record_and_snapshot(self):
        stats = PlannerStats()
        reordered = Plan("q", "enumerated", est_cost=1.0, naive_cost=2.0)
        naive = Plan("q", "naive")
        stats.record_plan(reordered)
        stats.record_plan(naive)
        ran = Plan("q", "enumerated", replans=2, max_drift=5.0)
        stats.record_execution(ran)
        snap = stats.snapshot()
        assert snap["plans"] == 2
        assert snap["naive_plans"] == 1
        assert snap["reordered_plans"] == 1
        assert snap["executions"] == 1
        assert snap["replans"] == 2
        assert snap["replanned_executions"] == 1
        assert snap["max_drift"] == 5.0
