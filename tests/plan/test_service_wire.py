"""The explain/execute verbs over the service wire: plan payload shape,
match counts vs direct execution, error mapping, and planner metrics.
"""

from __future__ import annotations

import json

import pytest

from repro.core.system import EstimationSystem
from repro.persist import system_from_dict, system_to_dict
from repro.plan.ir import PLAN_FORMAT_VERSION
from repro.queryproc import StructuralJoinProcessor
from repro.service import EstimationService, SynopsisRegistry
from repro.service.server import MAX_WIRE_MATCHES, RequestError
from repro.xpath.parser import parse_query

QUERY = "//A[/B]/$C"


@pytest.fixture()
def service(figure1):
    system = EstimationSystem.build(figure1, p_variance=0, o_variance=0)
    registry = SynopsisRegistry()
    registry.register("fig1", system)
    return EstimationService(registry), system, figure1


class TestExplainWire:
    def test_explain_returns_versioned_plan(self, service):
        svc, system, _ = service
        body = svc.handle_estimate(
            {"synopsis": "fig1", "query": QUERY, "explain": True}
        )
        plan = body["plan"]
        assert plan["version"] == PLAN_FORMAT_VERSION
        # The plan carries the canonical rendering ($-target implicit).
        assert plan["query"] == "//A[/B]/C"
        assert plan["steps"]
        assert "matches" not in body  # explain never executes
        json.dumps(body)  # wire-safe

    def test_explain_counts_in_planner_metrics(self, service):
        svc, _, _ = service
        svc.handle_estimate({"synopsis": "fig1", "query": QUERY, "explain": True})
        planner = svc.planner_document()
        assert planner["explains"] == 1
        assert planner["plans"] >= 1


class TestExecuteWire:
    def test_execute_matches_direct_processor(self, service):
        svc, _, figure1 = service
        body = svc.handle_estimate(
            {"synopsis": "fig1", "query": QUERY, "execute": True}
        )
        expected = set(
            StructuralJoinProcessor(figure1).matching_pres(parse_query(QUERY))
        )
        assert set(body["matches"]) == expected
        assert body["match_count"] == len(expected)
        assert body["matches_truncated"] is False
        assert len(expected) <= MAX_WIRE_MATCHES
        assert body["plan"]["executed"] is True
        json.dumps(body)

    def test_execute_feeds_slow_log_with_exact_actual(self, service):
        svc, _, figure1 = service
        body = svc.handle_estimate(
            {"synopsis": "fig1", "query": QUERY, "execute": True}
        )
        records = svc.slow_log.snapshot()["recent"]
        assert records
        # Executed requests report the exact match count as ground truth.
        assert records[-1]["actual"] == float(body["match_count"])

    def test_execute_counts_in_planner_metrics(self, service):
        svc, _, _ = service
        svc.handle_estimate({"synopsis": "fig1", "query": QUERY, "execute": True})
        planner = svc.planner_document()
        assert planner["served_executions"] == 1
        assert planner["executions"] >= 1


class TestWireErrors:
    def test_statistics_only_synopsis_maps_to_409(self, figure1):
        stats_only = system_from_dict(
            system_to_dict(
                EstimationSystem.build(figure1, p_variance=0, o_variance=0)
            )
        )
        registry = SynopsisRegistry()
        registry.register("stats", stats_only)
        svc = EstimationService(registry)
        with pytest.raises(RequestError) as excinfo:
            svc.handle_estimate(
                {"synopsis": "stats", "query": QUERY, "execute": True}
            )
        assert excinfo.value.status == 409
        assert excinfo.value.kind == "execute_unsupported"
        # Planning needs only the synopsis: explain still succeeds.
        body = svc.handle_estimate(
            {"synopsis": "stats", "query": QUERY, "explain": True}
        )
        assert body["plan"]["steps"]

    def test_batch_with_plan_verb_rejected(self, service):
        svc, _, _ = service
        for verb in ("explain", "execute"):
            with pytest.raises(RequestError) as excinfo:
                svc.handle_estimate(
                    {"synopsis": "fig1", "queries": [QUERY], verb: True}
                )
            assert excinfo.value.status == 400

    def test_explain_and_execute_are_mutually_exclusive(self, service):
        svc, _, _ = service
        with pytest.raises(RequestError) as excinfo:
            svc.handle_estimate(
                {
                    "synopsis": "fig1",
                    "query": QUERY,
                    "explain": True,
                    "execute": True,
                }
            )
        assert excinfo.value.status == 400
