"""The cost model's memoization and the planners' estimate reuse.

The historical QueryPlanner re-derived the spine estimate for every
edge of a bushy node (quadratic in fan-out across plan() calls); both
planners now memoize by rendered sub-query text, so each distinct
sub-pattern costs one estimate per planner lifetime.
"""

from __future__ import annotations

import pytest

from repro.core.system import EstimationSystem
from repro.plan.cost import AXIS_WEIGHTS, CostModel, step_cost
from repro.plan.planner import CostBasedPlanner
from repro.planner import QueryPlanner
from repro.xpath.ast import QueryAxis
from repro.xpath.parser import parse_query

BUSHY = "//A[/B][/C][/E]/$D"


@pytest.fixture(scope="module")
def system(figure1):
    return EstimationSystem.build(figure1, p_variance=0, o_variance=0)


class TestCostModel:
    def test_subpattern_estimates_are_memoized(self, system):
        model = CostModel(system)
        query = parse_query("//A/$B")
        first = model.subpattern_estimate(query)
        assert model.cache_info()["misses"] == 1
        assert model.subpattern_estimate(query) == first
        assert model.cache_info() == {"hits": 1, "misses": 1, "entries": 1}

    def test_clear_drops_everything(self, system):
        model = CostModel(system)
        model.subpattern_estimate(parse_query("//A/$B"))
        model.tag_total("A")
        model.frequency_map("A")
        model.clear()
        assert model.cache_info()["entries"] == 0

    def test_tag_total_matches_provider(self, system):
        model = CostModel(system)
        expected = float(
            sum(f for _, f in system.path_provider.frequency_pairs("B"))
        )
        assert model.tag_total("B") == expected
        assert model.tag_total("B") == expected  # cached path

    def test_step_cost_weights_by_axis(self):
        child = step_cost(QueryAxis.CHILD, 10.0, 5.0)
        desc = step_cost(QueryAxis.DESCENDANT, 10.0, 5.0)
        assert child == AXIS_WEIGHTS[QueryAxis.CHILD] * 15.0
        assert desc > child

    def test_unpruned_factors_shrink_with_branches(self, system):
        pattern = CostModel(system).prepare(parse_query(BUSHY), use_path_ids=False)
        node = pattern.query.root  # the A node carries the branches
        assert node.tag == "A"
        none = pattern.factor(node, ())
        some = pattern.factor(node, (0,))
        all_of_them = pattern.factor(node, range(len(node.edges)))
        assert none == 1.0
        assert none >= some >= all_of_them >= 0.0

    def test_pruned_factors_are_neutral(self, system):
        pattern = CostModel(system).prepare(parse_query(BUSHY), use_path_ids=True)
        node = pattern.query.root
        assert pattern.factor(node, (0, 1)) == 1.0


class TestQueryPlannerMemo:
    def test_repeat_plans_cost_no_new_estimates(self, system):
        planner = QueryPlanner(system)
        query = parse_query(BUSHY)
        planner.plan(query)
        first = planner.estimate_calls
        assert first > 0
        planner.plan(query)
        planner.plan(parse_query(BUSHY))  # same shape, fresh AST
        assert planner.estimate_calls == first

    def test_bushy_query_estimates_each_subpattern_once(self, system):
        planner = QueryPlanner(system)
        query = parse_query(BUSHY)
        planner.plan(query)
        # One spine estimate + one per branch of the bushy node: the
        # spine must not be re-estimated per edge (the old quadratic).
        branches = len(query.root.edges) - sum(
            1 for e in query.root.edges if e.node is query.target
        )
        assert planner.estimate_calls <= 1 + len(query.root.edges)
        assert branches >= 2  # the query really is bushy

    def test_planned_query_matches_same_nodes(self, system, figure1):
        from repro.queryproc import StructuralJoinProcessor

        processor = StructuralJoinProcessor(figure1)
        planner = QueryPlanner(system)
        query = parse_query(BUSHY)
        planned = planner.plan(query)
        assert set(processor.matching_pres(planned)) == set(
            processor.matching_pres(query)
        )


class TestCostBasedPlannerMemo:
    def test_shared_model_warms_across_plans(self, system):
        planner = CostBasedPlanner(system)
        planner.plan(BUSHY, use_path_ids=False)
        misses = planner.cost_model.cache_info()["misses"]
        planner.plan(BUSHY, use_path_ids=False)
        assert planner.cost_model.cache_info()["misses"] == misses

    def test_invalidate_kernel_clears_cost_memo(self, system):
        planner = system.planner()
        planner.plan(BUSHY, use_path_ids=False)
        assert planner.cost_model.cache_info()["entries"] > 0
        system.invalidate_kernel()
        assert planner.cost_model.cache_info()["entries"] == 0
