"""Adaptive re-optimization: when the document disagrees with the
statistics the plan was built from, mid-plan drift triggers a replan of
the remaining steps — and the result set stays exact regardless.

These tests run with ``use_path_ids=False``: path-id pruning filters the
initial candidate lists against the execution document's *own* exact
path statistics, which already applies every synopsis-visible
constraint, so the semijoin steps have nothing left to remove and the
stale synopsis is never contradicted.  Turning pruning off makes the
semijoins do the filtering, which is where drift shows up.
"""

from __future__ import annotations

import pytest

from repro.core.options import ExecuteOptions
from repro.core.system import EstimationSystem
from repro.queryproc import StructuralJoinProcessor
from repro.xmltree.parser import parse_xml
from repro.xpath.parser import parse_query

QUERY = "/Root/Rec[D][A][B]"
UNPRUNED = ExecuteOptions(use_path_ids=False)


def doc(d_every: int, recs: int = 60):
    """Recs all carry A and B; one in ``d_every`` carries D."""
    parts = ["<Root>"]
    for i in range(recs):
        parts.append("<Rec>")
        if i % d_every == 0:
            parts.append("<D/>")
        parts.append("<A/><B/></Rec>")
    parts.append("</Root>")
    return parse_xml("".join(parts))


@pytest.fixture(scope="module")
def optimistic_system():
    """Statistics from a document where every Rec has a D."""
    return EstimationSystem.build(doc(d_every=1), p_variance=0, o_variance=0)


@pytest.fixture(scope="module")
def sparse_document():
    """The tree actually executed against: D is rare (1 in 20)."""
    return doc(d_every=20)


class TestDriftReplan:
    def test_drift_fires_and_matches_stay_exact(
        self, optimistic_system, sparse_document
    ):
        result = optimistic_system.execute(
            QUERY, document=sparse_document, options=UNPRUNED
        )
        plan = result.plan
        # The D semijoin removes ~95% of Recs while the statistics
        # predicted no reduction: drift crosses the threshold and the
        # remaining up steps are replanned against observed sizes.
        assert plan.max_drift > plan.drift_threshold
        assert plan.replans >= 1
        assert plan.replanned_at
        assert any(step.replanned for step in plan.steps)
        expected = set(
            StructuralJoinProcessor(sparse_document).matching_pres(
                parse_query(QUERY)
            )
        )
        assert set(result.matches) == expected

    def test_replan_capped_by_max_replans(
        self, optimistic_system, sparse_document
    ):
        result = optimistic_system.execute(
            QUERY,
            document=sparse_document,
            options=ExecuteOptions(use_path_ids=False, max_replans=0),
        )
        assert result.plan.replans == 0
        assert result.plan.max_drift > result.plan.drift_threshold

    def test_adaptive_off_records_drift_without_replanning(
        self, optimistic_system, sparse_document
    ):
        result = optimistic_system.execute(
            QUERY,
            document=sparse_document,
            options=ExecuteOptions(use_path_ids=False, adaptive=False),
        )
        assert result.plan.replans == 0
        assert result.plan.max_drift > 1.0

    def test_loose_threshold_tolerates_the_drift(
        self, optimistic_system, sparse_document
    ):
        result = optimistic_system.execute(
            QUERY,
            document=sparse_document,
            options=ExecuteOptions(use_path_ids=False, drift_threshold=1000.0),
        )
        assert result.plan.replans == 0

    def test_matching_document_never_replans(self, optimistic_system):
        matching = doc(d_every=1)
        result = optimistic_system.execute(
            QUERY, document=matching, options=UNPRUNED
        )
        assert result.plan.replans == 0
        assert result.plan.max_drift == pytest.approx(1.0)

    def test_stats_count_replanned_executions(
        self, optimistic_system, sparse_document
    ):
        before = optimistic_system.planner_stats.snapshot()
        optimistic_system.execute(
            QUERY, document=sparse_document, options=UNPRUNED
        )
        after = optimistic_system.planner_stats.snapshot()
        assert after["replanned_executions"] == before["replanned_executions"] + 1
        assert after["max_drift"] >= before["max_drift"]
