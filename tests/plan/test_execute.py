"""Planned execution is exact: estimate-ordered, naive-ordered and the
reference processor all return identical match sets on every dataset's
workload, pruned or not — join order changes cost only, never results.
"""

from __future__ import annotations

import pytest

from repro.core.options import ExecuteOptions, ExplainOptions
from repro.core.system import EstimationSystem
from repro.errors import ExecutionUnsupportedError
from repro.queryproc import StructuralJoinProcessor
from repro.workload import WorkloadGenerator

DATASET_FIXTURES = ("ssplays_small", "dblp_small", "xmark_small")


def workload_texts(document, raw: int = 30, keep: int = 10):
    generator = WorkloadGenerator(document, seed=17)
    items = generator.simple_queries(raw) + generator.branch_queries(raw)
    # Prefer branchy queries: they exercise join ordering; pad with the
    # simple ones so every dataset still contributes `keep` queries.
    items.sort(key=lambda item: item.kind != "branch")
    return [(item.text, item.actual) for item in items[:keep]]


@pytest.mark.parametrize("dataset", DATASET_FIXTURES)
class TestPlannedExecutionIsExact:
    @pytest.fixture()
    def document(self, dataset, request):
        return request.getfixturevalue(dataset)

    @pytest.fixture()
    def system(self, document):
        return EstimationSystem.build(document, p_variance=0, o_variance=0)

    def test_matches_reference_processor(self, system, document):
        from repro.xpath.parser import parse_query

        processor = StructuralJoinProcessor(document)
        for text, actual in workload_texts(document):
            expected = set(processor.matching_pres(parse_query(text)))
            planned = system.execute(text)
            naive = system.execute(text, options=ExecuteOptions(naive_order=True))
            unpruned = system.execute(
                text, options=ExecuteOptions(use_path_ids=False)
            )
            assert set(planned.matches) == expected
            assert set(naive.matches) == expected
            assert set(unpruned.matches) == expected
            assert planned.match_count == actual
            assert planned.plan.executed

    def test_estimate_agrees_with_plan_cardinality(self, system, document):
        # Exact statistics: the plan's expected target cardinality is the
        # system's estimate for the same query.
        for text, _ in workload_texts(document, keep=5):
            plan = system.explain(text)
            assert plan.est_cardinality == pytest.approx(system.estimate(text))


class TestExecuteEdges:
    @pytest.fixture(scope="class")
    def system(self, figure1):
        return EstimationSystem.build(figure1, p_variance=0, o_variance=0)

    def test_empty_result_short_circuits(self, system):
        result = system.execute("//A/B/$F")  # no F under B in Figure 1
        assert result.matches == []
        assert result.plan.early_exit is not None
        assert any(step.skipped for step in result.plan.steps)

    def test_adaptive_off_never_replans(self, system):
        result = system.execute(
            "//A[/B][/C]", options=ExecuteOptions(adaptive=False)
        )
        assert result.plan.replans == 0

    def test_document_override_runs_other_tree(self, system, figure1):
        result = system.execute("//A/$B", document=figure1)
        processor = StructuralJoinProcessor(figure1)
        from repro.xpath.parser import parse_query

        assert set(result.matches) == set(
            processor.matching_pres(parse_query("//A/$B"))
        )

    def test_statistics_only_system_raises(self, figure1):
        from repro.persist import system_from_dict, system_to_dict

        stats_only = system_from_dict(
            system_to_dict(
                EstimationSystem.build(figure1, p_variance=0, o_variance=0)
            )
        )
        with pytest.raises(ExecutionUnsupportedError):
            stats_only.execute("//A/$B")
        # Planning needs only the synopsis, so explain still works.
        assert stats_only.explain("//A/$B").steps

    def test_explain_analyze_executes(self, system):
        plan = system.explain(
            "//A[/B][/C]", options=ExplainOptions(analyze=True)
        )
        assert plan.executed
        assert all(
            step.observed_in is not None
            for step in plan.steps
            if not step.skipped
        )

    def test_explain_records_planner_stats(self, figure1):
        system = EstimationSystem.build(figure1, p_variance=0, o_variance=0)
        before = system.planner_stats.snapshot()["plans"]
        system.explain("//A/$B")
        assert system.planner_stats.snapshot()["plans"] == before + 1
