"""Smoke tests for the benchmark modules at tiny scale.

``pytest benchmarks/ --benchmark-only`` is the real run; these tests wire
a miniature BenchContext and a stub ``benchmark`` fixture through a
representative subset of the bench functions so that regressions in the
experiment code surface in the plain test suite too.
"""

from __future__ import annotations

import pytest

import benchmarks.conftest as bench_conftest
from benchmarks.conftest import BenchContext
from repro.harness.tables import clear_results, rendered_results


class _StubBenchmark:
    """Mimics pytest-benchmark's fixture: runs the callable once."""

    def pedantic(self, target, rounds=1, iterations=1, args=(), kwargs=None):
        return target(*args, **(kwargs or {}))

    def __call__(self, target, *args, **kwargs):
        return target(*args, **kwargs)


@pytest.fixture(scope="module")
def tiny_ctx(tmp_path_factory):
    """A BenchContext over miniature datasets and workloads."""
    original_scale = bench_conftest.BENCH_SCALE
    original_raw = bench_conftest.BENCH_RAW
    bench_conftest.BENCH_SCALE = 0.3
    bench_conftest.BENCH_RAW = 80
    try:
        yield BenchContext()
    finally:
        bench_conftest.BENCH_SCALE = original_scale
        bench_conftest.BENCH_RAW = original_raw


@pytest.fixture(autouse=True)
def isolated_results(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    clear_results()
    yield
    clear_results()


class TestBenchSmoke:
    def test_table1(self, tiny_ctx):
        from benchmarks.bench_table1_datasets import test_table1_dataset_characteristics

        test_table1_dataset_characteristics(tiny_ctx, _StubBenchmark())
        assert "table1_datasets" in rendered_results()

    def test_table3(self, tiny_ctx):
        from benchmarks.bench_table3_space import test_table3_space_requirements

        test_table3_space_requirements(tiny_ctx, _StubBenchmark())
        assert "Binary Tree" in rendered_results() or "BinTree" in rendered_results()

    def test_fig9(self, tiny_ctx):
        from benchmarks.bench_fig9_memory import test_fig9_histogram_memory

        test_fig9_histogram_memory(tiny_ctx, _StubBenchmark())
        assert "Figure 9" in rendered_results()

    def test_ablation_pathjoin(self, tiny_ctx):
        from benchmarks.bench_ablation_pathjoin import test_ablation_pathjoin_variants

        test_ablation_pathjoin_variants(tiny_ctx, _StubBenchmark())
        assert "Ablation C" in rendered_results()

    def test_structural_join(self, tiny_ctx):
        from benchmarks.bench_structural_join import test_structural_join_pruning

        test_structural_join_pruning(tiny_ctx, _StubBenchmark())
        assert "path-id pruning" in rendered_results()

    def test_ablation_depth_refined(self, tiny_ctx):
        from benchmarks.bench_ablation_depth_refined import (
            test_ablation_depth_refined_statistics,
        )

        test_ablation_depth_refined_statistics(tiny_ctx, _StubBenchmark())
        assert "Ablation D" in rendered_results()

    def test_service_throughput(self, tiny_ctx):
        from benchmarks.bench_service_throughput import test_service_throughput

        test_service_throughput(tiny_ctx, _StubBenchmark())
        assert "service throughput" in rendered_results()

    def test_service_degraded(self, tiny_ctx, monkeypatch):
        import benchmarks.bench_service_degraded as bench

        # Shrink the sweep: fewer queries and shorter stalls.
        monkeypatch.setattr(bench, "MAX_QUERIES", 24)
        monkeypatch.setattr(bench, "FAULT_DELAY_S", 0.02)
        bench.test_service_degraded(tiny_ctx, _StubBenchmark())
        assert "injected" in rendered_results()

    def test_obs_overhead(self, tiny_ctx, monkeypatch):
        import benchmarks.bench_obs_overhead as bench

        # Tiny sweep, fewer repeats; disarm the jitter-sensitive gate —
        # micro-loops over a handful of queries swing far more than the
        # full benchmark's medians.
        monkeypatch.setattr(bench, "MAX_QUERIES", 16)
        monkeypatch.setattr(bench, "REPEATS", 3)
        monkeypatch.setattr(bench, "CLIENT_THREADS", 2)
        monkeypatch.setattr(bench, "OVERHEAD_HARD_LIMIT", 10.0)
        bench.test_obs_overhead(tiny_ctx, _StubBenchmark())
        assert "observability overhead" in rendered_results()

    def test_service_workers(self, tiny_ctx, monkeypatch, tmp_path_factory):
        import benchmarks.bench_service_workers as bench

        if not bench.pool_supported():
            pytest.skip("needs os.fork and SO_REUSEPORT")
        # Two pool sizes, a light sweep: forking real workers dominates.
        monkeypatch.setattr(bench, "MAX_QUERIES", 12)
        monkeypatch.setattr(bench, "CLIENT_PROCESSES", 2)
        monkeypatch.setattr(bench, "PASSES", 2)
        bench.test_service_worker_scaling(
            tiny_ctx, _StubBenchmark(), tmp_path_factory, points=(1, 2)
        )
        assert "worker-pool scaling" in rendered_results()

    def test_cluster_scaling(self, tiny_ctx, monkeypatch, tmp_path_factory):
        import benchmarks.bench_cluster_scaling as bench

        if not hasattr(__import__("os"), "fork"):
            pytest.skip("backend processes need os.fork")
        # Two backends, a light sweep: forking real backends dominates.
        monkeypatch.setattr(bench, "BACKENDS", 2)
        monkeypatch.setattr(bench, "CLIENT_PROCESSES", 2)
        monkeypatch.setattr(bench, "PASSES", 1)
        monkeypatch.setattr(bench, "MAX_QUERIES", 8)
        monkeypatch.setattr(bench, "MIN_SCALING", 0.0)
        bench.test_cluster_router_scaling(
            tiny_ctx, _StubBenchmark(), tmp_path_factory
        )
        assert "scatter-gather router scaling" in rendered_results()

    def test_cluster_delta(self, tiny_ctx, monkeypatch):
        import benchmarks.bench_cluster_scaling as bench

        # A tiny corpus relaxes the speedup bar: re-deriving histograms
        # has fixed costs that only amortize at real scale.  The
        # bit-identity assertion stays.
        monkeypatch.setattr(bench, "DELTA_TARGET_BYTES", 150_000)
        monkeypatch.setattr(bench, "MIN_DELTA_SPEEDUP", 0.0)
        bench.test_delta_apply_vs_full_rebuild(tiny_ctx, _StubBenchmark())
        assert "delta apply" in rendered_results()

    def test_throughput_kernel_gate(self, tiny_ctx):
        """Perf smoke: the compiled kernel must not be slower than the
        legacy join, even at tiny scale (CI runs exactly this gate)."""
        import benchmarks.bench_throughput as bench

        system = tiny_ctx.factory("XMark").system(0, 0)
        items = tiny_ctx.workload("XMark").no_order()[:60]
        assert items
        kernel_s, legacy_s = bench._kernel_vs_legacy(system, items, repeats=3)
        assert kernel_s <= legacy_s, (
            "kernel sweep %.1f ms slower than legacy %.1f ms"
            % (1e3 * kernel_s, 1e3 * legacy_s)
        )

    def test_traffic_capacity(self, tiny_ctx, monkeypatch):
        import benchmarks.bench_traffic_capacity as bench

        # Two short levels, a small worker pool; disarm the
        # jitter-sensitive latency gate — at one-second levels the p99
        # is a handful of samples.
        monkeypatch.setattr(bench, "OFFERED_QPS", (15.0, 60.0))
        monkeypatch.setattr(bench, "DURATION_S", 1.0)
        monkeypatch.setattr(bench, "WORKERS", 8)
        monkeypatch.setattr(bench, "MAX_QUERIES", 8)
        monkeypatch.setattr(bench, "P99_ADVANTAGE", 0.0)
        bench.test_traffic_capacity(tiny_ctx, _StubBenchmark())
        assert "traffic capacity" in rendered_results()

    def test_build_throughput(self, tiny_ctx, monkeypatch):
        import benchmarks.bench_build_throughput as bench

        # Keep the tiled document tiny; the real run tiles to ~6 MB.
        monkeypatch.setattr(bench, "TARGET_BYTES", 200_000)
        bench.test_build_throughput(tiny_ctx, _StubBenchmark())
        assert "build_throughput" in rendered_results()
