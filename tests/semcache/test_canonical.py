"""Canonical cache keys: equivalence merging vs bit-identity gating.

The canonicalizer may merge two spellings only when evaluation is
provably invariant between them (see repro/semcache/canonical.py);
everything else must stay distinct, or the cache would serve a float
computed for a *different* evaluation.
"""

from __future__ import annotations

from repro.semcache import canonical_key, options_fingerprint
from repro.xpath.parser import parse_query


class TestBranchCommutativity:
    def test_equivalent_branch_orders_share_a_key(self):
        a = parse_query("//A[/B][//C]/$D")
        b = parse_query("//A[//C][/B]/$D")
        assert canonical_key(a) == canonical_key(b)

    def test_noncommutative_rendering_keeps_branch_order(self):
        # fixpoint=False single-pass pruning depends on constraint
        # order, so the key must not merge permuted spellings.
        a = parse_query("//A[/B][//C]/$D")
        b = parse_query("//A[//C][/B]/$D")
        key_a = canonical_key(a, commutative=False)
        key_b = canonical_key(b, commutative=False)
        assert key_a != key_b

    def test_order_axis_queries_are_never_sorted(self):
        # The order route combines factors in query-edge order; its
        # float result is not permutation-invariant, so order-axis
        # queries stay unsorted even on the commutative path.
        a = parse_query("//A[/B][/C/folls::E]")
        b = parse_query("//A[/C/folls::E][/B]")
        assert a.has_order_axes()
        assert canonical_key(a) != canonical_key(b)

    def test_nested_branches_sort_recursively(self):
        a = parse_query("//A[/C[/F][//E]][/B]")
        b = parse_query("//A[/B][/C[//E][/F]]")
        assert canonical_key(a) == canonical_key(b)


class TestTargetMarkers:
    def test_distinct_targets_get_distinct_keys(self):
        assert canonical_key(parse_query("//$A/B")) != canonical_key(
            parse_query("//A/$B")
        )

    def test_default_target_marker_is_elided(self):
        # ``//A/$B`` marks the node the parser would target anyway, so
        # it shares a key with the unmarked spelling.
        assert canonical_key(parse_query("//A/$B")) == canonical_key(
            parse_query("//A/B")
        )

    def test_target_survives_branch_sorting(self):
        a = parse_query("//A[/$B][//C]")
        b = parse_query("//A[//C][/$B]")
        assert canonical_key(a) == canonical_key(b)
        # ...and a differently-targeted permutation does not merge in.
        c = parse_query("//A[/B][//$C]")
        assert canonical_key(c) != canonical_key(a)


class TestKeyMechanics:
    def test_keys_are_interned(self):
        first = canonical_key(parse_query("//A[/B][//C]/$D"))
        second = canonical_key(parse_query("//A[//C][/B]/$D"))
        assert first is second

    def test_repeated_parse_yields_identical_key(self):
        assert canonical_key(parse_query("//A/$B")) is canonical_key(
            parse_query("//A/$B")
        )


class TestOptionsFingerprint:
    def test_all_option_combinations_are_distinct(self):
        fingerprints = {
            options_fingerprint(fixpoint, depth_consistent)
            for fixpoint in (True, False)
            for depth_consistent in (True, False)
        }
        assert len(fingerprints) == 4

    def test_default_fingerprint_is_stable(self):
        assert options_fingerprint() == options_fingerprint(True, True)
