"""Invalidation races: a cached estimate must never outlive its synopsis.

Every path that changes synopsis content — registry hot reload,
re-registration, delta application, pre-fork pack remap — must bump the
semantic cache's generation so resident entries can never be served
again.  The converse also matters: paths that do *not* change content
(last-good degraded reloads) must keep the warm cache.

The companion invariant is bit-identity: with the cache enabled, every
estimate (cold, warm, batch, equivalent spelling) equals the uncached
float exactly.
"""

from __future__ import annotations

import os
import time

import pytest

from repro import EstimationSystem, persist
from repro.build.builder import build_synopsis
from repro.cluster.delta import IncrementalSynopsis
from repro.semcache import canonical_key, options_fingerprint
from repro.service import ServerConfig, ServiceClient, SynopsisRegistry
from repro.shm import WorkerPool, pool_supported
from repro.workload import WorkloadGenerator
from repro.xpath.parser import parse_query

QUERY = "//A/$B"


def _touch(path, offset_ns=1):
    """Force a distinct mtime even on coarse-grained filesystems."""
    stamp = time.time_ns() + offset_ns
    os.utime(path, ns=(stamp, stamp))


def _workload_texts(document, limit=24):
    workload = WorkloadGenerator(document, seed=11).full_workload(
        raw_simple=60, raw_branch=60, raw_order=60
    )
    texts = [
        item.text
        for item in (
            workload.simple + workload.branch
            + workload.order_branch + workload.order_trunk
        )
    ]
    return texts[:limit]


@pytest.mark.parametrize("fixture", ["ssplays_small", "dblp_small", "xmark_small"])
class TestBitIdentity:
    def test_cached_estimates_are_bit_identical(self, fixture, request):
        document = request.getfixturevalue(fixture)
        system = EstimationSystem.build(document, p_variance=0, o_variance=0)
        texts = _workload_texts(document)
        assert texts, "workload generator produced no queries"
        # Ground truth with the cache disabled entirely.
        system.semcache.configure(0, None)
        uncached = [system.estimate(text) for text in texts]
        system.semcache.configure(4096, None)
        cold = [system.estimate(text) for text in texts]
        warm = [system.estimate(text) for text in texts]
        assert cold == uncached
        assert warm == uncached
        assert system.semcache.stats().hits >= len(texts)

    def test_batch_with_duplicates_matches_direct(self, fixture, request):
        document = request.getfixturevalue(fixture)
        system = EstimationSystem.build(document, p_variance=0, o_variance=0)
        texts = _workload_texts(document, limit=8)
        batch = texts + texts[::-1] + texts[:3]
        expected = {text: system.estimate(text) for text in texts}
        values = system.estimate(batch)
        assert values == [expected[text] for text in batch]


class TestEquivalentSpellings:
    def test_permuted_branches_share_one_entry(self, figure1):
        system = EstimationSystem.build(figure1, p_variance=0, o_variance=0)
        spelled = "//A[/B][/C]/$D"
        permuted = "//A[/C][/B]/$D"
        # Branch permutation is value-preserving on the fixpoint path...
        system.semcache.configure(0, None)
        assert system.estimate(spelled) == system.estimate(permuted)
        # ...so both spellings read through one cache entry.
        system.semcache.configure(4096, None)
        value = system.estimate(spelled)
        before = system.semcache.stats()
        assert system.estimate(permuted) == value
        after = system.semcache.stats()
        assert after.hits == before.hits + 1
        assert after.size == before.size


class TestGenerationBump:
    def test_invalidate_kernel_bumps_the_semcache(self, figure1):
        system = EstimationSystem.build(figure1, p_variance=0, o_variance=0)
        generation = system.semcache.generation
        system.invalidate_kernel()
        assert system.semcache.generation == generation + 1

    def test_poisoned_entry_dies_on_bump(self, figure1):
        """Direct proof that estimate() reads the cache — and that a bump
        cuts it off: plant a sentinel under the live key, watch it get
        served, bump, and watch the true value come back."""
        system = EstimationSystem.build(figure1, p_variance=0, o_variance=0)
        truth = system.estimate(QUERY)
        key = canonical_key(parse_query(QUERY))
        fingerprint = options_fingerprint(True, True)
        sentinel = truth + 1234.5
        system.semcache.put(key, fingerprint, sentinel)
        assert system.estimate(QUERY) == sentinel  # the cache is live
        system.invalidate_kernel()
        assert system.estimate(QUERY) == truth  # the sentinel did not survive

    def test_detail_and_trace_bypass_the_cache(self, figure1):
        from repro.core.options import EstimateOptions

        system = EstimationSystem.build(figure1, p_variance=0, o_variance=0)
        truth = system.estimate(QUERY)
        key = canonical_key(parse_query(QUERY))
        system.semcache.put(key, options_fingerprint(True, True), truth + 99.0)
        detailed = system.estimate(QUERY, options=EstimateOptions(detail=True))
        traced = system.estimate(QUERY, options=EstimateOptions(trace=True))
        assert detailed.value == truth
        assert traced.value == truth

    def test_ablation_arm_never_touches_the_cache(self, figure1):
        system = EstimationSystem.build(figure1, p_variance=0, o_variance=0)
        system.kernel_enabled = False
        before = system.semcache.stats()
        system.estimate(QUERY)
        system.estimate(QUERY)
        after = system.semcache.stats()
        assert (after.hits, after.misses, after.size) == (
            before.hits, before.misses, before.size,
        )


class TestRegistryInvalidation:
    @pytest.fixture()
    def coarse_figure1(self, figure1):
        # Huge variance thresholds collapse the histograms, so the
        # reloaded system estimates differently from the exact one.
        return EstimationSystem.build(figure1, p_variance=1e9, o_variance=1e9)

    def test_hot_reload_invalidates_the_replaced_system(
        self, tmp_path, figure1, coarse_figure1
    ):
        exact = EstimationSystem.build(figure1, p_variance=0, o_variance=0)
        path = str(tmp_path / "fig1.json")
        persist.save(exact, path)
        registry = SynopsisRegistry(str(tmp_path), check_interval=0.0)
        registry.scan()
        # The coarse histograms disagree with the exact ones on this
        # order query, so a stale cached float would be visible.
        query = "//A[/C/folls::$B]"
        old_system = registry.get("fig1").system
        warm_value = old_system.estimate(query)  # cache is now warm
        generation = old_system.semcache.generation

        persist.save(coarse_figure1, path)
        _touch(path)
        entry = registry.get("fig1")
        assert entry.generation == 2
        # The swapped-out system was invalidated: a captured reference
        # cannot serve its pre-reload cache entries.
        assert old_system.semcache.generation == generation + 1
        reloaded = entry.system.estimate(query)
        assert reloaded == pytest.approx(coarse_figure1.estimate(query))
        assert reloaded != warm_value

    def test_reregistration_invalidates_the_previous_system(
        self, figure1, coarse_figure1
    ):
        exact = EstimationSystem.build(figure1, p_variance=0, o_variance=0)
        registry = SynopsisRegistry()
        registry.register("demo", exact)
        exact.estimate(QUERY)
        generation = exact.semcache.generation
        registry.register("demo", coarse_figure1)
        assert exact.semcache.generation == generation + 1
        assert registry.get("demo").system is coarse_figure1

    def test_last_good_fallback_keeps_the_warm_cache(self, tmp_path, figure1):
        exact = EstimationSystem.build(figure1, p_variance=0, o_variance=0)
        path = str(tmp_path / "fig1.json")
        persist.save(exact, path)
        registry = SynopsisRegistry(str(tmp_path), check_interval=0.0)
        registry.scan()
        system = registry.get("fig1").system
        value = system.estimate(QUERY)
        generation = system.semcache.generation
        hits_before = system.semcache.stats().hits

        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        _touch(path)
        entry = registry.get("fig1")
        # Degraded: same system, same statistics — the cache stays warm
        # (nothing it holds went stale) and keeps serving hits.
        assert entry.degraded
        assert entry.system is system
        assert system.semcache.generation == generation
        assert entry.system.estimate(QUERY) == value
        assert system.semcache.stats().hits == hits_before + 1


class TestDeltaInvalidation:
    BASE = "".join(
        "<A><B/><C><D/></C></A>" if i % 2 else "<A><B/><B/></A>"
        for i in range(24)
    )

    @staticmethod
    def doc(body):
        return "<Root>" + body + "</Root>"

    def test_deferred_apply_still_bumps_the_generation(self):
        incremental = IncrementalSynopsis.build(
            self.doc(self.BASE), name="inc", drift_threshold=10.0
        )
        system = incremental.system
        value = system.estimate(QUERY)
        generation = system.semcache.generation
        outcome = incremental.apply(
            incremental.scan_fragment("<A><B/></A>")
        )
        assert not outcome.refreshed
        assert outcome.system is system
        # Stats were unchanged (deferred), so cached floats would still
        # be correct — but the invalidation contract must never depend
        # on the drift heuristic.  The bump is O(1), so it is always on.
        assert system.semcache.generation == generation + 1
        assert system.estimate(QUERY) == value  # recomputed, same stats

    def test_warm_cache_never_leaks_across_a_refresh(self):
        incremental = IncrementalSynopsis.build(self.doc(self.BASE), name="inc")
        old_system = incremental.system
        old_system.estimate(QUERY)  # warm the pre-delta cache
        fragment = "<A><B/><B/><B/></A>" * 4
        outcome = incremental.apply(incremental.scan_fragment(fragment))
        assert outcome.refreshed
        combined = build_synopsis(self.doc(self.BASE + fragment))
        assert outcome.system.estimate(QUERY) == combined.estimate(QUERY)
        assert outcome.system.estimate(QUERY) != old_system.estimate(QUERY)


@pytest.mark.skipif(
    not pool_supported(), reason="needs os.fork and SO_REUSEPORT"
)
class TestPreForkReload:
    def test_remap_smoke_no_worker_serves_a_stale_cached_estimate(
        self, tmp_path, ssplays_small
    ):
        from repro.datasets import generate_ssplays

        version_a = EstimationSystem.build(
            ssplays_small, p_variance=0, o_variance=0
        )
        version_b = EstimationSystem.build(
            generate_ssplays(scale=0.1, seed=5), p_variance=0, o_variance=0
        )
        query = "//SPEECH"
        value_a = version_a.estimate(query)
        value_b = version_b.estimate(query)
        assert value_a != value_b
        path = str(tmp_path / "SSPlays.json")
        persist.save(version_a, path)
        config = ServerConfig(port=0, workers=2, reload_interval_s=0.0)
        with WorkerPool(
            str(tmp_path), workers=2, config=config, reload_poll_s=0.05
        ) as pool:
            with ServiceClient(port=pool.port) as client:
                # Warm every worker's semcache on the hot query.
                for _ in range(16):
                    reply = client._request(
                        "POST",
                        "/estimate",
                        {"synopsis": "SSPlays", "query": query},
                    )
                    assert reply["estimate"] == value_a
                persist.save(version_b, path)
                pool.reload(force=True)
                deadline = time.monotonic() + 30.0
                while not pool.reload_converged():
                    assert time.monotonic() < deadline, "workers never remapped"
                    time.sleep(0.05)
                # Every worker now serves the new synopsis; a warm cache
                # entry from version A must never resurface.
                for _ in range(16):
                    reply = client._request(
                        "POST",
                        "/estimate",
                        {"synopsis": "SSPlays", "query": query},
                    )
                    assert reply["estimate"] == value_b
