"""SemanticResultCache unit behavior: LRU, admission, TTL, generations."""

from __future__ import annotations

from repro.semcache import SemanticResultCache

FP = "f1d1"


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestBasicProtocol:
    def test_put_then_get_hits(self):
        cache = SemanticResultCache(capacity=4)
        assert cache.put("//A/B", FP, 2.5)
        hit, value = cache.get("//A/B", FP)
        assert hit and value == 2.5

    def test_absent_key_misses(self):
        cache = SemanticResultCache(capacity=4)
        hit, value = cache.get("//A/B", FP)
        assert not hit and value is None
        assert cache.stats().misses == 1

    def test_fingerprints_partition_the_keyspace(self):
        cache = SemanticResultCache(capacity=4)
        cache.put("//A/B", "f1d1", 1.0)
        cache.put("//A/B", "f0d1", 9.0)
        assert cache.get("//A/B", "f1d1") == (True, 1.0)
        assert cache.get("//A/B", "f0d1") == (True, 9.0)


class TestLRUAndAdmission:
    def test_lru_victim_is_the_coldest_entry(self):
        cache = SemanticResultCache(capacity=2)
        cache.put("a", FP, 1.0)
        cache.put("b", FP, 2.0)
        cache.get("a", FP)  # refresh a; b becomes the LRU victim
        assert cache.put("c", FP, 3.0)
        assert cache.get("a", FP)[0]
        assert not cache.get("b", FP)[0]
        assert cache.stats().evictions == 1

    def test_cold_candidate_cannot_evict_a_hot_entry(self):
        cache = SemanticResultCache(capacity=1)
        cache.put("hot", FP, 1.0)
        for _ in range(5):
            cache.get("hot", FP)
        # ``cold`` has never been looked up: frequency 0 < 5, rejected.
        assert not cache.put("cold", FP, 2.0)
        assert cache.get("hot", FP) == (True, 1.0)
        assert cache.stats().rejections == 1

    def test_repeated_misses_earn_admission(self):
        cache = SemanticResultCache(capacity=1)
        cache.put("hot", FP, 1.0)
        cache.get("hot", FP)
        # Every lookup — hit or miss — feeds the admission sketch, so a
        # genuinely recurring query displaces the incumbent eventually.
        for _ in range(3):
            cache.get("cold", FP)
        assert cache.put("cold", FP, 2.0)
        assert cache.get("cold", FP) == (True, 2.0)

    def test_overwrite_of_resident_key_never_evicts(self):
        cache = SemanticResultCache(capacity=1)
        cache.put("a", FP, 1.0)
        assert cache.put("a", FP, 1.5)
        assert len(cache) == 1
        assert cache.get("a", FP) == (True, 1.5)


class TestTTL:
    def test_entries_expire_after_ttl(self):
        clock = FakeClock()
        cache = SemanticResultCache(capacity=4, ttl_s=10.0, clock=clock)
        cache.put("a", FP, 1.0)
        clock.now = 9.9
        assert cache.get("a", FP)[0]
        clock.now = 10.0
        hit, _ = cache.get("a", FP)
        assert not hit
        stats = cache.stats()
        assert stats.expirations == 1
        assert stats.size == 0

    def test_no_ttl_means_entries_never_expire(self):
        clock = FakeClock()
        cache = SemanticResultCache(capacity=4, clock=clock)
        cache.put("a", FP, 1.0)
        clock.now = 1e9
        assert cache.get("a", FP)[0]


class TestGenerations:
    def test_bump_invalidates_every_resident_entry(self):
        cache = SemanticResultCache(capacity=8)
        for index in range(5):
            cache.put("q%d" % index, FP, float(index))
        assert cache.bump_generation() == 1
        for index in range(5):
            assert not cache.get("q%d" % index, FP)[0]

    def test_bump_is_o1_no_entries_are_freed_eagerly(self):
        cache = SemanticResultCache(capacity=8)
        for index in range(5):
            cache.put("q%d" % index, FP, float(index))
        cache.bump_generation()
        # Stale entries age out under LRU pressure, not on the bump.
        assert len(cache) == 5
        assert cache.stats().generation == 1

    def test_fresh_writes_land_under_the_new_generation(self):
        cache = SemanticResultCache(capacity=8)
        cache.put("a", FP, 1.0)
        cache.bump_generation()
        cache.put("a", FP, 2.0)
        assert cache.get("a", FP) == (True, 2.0)

    def test_stale_generations_are_recycled_by_lru_pressure(self):
        cache = SemanticResultCache(capacity=2)
        cache.put("a", FP, 1.0)
        cache.put("b", FP, 2.0)
        cache.bump_generation()
        cache.put("c", FP, 3.0)
        cache.put("d", FP, 4.0)
        cache.put("e", FP, 5.0)  # evicts the oldest, across generations
        assert len(cache) == 2  # the ring never grows past capacity
        assert cache.get("d", FP)[0]
        assert cache.get("e", FP)[0]


class TestDisabledAndConfigure:
    def test_capacity_zero_disables_everything(self):
        cache = SemanticResultCache(capacity=0)
        assert not cache.enabled
        assert not cache.put("a", FP, 1.0)
        assert cache.get("a", FP) == (False, None)
        assert len(cache) == 0

    def test_configure_trims_overflow(self):
        cache = SemanticResultCache(capacity=8)
        for index in range(6):
            cache.put("q%d" % index, FP, float(index))
        cache.configure(2, None)
        assert len(cache) == 2
        assert cache.stats().evictions == 4
        # The survivors are the most recently used entries.
        assert cache.get("q4", FP)[0]
        assert cache.get("q5", FP)[0]

    def test_configure_to_zero_then_back_restarts_clean(self):
        cache = SemanticResultCache(capacity=4)
        cache.put("a", FP, 1.0)
        cache.configure(0, None)
        assert not cache.enabled and len(cache) == 0
        cache.configure(4, None)
        assert cache.enabled
        assert not cache.get("a", FP)[0]
        assert cache.put("a", FP, 1.0)

    def test_stats_hit_rate(self):
        cache = SemanticResultCache(capacity=4)
        cache.put("a", FP, 1.0)
        cache.get("a", FP)
        cache.get("b", FP)
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 1
        assert stats.hit_rate == 0.5
        assert stats.as_dict()["hit_rate"] == 0.5
