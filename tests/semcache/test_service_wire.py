"""Wire format of the ``cache`` attribution object (satellite of the
semantic result cache).

``result.cache = {"plan": bool, "result": bool}`` is the structured
attribution; the legacy flat ``cached`` boolean is kept as a compat
alias of ``cache["plan"]`` behind ``compat_fields``.
"""

from __future__ import annotations

import pytest

from repro import EstimationSystem
from repro.core.result import EstimateResult
from repro.service import EstimationService, SynopsisRegistry


class TestResultRoundTrip:
    def test_cache_object_survives_as_dict_from_dict(self):
        result = EstimateResult(
            value=2.5,
            query="//A/$B",
            route="no_order",
            elapsed_ms=0.2,
            cached=True,
            kernel=True,
            cache={"plan": True, "result": False},
        )
        payload = result.as_dict()
        assert payload["cache"] == {"plan": True, "result": False}
        restored = EstimateResult.from_dict(payload)
        assert restored.cache == {"plan": True, "result": False}
        assert restored.as_dict() == payload

    def test_cache_field_is_optional_for_old_payloads(self):
        result = EstimateResult(value=1.0, query="//A", route="no_order")
        payload = result.as_dict()
        assert "cache" not in payload
        assert EstimateResult.from_dict(payload).cache is None


@pytest.fixture(scope="module")
def service(figure1):
    system = EstimationSystem.build(figure1, p_variance=0, o_variance=0)
    registry = SynopsisRegistry()
    registry.register("fig1", system)
    return EstimationService(registry)


class TestServiceWire:
    def test_every_result_carries_the_cache_object(self, service):
        reply = service.handle_estimate(
            {"synopsis": "fig1", "query": "//A/$B"}
        )
        cache = reply["result"]["cache"]
        assert set(cache) == {"plan", "result"}
        assert isinstance(cache["plan"], bool)
        assert isinstance(cache["result"], bool)

    def test_legacy_cached_is_an_alias_of_cache_plan(self, service):
        first = service.handle_estimate(
            {"synopsis": "fig1", "query": "//A/$C"}
        )
        second = service.handle_estimate(
            {"synopsis": "fig1", "query": "//A/$C"}
        )
        for reply in (first, second):
            assert reply["cached"] == reply["result"]["cache"]["plan"]
        assert first["result"]["cache"]["plan"] is False
        assert second["result"]["cache"]["plan"] is True
        assert second["result"]["cache"]["result"] is True

    def test_compat_off_drops_the_flat_alias_but_keeps_cache(self, service):
        reply = service.handle_estimate(
            {"synopsis": "fig1", "query": "//A/$B", "compat": False}
        )
        assert "cached" not in reply
        assert "cache" in reply["result"]

    def test_trace_requests_report_both_flags_false(self, service):
        reply = service.handle_estimate(
            {"synopsis": "fig1", "query": "//A/$B", "trace": True}
        )
        assert reply["result"]["cache"] == {"plan": False, "result": False}

    def test_batch_duplicates_attribute_to_the_result_cache(self, service):
        reply = service.handle_estimate(
            {
                "synopsis": "fig1",
                "queries": ["//A/$D", "//A/$D", "//A/$D"],
            }
        )
        results = reply["results"]
        assert results[0]["result"]["cache"]["result"] in (False, True)
        third = results[2]
        assert third["cached"] is True
        assert third["result"]["cache"] == {"plan": True, "result": True}
        values = {result["estimate"] for result in results}
        assert len(values) == 1

    def test_equivalent_spellings_share_within_a_batch(self, service):
        reply = service.handle_estimate(
            {
                "synopsis": "fig1",
                "queries": ["//A[/B][/C]/$D", "//A[/C][/B]/$D"],
            }
        )
        first, second = reply["results"]
        assert second["result"]["cache"]["result"] is True
        assert second["estimate"] == first["estimate"]
        assert second["result"]["elapsed_ms"] == 0.0

    def test_metrics_document_exposes_the_semcache_block(self, service):
        service.handle_estimate({"synopsis": "fig1", "query": "//A/$B"})
        document = service.metrics_document()
        block = document["semcache"]
        assert block["synopses"] == 1
        assert block["capacity"] > 0
        assert block["served_hits"] + block["served_misses"] > 0
        assert 0.0 <= block["hit_rate"] <= 1.0
