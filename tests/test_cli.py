"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.xmltree.serializer import serialize


@pytest.fixture()
def xml_file(tmp_path, figure1):
    path = tmp_path / "figure1.xml"
    path.write_text(serialize(figure1), encoding="utf-8")
    return str(path)


class TestStats:
    def test_stats_on_file(self, xml_file, capsys):
        assert main(["stats", "--file", xml_file]) == 0
        out = capsys.readouterr().out
        assert "elements" in out and "18" in out

    def test_stats_on_dataset(self, capsys):
        assert main(["stats", "--dataset", "SSPlays", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "distinct tags" in out


class TestEstimate:
    def test_estimate_with_actual(self, xml_file, capsys):
        code = main(["estimate", "--file", xml_file, "//A//$C", "--actual"])
        assert code == 0
        out = capsys.readouterr().out
        assert "estimate: 2.000" in out
        assert "actual:   2" in out

    def test_estimate_with_explain(self, xml_file, capsys):
        main(["estimate", "--file", xml_file, "//C[/$E]/F", "--explain"])
        out = capsys.readouterr().out
        assert "equation-2" in out

    def test_order_query(self, xml_file, capsys):
        main(["estimate", "--file", xml_file, "//A[/C[/F]/folls::$B/D]"])
        assert "estimate: 1.000" in capsys.readouterr().out

    def test_variance_flags(self, xml_file, capsys):
        main(["estimate", "--file", xml_file, "//A/B", "--p-variance", "5"])
        assert "estimate:" in capsys.readouterr().out


class TestWorkload:
    def test_counts_and_show(self, xml_file, capsys):
        main(["workload", "--file", xml_file, "--raw", "40", "--show", "3"])
        out = capsys.readouterr().out
        assert "with order" in out
        assert "simple" in out


class TestPaths:
    def test_path_listing(self, xml_file, capsys):
        main(["paths", "--file", xml_file, "--limit", "0"])
        out = capsys.readouterr().out
        assert "Root/A/B/D" in out
        assert "distinct path ids:           9" in out


class TestSnapshot:
    def test_snapshot_into_directory(self, xml_file, tmp_path, capsys):
        from repro import persist

        out_dir = tmp_path / "snaps"
        out_dir.mkdir()
        assert main(["snapshot", "--file", xml_file, "--output", str(out_dir),
                     "--name", "fig1"]) == 0
        assert "snapshot 'fig1' written" in capsys.readouterr().out
        restored = persist.load(str(out_dir / "fig1.json"))
        assert restored.estimate("//A/B") == 4.0

    def test_snapshot_default_name_from_file_stem(self, xml_file, tmp_path, capsys):
        out_dir = str(tmp_path) + "/deep/"
        assert main(["snapshot", "--file", xml_file, "--output", out_dir]) == 0
        assert (tmp_path / "deep" / "figure1.json").exists()

    def test_snapshot_to_explicit_file(self, tmp_path, capsys):
        from repro import persist

        target = tmp_path / "ss.json"
        assert main(["snapshot", "--dataset", "SSPlays", "--scale", "0.1",
                     "--output", str(target)]) == 0
        assert persist.load(str(target)).estimate("//PLAY") > 0

    def test_snapshot_lenient_recovers_damaged_file(self, tmp_path, capsys):
        from repro import persist
        from repro.errors import ParseError

        damaged = tmp_path / "torn.xml"
        damaged.write_text("<R><A><B>x</B><A><B>y</B></A></R>")  # <A> never closes
        with pytest.raises(ParseError):
            main(["snapshot", "--file", str(damaged), "--output", str(tmp_path) + "/"])
        assert main(["snapshot", "--file", str(damaged), "--lenient",
                     "--output", str(tmp_path) + "/"]) == 0
        assert persist.load(str(tmp_path / "torn.json")).estimate("//A/B") > 0


class TestServe:
    def test_missing_snapshot_dir_fails_cleanly(self, tmp_path, capsys):
        code = main(["serve", "--snapshot-dir", str(tmp_path / "nope")])
        assert code == 1
        assert "does not exist" in capsys.readouterr().err

    def test_requires_snapshot_dir(self):
        with pytest.raises(SystemExit):
            main(["serve"])


class TestTraffic:
    @pytest.fixture()
    def snapshot_dir(self, xml_file, tmp_path):
        out_dir = tmp_path / "snaps"
        assert main(["snapshot", "--file", xml_file, "--output",
                     str(out_dir) + "/", "--name", "fig1"]) == 0
        return str(out_dir)

    def test_missing_snapshot_dir_fails_cleanly(self, tmp_path, capsys):
        code = main(["traffic", "--snapshot-dir", str(tmp_path / "nope")])
        assert code == 1
        assert "does not exist" in capsys.readouterr().err

    def test_save_trace_writes_replayable_jsonl(self, snapshot_dir, tmp_path,
                                                capsys):
        from repro.traffic import load_trace

        trace = str(tmp_path / "trace")
        assert main(["traffic", "--snapshot-dir", snapshot_dir, "--smoke",
                     "--qps", "25", "--save-trace", trace]) == 0
        assert "wrote" in capsys.readouterr().out
        events = load_trace(trace + ".25.jsonl")
        assert events
        assert all(event.at_s < 1.0 for event in events)

    def test_smoke_sweep_prints_curve_and_knee(self, snapshot_dir, capsys):
        assert main(["traffic", "--snapshot-dir", snapshot_dir, "--smoke",
                     "--qps", "20", "--workers", "4"]) == 0
        out = capsys.readouterr().out
        assert "capacity sweep: fig1 (tiered gate" in out
        assert "knee (goodput >= 0.9 x offered)" in out


class TestParser:
    def test_requires_source(self):
        with pytest.raises(SystemExit):
            main(["stats"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_file_and_dataset_exclusive(self, xml_file):
        with pytest.raises(SystemExit):
            main(["stats", "--file", xml_file, "--dataset", "DBLP"])
