"""Incremental maintenance: delta apply correctness and edge cases.

The load-bearing property is **bit-identity**: a base build plus any
sequence of applied deltas must estimate exactly like a from-scratch
build of the combined document — same tables, same histograms, same
floats.  Everything else (drift deferral, concurrency, persistence)
preserves that property under operational pressure.
"""

from __future__ import annotations

import threading

import pytest

from repro import persist
from repro.build.builder import build_synopsis
from repro.build.stream import PartialSynopsis
from repro.cluster.delta import (
    DeltaError,
    DeltaUnsupportedError,
    IncrementalSynopsis,
)

BASE_BODY = "".join(
    "<A><B/><C><D/></C></A>" if i % 2 else "<A><B/><B/></A>" for i in range(24)
)
DELTA_BODY = "".join(
    "<A><C><D/><D/></C></A>" if i % 3 else "<A><B/><C/></A>" for i in range(9)
)
QUERIES = [
    "//A/$B",
    "//A/$C",
    "//A/C/$D",
    "/Root/$A",
    "//A[/B/folls::$C]",
    "//A[/C]/$B",
]


def doc(body: str) -> str:
    return "<Root>" + body + "</Root>"


@pytest.fixture()
def incremental():
    return IncrementalSynopsis.build(doc(BASE_BODY), name="inc")


class TestBitIdentity:
    def test_apply_matches_combined_build(self, incremental):
        partial = incremental.scan_fragment(DELTA_BODY)
        outcome = incremental.apply(partial)
        assert outcome.refreshed
        combined = build_synopsis(doc(BASE_BODY + DELTA_BODY))
        for query in QUERIES:
            assert outcome.system.estimate(query) == combined.estimate(query), query

    def test_sequential_deltas_accumulate(self, incremental):
        chunks = ["<A><B/></A>", "<A><C><D/></C><B/></A>", "<A><B/><B/><C/></A>"]
        for chunk in chunks:
            outcome = incremental.apply(incremental.scan_fragment(chunk))
        combined = build_synopsis(doc(BASE_BODY + "".join(chunks)))
        for query in QUERIES:
            assert outcome.system.estimate(query) == combined.estimate(query), query

    def test_new_tag_delta_remaps_encodings(self, incremental):
        """A delta introducing brand-new paths shifts every existing
        encoding (appended paths claim the high bits); the shifted tables
        must still agree with a from-scratch build."""
        fragment = "<A><E><F/></E></A><A><E/></A>"
        outcome = incremental.apply(incremental.scan_fragment(fragment))
        assert outcome.new_paths >= 2
        combined = build_synopsis(doc(BASE_BODY + fragment))
        for query in QUERIES + ["//A/$E", "//A/E/$F", "//A[/E]/$B"]:
            assert outcome.system.estimate(query) == combined.estimate(query), query

    def test_empty_delta_is_a_noop(self, incremental):
        before = incremental.system
        empty = PartialSynopsis([], {}, {}, [], 0)
        outcome = incremental.apply(empty)
        assert not outcome.refreshed
        assert outcome.elements_added == 0
        assert incremental.system is before

    def test_system_apply_delta_entry_point(self, incremental):
        partial = incremental.scan_fragment("<A><B/></A>")
        outcome = incremental.system.apply_delta(partial)
        assert outcome.refreshed
        assert outcome.system.incremental is incremental

    def test_plain_system_rejects_deltas(self, incremental):
        plain = build_synopsis(doc(BASE_BODY))
        partial = incremental.scan_fragment("<A><B/></A>")
        with pytest.raises(DeltaUnsupportedError):
            plain.apply_delta(partial)

    def test_whole_document_partial_rejected(self, incremental):
        # top=None marks a whole-document scan; only fragment scans
        # (appended subtrees under the root prefix) merge exactly.
        partial = PartialSynopsis([], {}, {}, None, 3)
        with pytest.raises(DeltaError):
            incremental.apply(partial)


class TestDriftDeferral:
    def test_small_delta_defers_below_threshold(self):
        inc = IncrementalSynopsis.build(
            doc(BASE_BODY), name="drift", drift_threshold=0.5
        )
        served = inc.system
        outcome = inc.apply(inc.scan_fragment("<A><B/></A>"))
        # 3 elements on ~80 is way below 50% drift: the old complete
        # system keeps serving (stale, never torn).
        assert not outcome.refreshed
        assert outcome.system is served
        assert inc.stale
        assert 0.0 < inc.drift() < 0.5

    def test_drift_past_threshold_refreshes(self):
        inc = IncrementalSynopsis.build(
            doc(BASE_BODY), name="drift", drift_threshold=0.05
        )
        outcome = inc.apply(inc.scan_fragment(DELTA_BODY))
        assert outcome.refreshed
        assert not inc.stale
        combined = build_synopsis(doc(BASE_BODY + DELTA_BODY))
        for query in QUERIES:
            assert outcome.system.estimate(query) == combined.estimate(query), query

    def test_deferred_mass_survives_into_refresh(self):
        """Deltas absorbed below the threshold are not lost: the next
        refresh folds every deferred delta in."""
        inc = IncrementalSynopsis.build(
            doc(BASE_BODY), name="drift", drift_threshold=0.9
        )
        inc.apply(inc.scan_fragment("<A><B/></A>"))
        inc.apply(inc.scan_fragment("<A><C/></A>"))
        outcome = inc.apply(inc.scan_fragment("<A><B/><C/></A>"), force_refresh=True)
        assert outcome.refreshed
        combined = build_synopsis(
            doc(BASE_BODY + "<A><B/></A>" + "<A><C/></A>" + "<A><B/><C/></A>")
        )
        for query in QUERIES:
            assert outcome.system.estimate(query) == combined.estimate(query), query

    def test_new_paths_always_refresh(self):
        """An encoding remap cannot be deferred: a new path shifts every
        pid, so the served system must swap regardless of drift."""
        inc = IncrementalSynopsis.build(
            doc(BASE_BODY), name="drift", drift_threshold=0.99
        )
        outcome = inc.apply(inc.scan_fragment("<A><Znew/></A>"))
        assert outcome.refreshed
        assert outcome.new_paths == 1


class TestConcurrentReaders:
    def test_readers_see_old_or_new_never_torn(self, incremental):
        """Estimates racing a delta apply must equal the pre-delta or the
        post-delta value — any other float means a reader saw a half
        merged synopsis."""
        query = "//A/$B"
        before = incremental.system.estimate(query)
        fragment = "<A><B/><B/><B/></A>" * 4
        after_expected = build_synopsis(doc(BASE_BODY + fragment)).estimate(query)
        seen = set()
        stop = threading.Event()
        failures = []

        def reader():
            while not stop.is_set():
                try:
                    seen.add(incremental.system.estimate(query))
                except Exception as error:  # pragma: no cover - the assertion
                    failures.append(error)
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        outcome = incremental.apply(incremental.scan_fragment(fragment))
        stop.set()
        for thread in threads:
            thread.join()
        assert not failures
        assert outcome.system.estimate(query) == after_expected
        assert seen <= {before, after_expected}


class TestPersistence:
    def test_incremental_state_round_trips(self, incremental):
        blob = persist.dumps(incremental.system)
        loaded = persist.loads(blob)
        assert loaded.incremental is not None
        outcome = loaded.apply_delta(loaded.incremental.scan_fragment(DELTA_BODY))
        combined = build_synopsis(doc(BASE_BODY + DELTA_BODY))
        for query in QUERIES:
            assert outcome.system.estimate(query) == combined.estimate(query), query

    def test_plain_snapshot_loads_without_incremental(self):
        plain = build_synopsis(doc(BASE_BODY))
        loaded = persist.loads(persist.dumps(plain))
        assert loaded.incremental is None

    def test_loaded_estimates_match_before_any_delta(self, incremental):
        loaded = persist.loads(persist.dumps(incremental.system))
        for query in QUERIES:
            assert loaded.estimate(query) == incremental.system.estimate(query)

    def test_malformed_incremental_section_rejected(self, incremental):
        payload = persist.system_to_dict(incremental.system)
        payload["incremental"]["paths"] = "not-a-list"
        with pytest.raises(persist.SynopsisLoadError):
            persist.incremental_from_dict(payload["incremental"])
