"""Registry-level delta maintenance and the staleness-race fix.

Two invariants guard live serving:

* re-registering a name **continues** its generation counter — compiled
  plans are cached per (name, generation), so a reset would let plans
  compiled against the previous registration serve the new system;
* a directory ``scan()`` must never clobber an in-memory (live or
  registered) entry with a same-named snapshot from disk — that race
  resurrected pre-append state in earlier revisions.
"""

from __future__ import annotations

import pytest

from repro import build_synopsis, persist
from repro.cluster.delta import DeltaUnsupportedError, IncrementalSynopsis
from repro.service import SynopsisRegistry

DOC = "<Root>" + "<A><B/><C/></A>" * 6 + "</Root>"


class TestGenerationContinuity:
    def test_reregister_continues_generation(self):
        registry = SynopsisRegistry()
        first = registry.register("demo", build_synopsis(DOC))
        second = registry.register("demo", build_synopsis(DOC))
        assert second.generation == first.generation + 1
        third = registry.register("demo", build_synopsis(DOC))
        assert third.generation == first.generation + 2

    def test_scan_leaves_in_memory_entries_alone(self, tmp_path):
        """The staleness race: a snapshot file named like a live entry
        must not replace it on the next scan."""
        persist.save(build_synopsis(DOC), str(tmp_path / "demo.json"))
        registry = SynopsisRegistry(str(tmp_path))
        registry.scan()
        # Replace with an in-memory registration (e.g. after a live
        # append) — its path is None and its state is newer than disk.
        mutated = build_synopsis(
            "<Root>" + "<A><B/><C/></A>" * 6 + "<A><B/></A>" + "</Root>"
        )
        live = registry.register("demo", mutated)
        registry.scan()
        entry = registry.get("demo")
        assert entry is live
        assert entry.system is mutated

    def test_get_does_not_reload_in_memory_entry_from_disk(self, tmp_path):
        persist.save(build_synopsis(DOC), str(tmp_path / "demo.json"))
        registry = SynopsisRegistry(str(tmp_path))
        registry.scan()
        mutated = build_synopsis("<Root><A><B/></A></Root>")
        registry.register("demo", mutated)
        assert registry.get("demo").system is mutated


class TestRegistryApplyDelta:
    def test_apply_delta_swaps_system_and_bumps_generation(self):
        registry = SynopsisRegistry()
        entry = registry.register_incremental("demo", DOC)
        old_system = entry.system
        generation = entry.generation
        maintainer = old_system.incremental
        partial = maintainer.scan_fragment("<A><B/><B/></A>")
        entry_after, outcome = registry.apply_delta("demo", partial)
        assert outcome.refreshed
        assert entry_after is entry
        assert entry.system is not old_system
        assert entry.generation == generation + 1
        expected = build_synopsis(
            "<Root>" + "<A><B/><C/></A>" * 6 + "<A><B/><B/></A>" + "</Root>"
        )
        assert entry.system.estimate("//A/$B") == expected.estimate("//A/$B")

    def test_apply_delta_fires_on_reload_hook(self):
        registry = SynopsisRegistry()
        registry.register_incremental("demo", DOC)
        events = []
        registry.on_reload = lambda name, entry: events.append(name)
        partial = registry.system("demo").incremental.scan_fragment("<A><C/></A>")
        registry.apply_delta("demo", partial)
        assert events == ["demo"]

    def test_apply_delta_writes_back_snapshot(self, tmp_path):
        maintainer = IncrementalSynopsis.build(DOC, name="demo")
        path = tmp_path / "demo.json"
        persist.save(maintainer.system, str(path))
        registry = SynopsisRegistry(str(tmp_path))
        registry.scan()
        stamp_before = path.stat().st_mtime_ns
        loaded = registry.system("demo")
        partial = loaded.incremental.scan_fragment("<A><B/><B/></A>")
        _, outcome = registry.apply_delta("demo", partial)
        assert outcome.refreshed
        # The merged state hit disk: a cold registry sees the delta.
        assert path.stat().st_mtime_ns != stamp_before
        cold = SynopsisRegistry(str(tmp_path))
        cold.scan()
        assert cold.system("demo").estimate("//A/$B") == registry.system(
            "demo"
        ).estimate("//A/$B")

    def test_write_back_does_not_trigger_self_reload(self, tmp_path):
        """The freshly written snapshot must not bounce back through hot
        reload (the registry re-stamps after writing)."""
        persist.save(IncrementalSynopsis.build(DOC, name="demo").system,
                     str(tmp_path / "demo.json"))
        registry = SynopsisRegistry(str(tmp_path))
        registry.scan()
        partial = registry.system("demo").incremental.scan_fragment("<A><C/></A>")
        entry, _ = registry.apply_delta("demo", partial)
        system_after = entry.system
        # A get() right after must serve the merged system object, not a
        # disk reload of it.
        assert registry.get("demo").system is system_after

    def test_apply_delta_rejects_plain_synopsis(self):
        registry = SynopsisRegistry()
        registry.register("demo", build_synopsis(DOC))
        maintainer = IncrementalSynopsis.build(DOC, name="other")
        partial = maintainer.scan_fragment("<A><B/></A>")
        with pytest.raises(DeltaUnsupportedError):
            registry.apply_delta("demo", partial)

    def test_deferred_delta_keeps_entry_serving_old_system(self):
        registry = SynopsisRegistry()
        entry = registry.register_incremental("demo", DOC, drift_threshold=0.9)
        served = entry.system
        generation = entry.generation
        partial = served.incremental.scan_fragment("<A><B/></A>")
        _, outcome = registry.apply_delta("demo", partial)
        assert not outcome.refreshed
        assert entry.system is served  # stale, never torn
        assert entry.generation == generation
