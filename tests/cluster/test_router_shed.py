"""Router vs overload: shed is not failure, cooldowns, tier propagation."""

from __future__ import annotations

import json
import http.client

import pytest

from repro.cluster.router import (
    ClusterRouter,
    RouterConfig,
    RouterServer,
)
from repro.service.client import ServiceError
from repro.service.server import RequestError


class FakeClient:
    """Scripted EndpointClient stand-in (see tests/cluster/test_router.py)."""

    def __init__(self, address, script, calls):
        self.address = address
        self._script = script
        self._calls = calls

    def _request(self, method, path, payload=None):
        self._calls.append((self.address, method, path, payload))
        return self._script(self.address, method, path, payload)

    def close(self):
        pass


def make_router(script, backends=3, **config_kwargs):
    calls = []
    addresses = ["10.0.0.%d:9000" % (i + 1) for i in range(backends)]
    config_kwargs.setdefault("replication", min(2, backends))
    router = ClusterRouter(
        addresses,
        config=RouterConfig(**config_kwargs),
        client_factory=lambda address: FakeClient(address, script, calls),
    )
    return router, calls, addresses


def ok(address, method, path, payload):
    return {
        "synopsis": payload["synopsis"],
        "generation": 1,
        "results": [
            {"query": q, "estimate": 1.0} for q in payload.get("queries", [])
        ]
        or [{"query": payload.get("query"), "estimate": 1.0}],
        "served_by": address,
    }


def shed_error(retry_after_s=0.5):
    return ServiceError(
        503, "tier 'bulk' at capacity", "overloaded", retry_after_s=retry_after_s
    )


class TestShedIsNotFailure:
    def test_shed_primary_fails_over_without_breaker_damage(self):
        shedding = set()

        def script(address, method, path, payload):
            if address in shedding:
                raise shed_error()
            return ok(address, method, path, payload)

        router, calls, _ = make_router(script)
        primary = router.ring.node_for("demo")
        shedding.add(primary)
        document = router.handle_estimate({"synopsis": "demo", "query": "//A/$B"})
        assert document["served_by"] != primary
        # The shed backend's breaker saw a *success* (it answered) and
        # the shed was counted as a shed, not a failover.
        backend = router.backends[primary]
        assert backend.breaker.allow()
        assert backend.breaker.state == "closed"
        assert backend.sheds_total == 1
        assert router.metrics.counter("backend_sheds_total") == 1
        assert router.metrics.counter("failovers_total") == 0

    def test_shed_backend_cools_for_its_retry_after(self):
        shedding = set()

        def script(address, method, path, payload):
            if address in shedding:
                raise shed_error(retry_after_s=30.0)
            return ok(address, method, path, payload)

        router, calls, _ = make_router(script)
        primary = router.ring.node_for("demo")
        shedding.add(primary)
        router.handle_estimate({"synopsis": "demo", "query": "//A/$B"})
        assert router.backends[primary].cooling
        # Even though the backend would now succeed, the router routes
        # around it for the rest of the Retry-After window.
        shedding.clear()
        calls.clear()
        # Clear last-good stickiness so the primary would be first again.
        router._last_good.clear()
        router.handle_estimate({"synopsis": "demo", "query": "//A/$B"})
        assert primary not in [address for address, _, _, _ in calls]

    def test_cooldown_expiry_restores_the_backend(self):
        def script(address, method, path, payload):
            return ok(address, method, path, payload)

        router, calls, _ = make_router(script)
        primary = router.ring.node_for("demo")
        backend = router.backends[primary]
        backend.note_shed(30.0)
        assert backend.cooling
        backend._shed_until = 0.0  # the window elapsed
        assert not backend.cooling
        router.handle_estimate({"synopsis": "demo", "query": "//A/$B"})
        assert primary in [address for address, _, _, _ in calls]

    def test_all_replicas_shedding_is_503_with_soonest_retry_after(self):
        hints = {}

        def script(address, method, path, payload):
            raise shed_error(retry_after_s=hints[address])

        router, _, addresses = make_router(script, backends=2, replication=2)
        hints = {addresses[0]: 4.0, addresses[1]: 2.0}
        with pytest.raises(RequestError) as info:
            router.handle_estimate({"synopsis": "demo", "query": "//A/$B"})
        assert info.value.status == 503
        assert info.value.kind == "overloaded"
        assert info.value.retry_after_s == 2.0

    def test_shed_without_hint_defaults_to_one_second(self):
        def script(address, method, path, payload):
            raise shed_error(retry_after_s=None)

        router, _, _ = make_router(script, backends=2, replication=2)
        with pytest.raises(RequestError) as info:
            router.handle_estimate({"synopsis": "demo", "query": "//A/$B"})
        assert info.value.retry_after_s == 1.0

    def test_transport_failure_still_trips_the_breaker(self):
        def script(address, method, path, payload):
            raise ServiceError(0, "connection refused", "connection")

        router, _, addresses = make_router(script, backends=2, replication=2)
        with pytest.raises(RequestError) as info:
            router.handle_estimate({"synopsis": "demo", "query": "//A/$B"})
        # Nothing answered: that is 502 replicas_exhausted, not 503.
        assert info.value.status == 502
        assert all(
            router.backends[address].breaker._consecutive_failures > 0
            for address in addresses
        )


class TestScatterUnderShed:
    def test_scatter_survives_one_shedding_replica(self):
        shedding = set()

        def script(address, method, path, payload):
            if address in shedding:
                raise shed_error()
            return ok(address, method, path, payload)

        router, _, addresses = make_router(
            script, backends=3, replication=3, scatter_min=4
        )
        shedding.add(addresses[0])
        queries = ["//A/$B"] * 6
        document = router.handle_estimate({"synopsis": "demo", "queries": queries})
        assert document["count"] == 6
        assert "degraded" not in document
        assert all("estimate" in r for r in document["results"])

    def test_tier_rides_into_every_scatter_chunk(self):
        def script(address, method, path, payload):
            return ok(address, method, path, payload)

        router, calls, _ = make_router(
            script, backends=3, replication=3, scatter_min=4
        )
        # Distinct texts: duplicates would collapse in the router's
        # scatter dedup and serve from a single chunk.
        queries = ["//A%d/$B" % index for index in range(6)]
        router.handle_estimate(
            {"synopsis": "demo", "queries": queries, "tier": "bulk"}
        )
        chunk_payloads = [payload for _, _, _, payload in calls]
        assert len(chunk_payloads) >= 2  # it actually scattered
        assert all(payload.get("tier") == "bulk" for payload in chunk_payloads)

    def test_metrics_document_counts_backend_sheds(self):
        def script(address, method, path, payload):
            raise shed_error()

        router, _, _ = make_router(script, backends=2, replication=2)
        with pytest.raises(RequestError):
            router.handle_estimate({"synopsis": "demo", "query": "//A/$B"})
        cluster = router.metrics_document()["cluster"]
        assert cluster["backend_sheds_total"] == 2


class TestRouterHTTPFront:
    def run_server(self, script, **config_kwargs):
        router, calls, addresses = make_router(script, **config_kwargs)
        server = RouterServer(router, host="127.0.0.1", port=0).start()
        return router, calls, server

    def test_header_tier_is_injected_into_the_body(self):
        _, calls, server = self.run_server(ok)
        try:
            connection = http.client.HTTPConnection(
                "127.0.0.1", server.port, timeout=10
            )
            connection.request(
                "POST",
                "/estimate",
                json.dumps({"synopsis": "demo", "query": "//A/$B"}),
                {"Content-Type": "application/json", "X-Repro-Tier": "standard"},
            )
            response = connection.getresponse()
            response.read()
            assert response.status == 200
            assert calls[0][3]["tier"] == "standard"
            connection.close()
        finally:
            server.close()

    def test_all_shed_reply_carries_retry_after_header(self):
        def script(address, method, path, payload):
            raise shed_error(retry_after_s=2.5)

        _, _, server = self.run_server(script, backends=2, replication=2)
        try:
            connection = http.client.HTTPConnection(
                "127.0.0.1", server.port, timeout=10
            )
            connection.request(
                "POST",
                "/estimate",
                json.dumps({"synopsis": "demo", "query": "//A/$B"}),
                {"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            body = json.loads(response.read())
            assert response.status == 503
            assert response.getheader("Retry-After") == "2.5"
            assert body["error"]["kind"] == "overloaded"
            connection.close()
        finally:
            server.close()
