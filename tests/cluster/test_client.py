"""The unified client: ``repro.connect`` target forms, seed failover,
structured results, and the ServiceClient deprecation shim."""

from __future__ import annotations

import warnings

import pytest

import repro
from repro import persist
from repro.cluster.client import Client, connect
from repro.cluster.delta import IncrementalSynopsis
from repro.core.result import EstimateResult
from repro.service import EstimationService, ServiceServer, SynopsisRegistry
from repro.service.client import EndpointClient, ServiceClient, ServiceError

BODY = "".join("<A><B/><C/></A>" for _ in range(8))
DOC = "<Root>" + BODY + "</Root>"


@pytest.fixture()
def backend(tmp_path):
    maintainer = IncrementalSynopsis.build(DOC, name="demo")
    persist.save(maintainer.system, str(tmp_path / "demo.json"))
    registry = SynopsisRegistry(str(tmp_path))
    registry.scan()
    with ServiceServer(EstimationService(registry), port=0) as server:
        yield server, maintainer


class TestConnectTargets:
    def test_host_port_string(self, backend):
        server, _ = backend
        with repro.connect("%s:%d" % (server.host, server.port)) as client:
            result = client.estimate("demo", "//A/$B")
            assert isinstance(result, EstimateResult)
            assert result.query == "//A/$B"
            assert float(result) == result.value

    def test_url_string(self, backend):
        server, _ = backend
        with connect("http://%s:%d" % (server.host, server.port)) as client:
            assert client.estimate("demo", "//A/$B").value > 0

    def test_host_port_pair(self, backend):
        server, _ = backend
        with connect((server.host, server.port)) as client:
            assert client.estimate("demo", "//A/$B").value > 0

    def test_bad_target_rejected(self):
        with pytest.raises(TypeError):
            connect(42)

    def test_empty_seed_list_rejected(self):
        with pytest.raises(ValueError):
            Client([])


class TestSeedFailover:
    def test_dead_seed_falls_through_to_live_one(self, backend):
        server, _ = backend
        # First seed points nowhere (port 1 refuses), second is real.
        with connect(
            ["127.0.0.1:1", "%s:%d" % (server.host, server.port)], timeout=2.0
        ) as client:
            result = client.estimate("demo", "//A/$B")
            assert result.value > 0
            # The live seed is now preferred; a second call sticks.
            assert client.estimate("demo", "//A/$C").value >= 0

    def test_all_seeds_dead_raises_transport_error(self):
        with connect(["127.0.0.1:1", "127.0.0.1:2"], timeout=1.0) as client:
            with pytest.raises(ServiceError) as info:
                client.estimate("demo", "//A/$B")
            assert info.value.status == 0

    def test_http_error_from_a_live_seed_is_authoritative(self, backend):
        """A seed that answered — even with a 404 — wins; the client
        must not shop the request around the other seeds."""
        server, _ = backend
        address = "%s:%d" % (server.host, server.port)
        with connect([address, address]) as client:
            with pytest.raises(ServiceError) as info:
                client.estimate("nope", "//A/$B")
            assert info.value.status == 404


class TestStructuredResults:
    def test_batch_returns_results_in_order(self, backend):
        server, maintainer = backend
        queries = ["//A/$B", "//A/$C", "/Root/$A"]
        with connect("%s:%d" % (server.host, server.port)) as client:
            results = client.estimate_batch("demo", queries)
        assert [r.query for r in results] == queries
        for result in results:
            assert result.value == maintainer.system.estimate(result.query)

    def test_trace_passthrough(self, backend):
        server, _ = backend
        with connect("%s:%d" % (server.host, server.port)) as client:
            result = client.estimate("demo", "//A/$B", trace=True)
        assert result.trace is not None

    def test_topology_is_none_for_plain_service(self, backend):
        server, _ = backend
        with connect("%s:%d" % (server.host, server.port)) as client:
            assert client.topology() is None

    def test_health_and_synopses_passthrough(self, backend):
        server, _ = backend
        with connect("%s:%d" % (server.host, server.port)) as client:
            assert client.healthz()["status"] == "ok"
            names = {info["name"] for info in client.synopses()}
            assert "demo" in names

    def test_apply_delta_through_client(self, backend):
        server, maintainer = backend
        partial = maintainer.scan_fragment("<A><B/><B/></A>")
        with connect("%s:%d" % (server.host, server.port)) as client:
            outcome = client.apply_delta("demo", partial, force_refresh=True)
        assert outcome["refreshed"] is True
        assert outcome["generation"] >= 1


class TestDeprecationShim:
    def test_service_client_warns_and_still_works(self, backend):
        server, _ = backend
        with pytest.warns(DeprecationWarning, match="repro.connect"):
            client = ServiceClient(host=server.host, port=server.port)
        try:
            assert isinstance(client, EndpointClient)
            assert client.estimate("demo", "//A/$B") > 0
        finally:
            client.close()

    def test_endpoint_client_stays_silent(self, backend):
        server, _ = backend
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            client = EndpointClient(host=server.host, port=server.port)
            client.close()


class TestWireKinds:
    def test_cluster_error_kinds_registered(self):
        from repro.errors import WIRE_KINDS

        for kind in ("delta", "delta_unsupported", "cluster", "replicas_exhausted"):
            assert kind in WIRE_KINDS, kind
