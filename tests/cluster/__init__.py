"""Cluster tier tests: deltas, ring, router, unified client."""
