"""Scatter-gather router: placement, failover, degradation, fan-out.

Two layers of coverage:

* **Transport-free** — drive :class:`ClusterRouter` directly with
  scripted fake clients (the ``client_factory`` seam) to pin down the
  failover and degradation decision logic without sockets;
* **End-to-end** — three real :class:`ServiceServer` backends behind a
  real :class:`RouterServer`, including killing a backend mid-run.
"""

from __future__ import annotations

import pytest

from repro import persist
from repro.cluster.delta import IncrementalSynopsis
from repro.cluster.router import (
    ClusterRouter,
    ReplicasExhaustedError,
    RouterConfig,
    RouterServer,
    parse_address,
)
from repro.service import EstimationService, ServiceServer, SynopsisRegistry
from repro.service.client import EndpointClient, ServiceError
from repro.service.server import RequestError

BODY = "".join(
    "<A><B/><C><D/></C></A>" if i % 2 else "<A><B/><B/></A>" for i in range(12)
)
DOC = "<Root>" + BODY + "</Root>"
QUERIES = ["//A/$B", "//A/$C", "//A/C/$D", "/Root/$A", "//A[/C]/$B", "//A/$D"]


# ----------------------------------------------------------------------
# Transport-free: scripted backends
# ----------------------------------------------------------------------


class FakeClient:
    """A scripted stand-in for EndpointClient.

    ``script`` maps an address to a callable ``(method, path, payload)``
    -> document (or raises ServiceError).  Calls are recorded per
    address so tests can assert who was asked what.
    """

    def __init__(self, address, script, calls):
        self.address = address
        self._script = script
        self._calls = calls

    def _request(self, method, path, payload=None):
        self._calls.append((self.address, method, path, payload))
        return self._script(self.address, method, path, payload)

    def close(self):
        pass


def make_router(script, backends=3, **config_kwargs):
    calls = []
    addresses = ["10.0.0.%d:9000" % (i + 1) for i in range(backends)]
    config_kwargs.setdefault("replication", min(2, backends))
    router = ClusterRouter(
        addresses,
        config=RouterConfig(**config_kwargs),
        client_factory=lambda address: FakeClient(address, script, calls),
    )
    return router, calls, addresses


def ok_single(address, method, path, payload):
    return {
        "synopsis": payload["synopsis"],
        "generation": 1,
        "results": [
            {"query": q, "estimate": 1.0, "result": {"query": q, "estimate": 1.0}}
            for q in payload.get("queries", [])
        ]
        or [{"query": payload.get("query"), "estimate": 1.0}],
        "served_by": address,
    }


class TestFailover:
    def test_healthy_primary_answers(self):
        router, calls, _ = make_router(ok_single)
        document = router.handle_estimate({"synopsis": "demo", "query": "//A/$B"})
        assert document["served_by"] == document["backend"]
        assert len(calls) == 1

    def test_transport_error_fails_over_to_next_replica(self):
        dead = set()

        def script(address, method, path, payload):
            if address in dead:
                raise ServiceError(0, "connection refused", "connection")
            return ok_single(address, method, path, payload)

        router, calls, _ = make_router(script)
        primary = router.ring.node_for("demo")
        dead.add(primary)
        document = router.handle_estimate({"synopsis": "demo", "query": "//A/$B"})
        assert document["served_by"] != primary
        assert [c[0] for c in calls][0] == primary  # primary tried first
        assert router.metrics.counter("failovers_total") == 1

    def test_last_good_replica_preferred_after_failover(self):
        dead = set()

        def script(address, method, path, payload):
            if address in dead:
                raise ServiceError(0, "connection refused", "connection")
            return ok_single(address, method, path, payload)

        router, calls, _ = make_router(script)
        dead.add(router.ring.node_for("demo"))
        first = router.handle_estimate({"synopsis": "demo", "query": "//A/$B"})
        calls.clear()
        second = router.handle_estimate({"synopsis": "demo", "query": "//A/$B"})
        # The replica that answered is now tried first — no repeat knock
        # on the dead primary.
        assert second["served_by"] == first["served_by"]
        assert calls[0][0] == first["served_by"]

    def test_unknown_synopsis_tries_next_replica_then_502(self):
        """A 404 can mean 'this replica has not synced the snapshot yet',
        so the router asks the others before giving up."""

        def script(address, method, path, payload):
            raise ServiceError(404, "no synopsis 'demo'", "unknown_synopsis")

        router, calls, _ = make_router(script)
        with pytest.raises(RequestError) as info:
            router.handle_estimate({"synopsis": "demo", "query": "//A/$B"})
        assert info.value.status == 502
        assert info.value.kind == ReplicasExhaustedError.kind
        assert len(calls) == router.config.replication  # every replica asked

    def test_client_error_propagates_without_failover(self):
        """A backend that *answered* with a request-level 4xx is
        authoritative — no other replica will parse the query
        differently."""

        def script(address, method, path, payload):
            raise ServiceError(400, "bad query", "query_syntax")

        router, calls, _ = make_router(script)
        with pytest.raises(RequestError) as info:
            router.handle_estimate({"synopsis": "demo", "query": "///"})
        assert info.value.status == 400
        assert info.value.kind == "query_syntax"
        assert len(calls) == 1

    def test_all_replicas_down_is_502(self):
        def script(address, method, path, payload):
            raise ServiceError(0, "connection refused", "connection")

        router, _, _ = make_router(script)
        with pytest.raises(RequestError) as info:
            router.handle_estimate({"synopsis": "demo", "query": "//A/$B"})
        assert info.value.status == 502

    def test_breaker_opens_after_repeated_transport_failures(self):
        def script(address, method, path, payload):
            raise ServiceError(0, "connection refused", "connection")

        router, calls, _ = make_router(
            script, breaker_threshold=3, breaker_recovery_s=60.0
        )
        for _ in range(4):
            with pytest.raises(RequestError):
                router.handle_estimate({"synopsis": "demo", "query": "//A/$B"})
        # 2 replicas x 3 failures trip both breakers; the 4th round
        # finds every circuit open and knocks on nobody.
        assert len(calls) == 2 * 3

    def test_bad_request_shapes(self):
        router, _, _ = make_router(ok_single)
        with pytest.raises(RequestError):
            router.handle_estimate(["not", "a", "dict"])
        with pytest.raises(RequestError):
            router.handle_estimate({"query": "//A/$B"})  # no synopsis


class TestScatter:
    def test_small_batches_stay_on_one_backend(self):
        router, calls, _ = make_router(ok_single, scatter_min=4)
        document = router.handle_estimate(
            {"synopsis": "demo", "queries": QUERIES[:3]}
        )
        assert "scattered" not in document
        assert len(calls) == 1

    def test_batch_scatters_and_preserves_query_order(self):
        router, calls, _ = make_router(ok_single, scatter_min=4)
        document = router.handle_estimate({"synopsis": "demo", "queries": QUERIES})
        assert document["scattered"] == router.config.replication
        assert document["count"] == len(QUERIES)
        assert [item["query"] for item in document["results"]] == QUERIES
        assert len(calls) == document["scattered"]

    def test_chunk_degrades_only_when_every_replica_fails_it(self):
        """A poisoned chunk comes back as per-item errors; the sibling
        chunk's answers are real, and the batch is flagged degraded."""

        def script(address, method, path, payload):
            if "//POISON" in payload.get("queries", []):
                raise ServiceError(503, "backend exploded", "internal")
            return ok_single(address, method, path, payload)

        router, _, _ = make_router(script, scatter_min=4)
        queries = ["//POISON", "//A/$B", "//A/$C", "//A/$D"]
        document = router.handle_estimate({"synopsis": "demo", "queries": queries})
        assert document["degraded"] is True
        assert document["count"] == len(queries)
        poisoned = document["results"][0]
        assert poisoned["error"]["kind"] == ReplicasExhaustedError.kind
        for item in document["results"][2:]:
            assert item["estimate"] == 1.0

    def test_batch_with_every_chunk_failing_is_502(self):
        def script(address, method, path, payload):
            raise ServiceError(0, "connection refused", "connection")

        router, _, _ = make_router(script, scatter_min=2)
        with pytest.raises(RequestError) as info:
            router.handle_estimate({"synopsis": "demo", "queries": QUERIES})
        assert info.value.status == 502


class TestDeltaFanout:
    def test_delta_reaches_every_replica(self):
        def script(address, method, path, payload):
            assert path == "/delta"
            return {"generation": 2, "refreshed": True}

        router, calls, _ = make_router(script)
        document = router.handle_delta({"synopsis": "demo", "partial": {}})
        assert document["applied"] == router.config.replication
        assert document["failed"] == 0
        assert {c[0] for c in calls} == {
            b.address for b in router.replicas("demo")
        }

    def test_partial_fanout_failure_reported_per_replica(self):
        failing = set()

        def script(address, method, path, payload):
            if address in failing:
                raise ServiceError(503, "mid-restart", "internal")
            return {"generation": 2, "refreshed": True}

        router, _, _ = make_router(script)
        replicas = router.ring.replicas_for("demo", 2)
        failing.add(replicas[1])
        document = router.handle_delta({"synopsis": "demo", "partial": {}})
        assert document["applied"] == 1
        assert document["failed"] == 1
        failed = [r for r in document["replicas"] if "error" in r]
        assert failed[0]["backend"] == replicas[1]

    def test_unanimous_client_rejection_propagates(self):
        def script(address, method, path, payload):
            raise ServiceError(409, "not delta-capable", "delta_unsupported")

        router, _, _ = make_router(script)
        with pytest.raises(RequestError) as info:
            router.handle_delta({"synopsis": "demo", "partial": {}})
        assert info.value.status == 409
        assert info.value.kind == "delta_unsupported"


class TestParseAddress:
    @pytest.mark.parametrize(
        "address",
        ["localhost:8750", "http://localhost:8750", "https://localhost:8750/"],
    )
    def test_forms(self, address):
        assert parse_address(address) == ("localhost", 8750)

    def test_missing_port_rejected(self):
        with pytest.raises(ValueError):
            parse_address("localhost")


# ----------------------------------------------------------------------
# End-to-end: real backends behind a real router
# ----------------------------------------------------------------------


@pytest.fixture()
def cluster(tmp_path):
    maintainer = IncrementalSynopsis.build(DOC, name="demo")
    servers = []
    for index in range(3):
        shard_dir = tmp_path / ("backend-%d" % index)
        shard_dir.mkdir()
        persist.save(maintainer.system, str(shard_dir / "demo.json"))
        registry = SynopsisRegistry(str(shard_dir))
        registry.scan()
        server = ServiceServer(EstimationService(registry), port=0).start()
        servers.append(server)
    addresses = ["%s:%d" % (s.host, s.port) for s in servers]
    router = ClusterRouter(
        addresses, config=RouterConfig(replication=2, scatter_min=4)
    )
    try:
        yield {
            "servers": servers,
            "addresses": addresses,
            "router": router,
            "reference": maintainer.system,
            "maintainer": maintainer,
        }
    finally:
        router.close()
        for server in servers:
            try:
                server.close()
            except Exception:
                pass


class TestEndToEnd:
    def test_single_estimate_matches_local(self, cluster):
        router, reference = cluster["router"], cluster["reference"]
        document = router.handle_estimate({"synopsis": "demo", "query": "//A/$B"})
        assert document["estimate"] == reference.estimate("//A/$B")
        assert document["result"]["value"] == document["estimate"]
        assert document["backend"] in cluster["addresses"]

    def test_scattered_batch_matches_local_in_order(self, cluster):
        router, reference = cluster["router"], cluster["reference"]
        document = router.handle_estimate({"synopsis": "demo", "queries": QUERIES})
        assert document["scattered"] == 2
        assert [item["query"] for item in document["results"]] == QUERIES
        for item in document["results"]:
            assert item["estimate"] == reference.estimate(item["query"])

    def test_killed_backend_yields_zero_failures(self, cluster):
        router, reference = cluster["router"], cluster["reference"]
        victim = router.replicas("demo")[0].address  # the primary, not a bystander
        cluster["servers"][cluster["addresses"].index(victim)].close()
        # Drop the pooled keep-alive connections too: the stdlib server
        # finishes open connections after close(), which is graceful
        # drain, not the hard kill this test wants.
        router.backends[victim].close()
        for _ in range(3):  # repeated batches: failover must stick
            document = router.handle_estimate(
                {"synopsis": "demo", "queries": QUERIES}
            )
            assert "degraded" not in document
            for item in document["results"]:
                assert item["estimate"] == reference.estimate(item["query"])

    def test_healthz_degrades_when_a_backend_dies(self, cluster):
        router = cluster["router"]
        assert router.healthz()["status"] == "ok"
        dead = cluster["addresses"][1]
        cluster["servers"][1].close()
        router.backends[dead].close()  # hard kill, not graceful drain
        health = router.healthz()
        assert health["status"] == "degraded"
        assert "error" in health["backends"][dead]

    def test_cluster_topology_document(self, cluster):
        document = cluster["router"].cluster_document()
        assert len(document["backends"]) == 3
        assert document["replication"] == 2
        placement = document["placement"]["demo"]
        assert len(placement) == 2
        assert set(placement) <= set(cluster["addresses"])

    def test_synopses_union_lists_replicas(self, cluster):
        inventory = cluster["router"].synopses()["synopses"]
        names = {info["name"] for info in inventory}
        assert "demo" in names
        demo = next(info for info in inventory if info["name"] == "demo")
        # Every backend holds a copy (each shard dir got the snapshot).
        assert len(demo["replicas"]) == 3

    def test_delta_fans_out_and_estimates_move(self, cluster):
        router = cluster["router"]
        maintainer = cluster["maintainer"]
        fragment = "<A><B/><B/><B/></A>" * 3
        partial = persist.partial_to_dict(maintainer.scan_fragment(fragment))
        document = router.handle_delta(
            {"synopsis": "demo", "partial": partial, "force_refresh": True}
        )
        assert document["applied"] == 2
        assert document["failed"] == 0
        # Both replicas now serve the merged synopsis.
        from repro.build.builder import build_synopsis

        expected = build_synopsis("<Root>" + BODY + fragment + "</Root>").estimate(
            "//A/$B"
        )
        for replica in router.replicas("demo"):
            reply = replica.call(
                "POST", "/estimate", {"synopsis": "demo", "query": "//A/$B"}
            )
            assert reply["estimate"] == expected

    def test_router_server_speaks_service_wire(self, cluster):
        with RouterServer(cluster["router"], host="127.0.0.1", port=0) as front:
            client = EndpointClient(host=front.host, port=front.port)
            try:
                value = client.estimate("demo", "//A/$B")
                assert value == cluster["reference"].estimate("//A/$B")
                health = client.healthz()
                assert health["status"] == "ok"
                metrics = client.metrics()
                assert "cluster" in metrics
            finally:
                client.close()
