"""Estimate response wire format v2: ``result`` primary, legacy flat
fields behind the compat switch.

The consolidation must be invisible to existing deployments: with
``compat_fields`` on (the default) a response carries both the versioned
``result`` object and the PR-era flat mirror, and the old flat-reading
client works unchanged — that is the round-trip test.
"""

from __future__ import annotations

import pytest

from repro import build_synopsis, persist
from repro.core.result import RESULT_FORMAT_VERSION, EstimateResult
from repro.service import EstimationService, ServiceServer, SynopsisRegistry
from repro.service.client import EndpointClient
from repro.service.config import ServerConfig

DOC = "<Root>" + "<A><B/><C/></A>" * 6 + "</Root>"
FLAT_FIELDS = ("query", "estimate", "route", "cached", "kernel")


@pytest.fixture()
def registry(tmp_path):
    persist.save(build_synopsis(DOC), str(tmp_path / "demo.json"))
    registry = SynopsisRegistry(str(tmp_path))
    registry.scan()
    return registry


class TestCompatDefaultOn:
    def test_flat_mirror_and_result_agree(self, registry):
        service = EstimationService(registry)
        body = service.estimate("demo", "//A/$B")
        assert body["result"]["version"] == RESULT_FORMAT_VERSION == 2
        for field in ("query", "estimate", "route", "cached"):
            assert field in body, field
        assert body["estimate"] == body["result"]["value"]
        assert body["query"] == body["result"]["query"]
        assert body["route"] == body["result"]["route"]

    def test_result_parses_into_estimate_result(self, registry):
        body = EstimationService(registry).estimate("demo", "//A/$B")
        result = EstimateResult.from_dict(body["result"])
        assert result.value == body["estimate"]
        assert result.kernel is not None  # v2 addition rides along


class TestCompatSwitch:
    def test_server_config_off_drops_flat_fields(self, registry):
        service = EstimationService(registry, compat_fields=False)
        body = service.estimate("demo", "//A/$B")
        for field in FLAT_FIELDS:
            assert field not in body, field
        # The primary object alone is a complete answer.
        result = EstimateResult.from_dict(body["result"])
        assert result.value > 0

    def test_per_request_override_off(self, registry):
        service = EstimationService(registry)  # compat on by default
        body = service.estimate("demo", "//A/$B", compat=False)
        assert "estimate" not in body
        assert "result" in body

    def test_per_request_override_on(self, registry):
        service = EstimationService(registry, compat_fields=False)
        body = service.estimate("demo", "//A/$B", compat=True)
        assert body["estimate"] == body["result"]["value"]


class TestLegacyClientRoundTrip:
    """The PR-era flat-field reader (EndpointClient.estimate /
    estimate_batch read ``estimate`` off the top level) against a v2
    server with default settings."""

    def test_flat_reading_client_works_unchanged(self, registry):
        reference = build_synopsis(DOC)
        with ServiceServer(EstimationService(registry), port=0) as server:
            client = EndpointClient(host=server.host, port=server.port)
            try:
                assert client.estimate("demo", "//A/$B") == reference.estimate(
                    "//A/$B"
                )
                queries = ["//A/$B", "//A/$C", "/Root/$A", "//A/$B"]
                values = client.estimate_batch("demo", queries)
                assert values == [reference.estimate(q) for q in queries]
            finally:
                client.close()

    def test_wire_body_over_http_carries_both_shapes(self, registry):
        with ServiceServer(EstimationService(registry), port=0) as server:
            client = EndpointClient(host=server.host, port=server.port)
            try:
                body = client._request(
                    "POST", "/estimate", {"synopsis": "demo", "query": "//A/$B"}
                )
            finally:
                client.close()
        assert body["result"]["version"] == 2
        assert body["estimate"] == body["result"]["value"]
