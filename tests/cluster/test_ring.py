"""Consistent-hash ring: placement determinism and remap bounds."""

from __future__ import annotations

import pytest

from repro.cluster.ring import DEFAULT_VNODES, HashRing

BACKENDS = ["127.0.0.1:9001", "127.0.0.1:9002", "127.0.0.1:9003"]
KEYS = ["synopsis-%03d" % i for i in range(200)]


class TestPlacement:
    def test_deterministic_across_instances(self):
        """Every router (and placement-predicting client) must compute
        the same ring from the same backend list — md5, not the seeded
        builtin hash."""
        a = HashRing(BACKENDS)
        b = HashRing(list(BACKENDS))
        for key in KEYS:
            assert a.node_for(key) == b.node_for(key)
            assert a.replicas_for(key, 2) == b.replicas_for(key, 2)

    def test_backend_order_does_not_matter(self):
        a = HashRing(BACKENDS)
        b = HashRing(list(reversed(BACKENDS)))
        for key in KEYS:
            assert a.node_for(key) == b.node_for(key)

    def test_replicas_are_distinct_and_primary_first(self):
        ring = HashRing(BACKENDS)
        for key in KEYS:
            replicas = ring.replicas_for(key, 3)
            assert len(replicas) == len(set(replicas)) == 3
            assert replicas[0] == ring.node_for(key)

    def test_replica_count_clamped_to_backends(self):
        ring = HashRing(BACKENDS[:2])
        assert sorted(ring.replicas_for("k", 5)) == sorted(BACKENDS[:2])

    def test_every_backend_owns_some_keys(self):
        ring = HashRing(BACKENDS)
        owners = {ring.node_for(key) for key in KEYS}
        assert owners == set(BACKENDS)


class TestRemapBounds:
    def test_adding_a_backend_remaps_a_bounded_share(self):
        """The point of consistent hashing: growing the ring moves
        roughly 1/B of the keys, not everything."""
        before = HashRing(BACKENDS)
        after = HashRing(BACKENDS + ["127.0.0.1:9004"])
        moved = sum(
            1 for key in KEYS if before.node_for(key) != after.node_for(key)
        )
        # Expect ~1/4 of keys to move; anything moving to a *surviving*
        # backend would be a modulo-style reshuffle.  Allow slack for
        # hash variance but reject wholesale remaps.
        assert moved <= len(KEYS) // 2
        for key in KEYS:
            if before.node_for(key) != after.node_for(key):
                assert after.node_for(key) == "127.0.0.1:9004"

    def test_removing_a_backend_only_moves_its_keys(self):
        before = HashRing(BACKENDS)
        after = HashRing(BACKENDS[:2])
        for key in KEYS:
            if before.node_for(key) in after.backends:
                assert after.node_for(key) == before.node_for(key)


class TestValidation:
    def test_empty_backends_rejected(self):
        with pytest.raises(ValueError):
            HashRing([])

    def test_duplicate_backends_rejected(self):
        """A duplicated backend would silently halve effective
        replication for every key it owns."""
        with pytest.raises(ValueError, match="duplicate"):
            HashRing(["a:1", "b:2", "a:1"])

    def test_bad_vnodes_rejected(self):
        with pytest.raises(ValueError):
            HashRing(BACKENDS, vnodes=0)

    def test_bad_replica_count_rejected(self):
        with pytest.raises(ValueError):
            HashRing(BACKENDS).replicas_for("k", 0)

    def test_default_vnodes(self):
        ring = HashRing(BACKENDS)
        assert ring.vnodes == DEFAULT_VNODES
        assert len(ring) == 3
