"""Tests for Query/QueryNode structure helpers."""

import pytest

from repro.xpath import parse_query
from repro.xpath.ast import Query, QueryAxis, QueryNode


class TestQueryNode:
    def test_single_inline_edge_enforced(self):
        node = QueryNode("A")
        node.add_edge(QueryAxis.CHILD, QueryNode("B"), is_predicate=False)
        with pytest.raises(ValueError):
            node.add_edge(QueryAxis.CHILD, QueryNode("C"), is_predicate=False)

    def test_predicates_unbounded(self):
        node = QueryNode("A")
        for tag in "BCD":
            node.add_edge(QueryAxis.CHILD, QueryNode(tag), is_predicate=True)
        assert len(node.predicate_edges()) == 3

    def test_empty_tag_rejected(self):
        with pytest.raises(ValueError):
            QueryNode("")


class TestQueryStructure:
    def test_node_ids_unique(self):
        query = parse_query("//A[/B[/C]/D]/E")
        ids = [node.node_id for node in query.nodes()]
        assert sorted(ids) == list(range(len(query)))

    def test_parent_links(self):
        query = parse_query("//A[/B]/C")
        a = query.root
        for node in query.nodes():
            link = query.parent_link(node)
            if node is a:
                assert link is None
            else:
                assert link[1] is a

    def test_spine_to(self):
        query = parse_query("//A[/B/C]/D")
        c = query.find("C")
        assert [n.tag for n in query.spine_to(c)] == ["A", "B", "C"]
        assert [n.tag for n in query.spine_to(query.root)] == ["A"]

    def test_spine_crosses_order_edges(self):
        query = parse_query("//A[/B/folls::C/D]")
        d = query.find("D")
        assert [n.tag for n in query.spine_to(d)] == ["A", "B", "C", "D"]

    def test_find_ambiguous(self):
        query = parse_query("//A/B[/A]")
        with pytest.raises(ValueError):
            query.find("A")
        assert query.find("B").tag == "B"

    def test_len(self):
        assert len(parse_query("//A[/B]/C")) == 3

    def test_root_axis_must_be_structural(self):
        with pytest.raises(ValueError):
            Query(QueryNode("A"), QueryAxis.FOLLS)

    def test_foreign_target_rejected(self):
        query = parse_query("//A/B")
        stranger = QueryNode("Z")
        with pytest.raises(ValueError):
            Query(query.root, QueryAxis.CHILD, target=stranger)

    def test_iter_edges_complete(self):
        query = parse_query("//A[/B/folls::C]/D")
        edges = [(axis, s.tag, d.tag) for axis, s, d in query.iter_edges()]
        assert (QueryAxis.CHILD, "A", "B") in edges
        assert (QueryAxis.FOLLS, "B", "C") in edges
        assert (QueryAxis.CHILD, "A", "D") in edges
        assert len(edges) == 3
