"""Tests for the XPath subset parser and AST round-tripping."""

import pytest

from repro.xpath import XPathSyntaxError, parse_query
from repro.xpath.ast import QueryAxis


class TestSimpleQueries:
    def test_child_chain(self):
        query = parse_query("/Root/A/B")
        assert query.root_axis is QueryAxis.CHILD
        assert query.tags() == ["Root", "A", "B"]
        assert query.target.tag == "B"

    def test_descendant_start(self):
        query = parse_query("//A/B")
        assert query.root_axis is QueryAxis.DESCENDANT
        assert query.root.tag == "A"

    def test_mixed_axes(self):
        query = parse_query("//A//B/C")
        axes = [axis for axis, _, _ in query.iter_edges()]
        assert axes == [QueryAxis.DESCENDANT, QueryAxis.CHILD]

    def test_long_axis_spellings(self):
        query = parse_query("/child::A/descendant::B")
        axes = [axis for axis, _, _ in query.iter_edges()]
        assert axes == [QueryAxis.DESCENDANT]
        assert query.root_axis is QueryAxis.CHILD


class TestPredicates:
    def test_single_branch(self):
        query = parse_query("//A[/C/F]/B")
        a = query.root
        predicates = a.predicate_edges()
        assert len(predicates) == 1 and predicates[0].node.tag == "C"
        assert a.inline_edge().node.tag == "B"

    def test_nested_predicates(self):
        query = parse_query("//A[/B[/C]/D]")
        b = query.root.predicate_edges()[0].node
        assert b.predicate_edges()[0].node.tag == "C"
        assert b.inline_edge().node.tag == "D"

    def test_multiple_predicates(self):
        query = parse_query("//A[/B][/C]/D")
        tags = [e.node.tag for e in query.root.predicate_edges()]
        assert tags == ["B", "C"]

    def test_relative_predicate_defaults_to_child(self):
        query = parse_query("//A[B]")
        assert query.root.predicate_edges()[0].axis is QueryAxis.CHILD

    def test_descendant_predicate(self):
        query = parse_query("//A[//B]")
        assert query.root.predicate_edges()[0].axis is QueryAxis.DESCENDANT

    def test_default_target_is_last_trunk_node(self):
        assert parse_query("//A[/B/C]/D/E").target.tag == "E"
        assert parse_query("//A[/B/C]").target.tag == "A"


class TestOrderAxes:
    def test_folls_short_form(self):
        query = parse_query("//A[/C/folls::B/D]")
        c = query.root.predicate_edges()[0].node
        order = c.order_edges()
        assert len(order) == 1
        assert order[0].axis is QueryAxis.FOLLS
        assert order[0].node.tag == "B"
        assert order[0].node.inline_edge().node.tag == "D"

    @pytest.mark.parametrize(
        "spelling,axis",
        [
            ("folls", QueryAxis.FOLLS),
            ("pres", QueryAxis.PRES),
            ("foll", QueryAxis.FOLL),
            ("pre", QueryAxis.PRE),
            ("following-sibling", QueryAxis.FOLLS),
            ("preceding-sibling", QueryAxis.PRES),
            ("following", QueryAxis.FOLL),
            ("preceding", QueryAxis.PRE),
        ],
    )
    def test_axis_spellings(self, spelling, axis):
        query = parse_query("//A[/B/%s::C]" % spelling)
        b = query.root.predicate_edges()[0].node
        assert b.order_edges()[0].axis is axis

    def test_has_order_axes(self):
        assert parse_query("//A[/B/folls::C]").has_order_axes()
        assert not parse_query("//A[/B]/C").has_order_axes()


class TestTargetMarker:
    def test_marker_in_branch(self):
        query = parse_query("//A[/C/folls::$B/D]")
        assert query.target.tag == "B"

    def test_marker_on_root(self):
        assert parse_query("//$A/B").target.tag == "A"

    def test_duplicate_marker_rejected(self):
        with pytest.raises(XPathSyntaxError):
            parse_query("//$A/$B")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("/Root/A/B", None),
            ("//A//B/C", None),
            ("//A[/C[/F]/folls::$B/D]", None),
            ("//A[/B][//C]/D", None),
            ("//A[/C/pres::B]", None),
            ("//A[/C/foll::D]", None),
            # A redundant marker on the default target canonicalizes away.
            ("//A[/C/F]/B/$D", "//A[/C/F]/B/D"),
            ("//$A[/B/C]", "//A[/B/C]"),
        ],
    )
    def test_to_string_roundtrips(self, text, expected):
        canonical = expected or text
        query = parse_query(text)
        assert query.to_string() == canonical
        reparsed = parse_query(query.to_string())
        assert reparsed.to_string() == canonical


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "   ",
            "A/B",            # must start with / or //
            "//",
            "//A[",
            "//A]",
            "//A[/B",
            "//A/",
            "//A[/B]]",
            "//A/[B]",
            "//A/folls::",
            "//A b",
            "//A%B",
        ],
    )
    def test_malformed(self, text):
        with pytest.raises(XPathSyntaxError):
            parse_query(text)

    def test_error_offset(self):
        with pytest.raises(XPathSyntaxError) as excinfo:
            parse_query("//A[/B]]")
        assert excinfo.value.position == 7
