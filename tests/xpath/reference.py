"""A brute-force reference evaluator (test oracle).

For every document node ``d`` with the target's tag it asks "does an
embedding of the whole pattern exist that maps the target to ``d``?" by
naive recursive search.  Exponentially slower than the production
evaluator but independent of all its optimizations, so agreement on random
documents is strong evidence of correctness.

For tree-shaped patterns the existential check decomposes per edge: an
embedding exists iff every edge's subpattern can be embedded independently
(the single ``fixed`` constraint only restricts the branch containing the
target).
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.xmltree.document import XmlDocument
from repro.xmltree.node import XmlNode
from repro.xpath.ast import Query, QueryAxis, QueryNode


def brute_force_matches(document: XmlDocument, query: Query) -> Set[int]:
    """Pre-order numbers of nodes matching the target in some embedding."""
    if query.root_axis is QueryAxis.CHILD:
        roots: List[XmlNode] = [document.root]
    else:
        roots = list(document)
    result: Set[int] = set()
    for node in document.nodes_with_tag(query.target.tag):
        fixed = {query.target.node_id: node.pre}
        if any(_exists(root, query.root, fixed) for root in roots):
            result.add(node.pre)
    return result


def brute_force_selectivity(document: XmlDocument, query: Query) -> int:
    return len(brute_force_matches(document, query))


def _relation_candidates(doc_node: XmlNode, axis: QueryAxis) -> List[XmlNode]:
    if axis is QueryAxis.CHILD:
        return list(doc_node.children)
    if axis is QueryAxis.DESCENDANT:
        return list(doc_node.iter_descendants())
    if axis is QueryAxis.FOLLS:
        return list(doc_node.iter_following_siblings())
    if axis is QueryAxis.PRES:
        return list(doc_node.iter_preceding_siblings())
    if axis is QueryAxis.FOLL:  # scoped: following-sibling subtrees
        out: List[XmlNode] = []
        for sibling in doc_node.iter_following_siblings():
            out.append(sibling)
            out.extend(sibling.iter_descendants())
        return out
    if axis is QueryAxis.PRE:
        out = []
        for sibling in doc_node.iter_preceding_siblings():
            out.append(sibling)
            out.extend(sibling.iter_descendants())
        return out
    raise AssertionError("unhandled axis %r" % axis)


def _exists(doc_node: XmlNode, pattern: QueryNode, fixed: Dict[int, int]) -> bool:
    """Can the pattern subtree embed with pattern→doc_node under ``fixed``?"""
    if doc_node.tag != pattern.tag:
        return False
    required = fixed.get(pattern.node_id)
    if required is not None and required != doc_node.pre:
        return False
    for edge in pattern.edges:
        if not any(
            _exists(candidate, edge.node, fixed)
            for candidate in _relation_candidates(doc_node, edge.axis)
        ):
            return False
    return True
