"""The production evaluator vs the brute-force oracle on random inputs.

Random small documents (recursion allowed!) and random queries spanning
all six axes; the two independent implementations must agree on the exact
match set for every pattern node.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmltree.builder import el
from repro.xmltree.document import XmlDocument
from repro.xmltree.node import XmlNode
from repro.xpath import Evaluator
from repro.xpath.ast import Edge, Query, QueryAxis, QueryNode

from tests.xpath.reference import brute_force_matches

TAGS = "abcd"
STRUCT_AXES = [QueryAxis.CHILD, QueryAxis.DESCENDANT]
ALL_AXES = STRUCT_AXES + [
    QueryAxis.FOLLS,
    QueryAxis.PRES,
    QueryAxis.FOLL,
    QueryAxis.PRE,
]


@st.composite
def small_document(draw) -> XmlDocument:
    """A random tree of ≤ ~25 nodes over a 4-tag alphabet (recursive)."""
    seed = draw(st.integers(min_value=0, max_value=10**6))
    rng = random.Random(seed)
    budget = draw(st.integers(min_value=1, max_value=24))

    root = el(rng.choice(TAGS))
    frontier = [root]
    produced = 1
    while frontier and produced < budget:
        node = frontier.pop(rng.randrange(len(frontier)))
        for _ in range(rng.randint(0, 3)):
            if produced >= budget:
                break
            child = node.append(el(rng.choice(TAGS)))
            produced += 1
            frontier.append(child)
    return XmlDocument(root)


@st.composite
def random_query(draw) -> Query:
    """A random pattern tree of ≤ 5 nodes over the same alphabet."""
    seed = draw(st.integers(min_value=0, max_value=10**6))
    rng = random.Random(seed)
    size = draw(st.integers(min_value=1, max_value=5))

    root = QueryNode(rng.choice(TAGS))
    nodes = [root]
    for _ in range(size - 1):
        parent = rng.choice(nodes)
        axis = rng.choice(ALL_AXES)
        child = QueryNode(rng.choice(TAGS))
        # Direct edge construction: rendering conventions (predicate vs
        # inline) are irrelevant to the oracle comparison.
        parent.edges.append(Edge(axis, child, True))
        nodes.append(child)
    root_axis = rng.choice(STRUCT_AXES)
    target = rng.choice(nodes)
    return Query(root, root_axis, target=target)


class TestEvaluatorAgainstOracle:
    @settings(max_examples=120, deadline=None)
    @given(small_document(), random_query())
    def test_target_match_sets_agree(self, document, query):
        expected = brute_force_matches(document, query)
        actual = Evaluator(document).matching_pres(query, query.target)
        assert actual == expected

    @settings(max_examples=40, deadline=None)
    @given(small_document(), random_query())
    def test_every_node_selectivity_agrees(self, document, query):
        evaluator = Evaluator(document)
        per_node = evaluator.selectivities(query)
        for pattern_node in query.nodes():
            shifted = Query(query.root, query.root_axis, target=pattern_node)
            expected = len(brute_force_matches(document, shifted))
            assert per_node[pattern_node.node_id] == expected
