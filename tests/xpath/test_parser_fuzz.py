"""Parser fuzzing: random renderable queries round-trip through text.

The generator only builds queries the renderer can express (predicate
edges plus at most one inline edge per node), so
``parse(to_string(q)).to_string() == q.to_string()`` must hold exactly.
A second property feeds random garbage and asserts the parser either
succeeds or raises :class:`XPathSyntaxError` — never anything else.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xpath import XPathSyntaxError, parse_query
from repro.xpath.ast import Edge, Query, QueryAxis, QueryNode

TAGS = ["alpha", "b2", "c-c", "d.d", "E_e"]
AXES = [
    QueryAxis.CHILD,
    QueryAxis.DESCENDANT,
    QueryAxis.FOLLS,
    QueryAxis.PRES,
    QueryAxis.FOLL,
    QueryAxis.PRE,
]


@st.composite
def renderable_query(draw) -> Query:
    seed = draw(st.integers(min_value=0, max_value=10**6))
    rng = random.Random(seed)
    size = draw(st.integers(min_value=1, max_value=7))
    root = QueryNode(rng.choice(TAGS))
    nodes = [root]
    for _ in range(size - 1):
        parent = rng.choice(nodes)
        axis = rng.choice(AXES)
        child = QueryNode(rng.choice(TAGS))
        inline_free = parent.inline_edge() is None
        is_predicate = not inline_free or rng.random() < 0.5
        parent.edges.append(Edge(axis, child, is_predicate))
        nodes.append(child)
    root_axis = rng.choice([QueryAxis.CHILD, QueryAxis.DESCENDANT])
    target = rng.choice(nodes)
    return Query(root, root_axis, target=target)


class TestRoundTripFuzz:
    @settings(max_examples=150, deadline=None)
    @given(renderable_query())
    def test_roundtrip(self, query):
        text = query.to_string()
        reparsed = parse_query(text)
        assert reparsed.to_string() == text
        # Structure also survives: same tag multiset, same edge count.
        assert sorted(reparsed.tags()) == sorted(query.tags())
        assert len(list(reparsed.iter_edges())) == len(list(query.iter_edges()))
        assert reparsed.target.tag == query.target.tag

    @settings(max_examples=150, deadline=None)
    @given(renderable_query())
    def test_double_roundtrip_stable(self, query):
        once = parse_query(query.to_string()).to_string()
        twice = parse_query(once).to_string()
        assert once == twice


class TestGarbageFuzz:
    @settings(max_examples=300, deadline=None)
    @given(st.text(alphabet="/[]$:abAB-_.13 ", max_size=24))
    def test_parser_never_crashes(self, text):
        try:
            query = parse_query(text)
        except XPathSyntaxError:
            return
        # Anything accepted must render and re-parse stably.
        assert parse_query(query.to_string()).to_string() == query.to_string()
