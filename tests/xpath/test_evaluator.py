"""Tests for the exact evaluator against hand-countable documents."""

import pytest

from repro.xmltree.builder import el
from repro.xmltree.document import XmlDocument
from repro.xpath import Evaluator, parse_query


@pytest.fixture(scope="module")
def doc():
    #  r
    #  ├── a (1): b, c, b
    #  ├── a (2): c, b[d]
    #  └── x: a (3): b[d, d]
    root = el(
        "r",
        el("a", el("b"), el("c"), el("b")),
        el("a", el("c"), el("b", el("d"))),
        el("x", el("a", el("b", el("d"), el("d")))),
    )
    return XmlDocument(root)


@pytest.fixture(scope="module")
def ev(doc):
    return Evaluator(doc)


def sel(ev, text):
    return ev.selectivity(parse_query(text))


class TestStructuralAxes:
    def test_descendant_root(self, ev):
        assert sel(ev, "//a") == 3
        assert sel(ev, "//b") == 4
        assert sel(ev, "//missing") == 0

    def test_absolute_root(self, ev):
        assert sel(ev, "/r") == 1
        assert sel(ev, "/a") == 0  # a is not the document root

    def test_child_chain(self, ev):
        assert sel(ev, "/r/a") == 2
        assert sel(ev, "/r/a/b") == 3
        assert sel(ev, "//a/b/d") == 3

    def test_descendant_step(self, ev):
        assert sel(ev, "/r//a") == 3
        assert sel(ev, "//x//d") == 2

    def test_target_not_last(self, ev):
        assert sel(ev, "//$a/b/d") == 2
        assert sel(ev, "/r/$a/b") == 2


class TestPredicates:
    def test_branch_filters_context(self, ev):
        assert sel(ev, "//a[/c]") == 2
        assert sel(ev, "//a[/b/d]") == 2
        assert sel(ev, "//a[/c]/b") == 3

    def test_branch_target(self, ev):
        assert sel(ev, "//a[/$c]/b") == 2
        assert sel(ev, "//a[/$b]/c") == 3

    def test_nested_branch(self, ev):
        assert sel(ev, "//a[/b[/d]]") == 2

    def test_unsatisfiable(self, ev):
        assert sel(ev, "//a[/zz]/b") == 0


class TestSiblingOrderAxes:
    def test_folls(self, ev):
        # b with a following c sibling: only the first b of a(1).
        assert sel(ev, "//a[/$b/folls::c]") == 1
        # b with a preceding c sibling: second b of a(1), b of a(2).
        assert sel(ev, "//a[/$b/pres::c]") == 2

    def test_folls_other_side(self, ev):
        assert sel(ev, "//a[/b/folls::$c]") == 1
        assert sel(ev, "//a[/b/pres::$c]") == 2

    def test_order_with_deeper_constraints(self, ev):
        # c followed by a b that has a d child: a(2) only.
        assert sel(ev, "//a[/c/folls::b/$d]") == 1

    def test_order_unsatisfied(self, ev):
        assert sel(ev, "//x[/a/folls::a]") == 0

    def test_trunk_target_with_order(self, ev):
        assert sel(ev, "//$a[/b/folls::c]") == 1
        assert sel(ev, "//$a[/c/folls::b]") == 2


class TestScopedFollPre:
    def test_scoped_following(self, ev):
        # d under a following sibling of c (scoped semantics):
        # a(2): c then b[d] -> d qualifies.
        assert sel(ev, "//a[/c/foll::$d]") == 1

    def test_scoped_preceding(self, ev):
        # c within a preceding sibling of b (descendant-or-self): a1's c is
        # itself a preceding sibling of the second b; a2's c precedes b.
        assert sel(ev, "//a[/b/pre::$c]") == 2

    def test_full_document_following(self, doc):
        unscoped = Evaluator(doc, scoped_following=False)
        # With full XPath semantics every d after the first c qualifies.
        assert unscoped.selectivity(parse_query("//a[/c/foll::$d]")) == 3

    def test_scoped_vs_full_difference(self, doc, ev):
        scoped = sel(ev, "//a[/c/foll::$d]")
        full = Evaluator(doc, scoped_following=False).selectivity(
            parse_query("//a[/c/foll::$d]")
        )
        assert scoped <= full


class TestSelectivities:
    def test_all_nodes_at_once(self, ev):
        query = parse_query("//a[/c]/b")
        per_node = ev.selectivities(query)
        assert per_node[query.root.node_id] == 2
        assert per_node[query.find("b").node_id] == 3
        assert per_node[query.find("c").node_id] == 2

    def test_matching_nodes_sorted(self, ev, doc):
        nodes = ev.matching_nodes(parse_query("//a/b"))
        assert [n.tag for n in nodes] == ["b", "b", "b", "b"]
        assert [n.pre for n in nodes] == sorted(n.pre for n in nodes)
