"""Tests for the path-id binary tree (Section 6, Figure 6)."""

import random

import pytest

from repro.pathenc.bintree import PathIdBinaryTree
from repro.pathenc import label_document


@pytest.fixture()
def figure1_tree(pid):
    pids = [pid[i] for i in range(1, 10)]
    return PathIdBinaryTree(pids, width=4)


class TestConstruction:
    def test_counts(self, figure1_tree):
        assert figure1_tree.count == 9
        assert figure1_tree.width == 4
        assert figure1_tree.full_node_count > 9

    def test_requires_sorted_distinct(self):
        with pytest.raises(ValueError):
            PathIdBinaryTree([3, 1], width=4)
        with pytest.raises(ValueError):
            PathIdBinaryTree([1, 1], width=4)
        with pytest.raises(ValueError):
            PathIdBinaryTree([], width=4)

    def test_width_check(self):
        with pytest.raises(ValueError):
            PathIdBinaryTree([16], width=4)


class TestLookup:
    def test_bits_of_ordinal_all(self, figure1_tree, pid):
        for ordinal in range(1, 10):
            assert figure1_tree.bits_of_ordinal(ordinal) == pid[ordinal]

    def test_ordinal_of_bits_all(self, figure1_tree, pid):
        for ordinal in range(1, 10):
            assert figure1_tree.ordinal_of_bits(pid[ordinal]) == ordinal

    def test_missing_pid(self, figure1_tree):
        with pytest.raises(KeyError):
            figure1_tree.ordinal_of_bits(0b0101)

    def test_out_of_range_ordinal(self, figure1_tree):
        with pytest.raises(KeyError):
            figure1_tree.bits_of_ordinal(0)
        with pytest.raises(KeyError):
            figure1_tree.bits_of_ordinal(10)


class TestCompression:
    def test_compression_is_lossless(self, figure1_tree, pid):
        figure1_tree.compress()
        for ordinal in range(1, 10):
            assert figure1_tree.bits_of_ordinal(ordinal) == pid[ordinal]
            assert figure1_tree.ordinal_of_bits(pid[ordinal]) == ordinal

    def test_compression_shrinks(self, figure1_tree):
        before = figure1_tree.full_node_count
        figure1_tree.compress()
        assert figure1_tree.compressed_node_count < before

    def test_compress_idempotent(self, figure1_tree):
        once = figure1_tree.compress().compressed_node_count
        again = figure1_tree.compress().compressed_node_count
        assert once == again

    def test_size_bytes_uses_current_state(self, figure1_tree):
        full = figure1_tree.size_bytes()
        figure1_tree.compress()
        assert figure1_tree.size_bytes() < full

    def test_random_pids_lossless(self):
        rng = random.Random(5)
        width = 24
        for _ in range(20):
            count = rng.randint(1, 60)
            pids = sorted(rng.sample(range(1, 1 << width), count))
            tree = PathIdBinaryTree(pids, width).compress()
            for ordinal, value in enumerate(pids, start=1):
                assert tree.bits_of_ordinal(ordinal) == value
                assert tree.ordinal_of_bits(value) == ordinal

    def test_xmark_like_compression_saves_space(self, xmark_small):
        labeled = label_document(xmark_small)
        tree = PathIdBinaryTree(labeled.distinct_pathids(), labeled.width)
        tree.compress()
        # The paper reports ~78% savings vs the pid table for XMark.
        assert tree.size_bytes() < labeled.pathid_table_size_bytes()
