"""Tests for Case 1/Case 2 path-id compatibility (Section 2)."""

import pytest

from repro.pathenc.encoding import EncodingTable
from repro.pathenc.relationship import Axis, pid_is_root, pids_compatible


@pytest.fixture()
def table(figure1):
    return EncodingTable.from_document(figure1)


class TestCase1EqualPids:
    def test_example_2_2(self, table, pid):
        # A and B share p8 (1100): A is parent of B.
        assert pids_compatible(table, "A", pid[8], "B", pid[8], Axis.CHILD)
        assert pids_compatible(table, "A", pid[8], "B", pid[8], Axis.DESCENDANT)

    def test_equal_pid_wrong_direction(self, table, pid):
        assert not pids_compatible(table, "B", pid[8], "A", pid[8], Axis.CHILD)

    def test_grandparent_not_child(self, table, pid):
        assert not pids_compatible(table, "A", pid[5], "D", pid[5], Axis.CHILD)
        assert pids_compatible(table, "A", pid[5], "D", pid[5], Axis.DESCENDANT)


class TestCase2Containment:
    def test_example_2_3(self, table, pid):
        # p3 (0011) of C contains p2 (0010) of E; C is parent of E.
        assert pids_compatible(table, "C", pid[3], "E", pid[2], Axis.CHILD)

    def test_not_subset_incompatible(self, table, pid):
        # p2 (0010) does not contain p1 (0001): Example 4.1 prunes it.
        assert not pids_compatible(table, "C", pid[2], "F", pid[1], Axis.DESCENDANT)

    def test_a_contains_c(self, table, pid):
        assert pids_compatible(table, "A", pid[7], "C", pid[3], Axis.CHILD)
        assert not pids_compatible(table, "A", pid[8], "C", pid[3], Axis.CHILD)

    def test_wrong_tags_on_common_path(self, table, pid):
        # D's p5 covers only path 1 where F never occurs.
        assert not pids_compatible(table, "D", pid[5], "F", pid[5], Axis.DESCENDANT)


class TestRoot:
    def test_pid_is_root(self, table, pid):
        assert pid_is_root(table, "Root", pid[9])
        assert not pid_is_root(table, "A", pid[7])
        assert not pid_is_root(table, "Root", 0)
