"""Unit tests for path-id bit-vector operations."""

import pytest

from repro.pathenc.pathid import (
    bit_for_encoding,
    bits_of,
    contains,
    covers,
    encodings_of,
    format_pathid,
    parse_pathid,
    pathid_byte_size,
    popcount,
)


class TestBitMapping:
    def test_msb_is_encoding_one(self):
        assert bit_for_encoding(1, 4) == 0b1000
        assert bit_for_encoding(4, 4) == 0b0001

    @pytest.mark.parametrize("encoding", [0, 5, -1])
    def test_out_of_range_rejected(self, encoding):
        with pytest.raises(ValueError):
            bit_for_encoding(encoding, 4)

    def test_encodings_roundtrip(self):
        width = 9
        for encoding in range(1, width + 1):
            pid = bit_for_encoding(encoding, width)
            assert encodings_of(pid, width) == [encoding]

    def test_encodings_of_composite(self):
        assert encodings_of(0b1100, 4) == [1, 2]
        assert encodings_of(0b1111, 4) == [1, 2, 3, 4]
        assert encodings_of(0, 4) == []

    def test_bits_of(self):
        assert sorted(bits_of(0b1010)) == [0b0010, 0b1000]
        assert list(bits_of(0)) == []

    def test_popcount(self):
        assert popcount(0b1011) == 3


class TestContainment:
    def test_strict_containment(self):
        # Example 2.3: p3 (0011) contains p2 (0010).
        assert contains(0b0011, 0b0010)
        assert not contains(0b0010, 0b0011)

    def test_equal_not_strict(self):
        assert not contains(0b0011, 0b0011)
        assert covers(0b0011, 0b0011)

    def test_disjoint(self):
        assert not contains(0b1100, 0b0011)
        assert not covers(0b1100, 0b0011)

    def test_covers_is_superset(self):
        assert covers(0b1110, 0b0110)


class TestFormatting:
    def test_format_fixed_width(self):
        assert format_pathid(0b0011, 4) == "0011"
        assert format_pathid(0b1, 8) == "00000001"

    def test_parse_roundtrip(self):
        assert parse_pathid(format_pathid(0b1010, 4)) == 0b1010

    @pytest.mark.parametrize("bad", ["", "012", "ab"])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_pathid(bad)

    def test_byte_size(self):
        assert pathid_byte_size(1) == 1
        assert pathid_byte_size(8) == 1
        assert pathid_byte_size(9) == 2
        assert pathid_byte_size(40) == 5    # SSPlays row of Table 3
        assert pathid_byte_size(87) == 11   # DBLP row
        assert pathid_byte_size(344) == 43  # XMark row
