"""Unit tests for the encoding table."""

import pytest

from repro.pathenc.encoding import EncodingTable


@pytest.fixture()
def table(figure1):
    return EncodingTable.from_document(figure1)


class TestMapping:
    def test_figure1_encodings(self, table):
        assert len(table) == 4
        assert table.encoding_of("Root/A/B/D") == 1
        assert table.encoding_of("Root/A/B/E") == 2
        assert table.encoding_of("Root/A/C/E") == 3
        assert table.encoding_of("Root/A/C/F") == 4

    def test_path_of_roundtrip(self, table):
        for path in table.all_paths():
            assert table.path_of(table.encoding_of(path)) == path

    def test_labels_of(self, table):
        assert table.labels_of(1) == ("Root", "A", "B", "D")

    @pytest.mark.parametrize("encoding", [0, 5])
    def test_bad_encoding(self, table, encoding):
        with pytest.raises(KeyError):
            table.path_of(encoding)

    def test_unknown_path(self, table):
        with pytest.raises(KeyError):
            table.encoding_of("Root/Z")

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            EncodingTable(["a/b", "a/b"])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EncodingTable([])


class TestTagRelationships:
    def test_parent_child(self, table):
        # Example 2.2: on path 1, A is the parent of B.
        assert table.tag_below(1, "A", "B", immediate=True)
        assert not table.tag_below(1, "A", "D", immediate=True)

    def test_ancestor_descendant(self, table):
        assert table.tag_below(1, "A", "D", immediate=False)
        assert table.tag_below(1, "Root", "D", immediate=False)
        assert not table.tag_below(1, "D", "A", immediate=False)

    def test_missing_tags(self, table):
        assert not table.tag_below(1, "Z", "B", immediate=False)
        assert not table.tag_below(1, "A", "Z", immediate=False)

    def test_recursive_path(self):
        table = EncodingTable(["r/x/x/y"])
        assert table.tag_below(1, "x", "x", immediate=True)
        assert table.tag_below(1, "x", "y", immediate=True)
        assert table.tag_below(1, "r", "y", immediate=False)

    def test_tag_at_root(self, table):
        assert table.tag_at_root(1, "Root")
        assert not table.tag_at_root(1, "A")

    def test_tags_between(self, table):
        assert table.tags_between(1, "A", "D") == ("B",)
        assert table.tags_between(1, "A", "B") == ()
        assert table.tags_between(1, "B", "A") is None


class TestTagDepths:
    def test_unique_depths(self, table):
        assert table.tag_depths("Root", 0b1111) == (0,)
        assert table.tag_depths("A", 0b1100) == (1,)
        assert table.tag_depths("D", 0b1000) == (3,)

    def test_tag_not_on_all_paths(self, table):
        # B is at depth 2 on paths 1-2 but absent from 3-4.
        assert table.tag_depths("B", 0b1111) == ()
        assert table.tag_depths("B", 0b1100) == (2,)

    def test_recursive_ambiguity(self):
        table = EncodingTable(["r/x/x/y"])
        assert table.tag_depths("x", 0b1) == (1, 2)

    def test_cache_stable(self, table):
        first = table.tag_depths("A", 0b1010)
        assert table.tag_depths("A", 0b1010) == first


class TestSize:
    def test_size_bytes(self, table):
        expected = sum(len(p) + 4 for p in table.all_paths())
        assert table.size_bytes() == expected
