"""Tests for path-id assignment (reproduces Figure 1 exactly)."""

import pytest

from repro.pathenc import label_document
from repro.pathenc.labeler import LabeledDocument
from repro.xmltree.builder import el
from repro.xmltree.document import XmlDocument


class TestFigure1Labels:
    def test_distinct_pids_match_figure_1c(self, figure1_labeled, pid):
        assert figure1_labeled.distinct_pathids() == [
            pid[i] for i in range(1, 10)
        ]

    def test_pid_names(self, figure1_labeled, pid):
        assert figure1_labeled.name_of(pid[3]) == "p3"
        assert figure1_labeled.name_of(pid[9]) == "p9"

    def test_root_pid(self, figure1_labeled, figure1, pid):
        assert figure1_labeled.pathid_of(figure1.root) == pid[9]

    def test_leaf_pids(self, figure1_labeled, figure1, pid):
        # Example 2.1: the first leaf D has p5 (1000).
        first_d = figure1.nodes_with_tag("D")[0]
        assert figure1_labeled.pathid_of(first_d) == pid[5]

    def test_internal_pid_is_or_of_children(self, figure1_labeled, figure1):
        for node in figure1:
            if node.children:
                combined = 0
                for child in node.children:
                    combined |= figure1_labeled.pathid_of(child)
                assert figure1_labeled.pathid_of(node) == combined

    def test_a_pids(self, figure1_labeled, figure1, pid):
        pids = sorted(figure1_labeled.pathid_of(a) for a in figure1.nodes_with_tag("A"))
        assert pids == [pid[6], pid[7], pid[8]]

    def test_format(self, figure1_labeled, pid):
        assert figure1_labeled.format_pathid(pid[3]) == "0011"


class TestInvariants:
    def test_descendant_pid_subset_of_ancestor(self, figure1_labeled, figure1):
        for node in figure1:
            node_pid = figure1_labeled.pathid_of(node)
            for descendant in node.iter_descendants():
                desc_pid = figure1_labeled.pathid_of(descendant)
                assert (node_pid & desc_pid) == desc_pid

    def test_every_node_labeled(self, ssplays_small):
        labeled = label_document(ssplays_small)
        assert all(pid > 0 for pid in labeled.pathids)

    def test_subset_invariant_on_dataset(self, xmark_small):
        labeled = label_document(xmark_small)
        for node in xmark_small:
            if node.parent is not None:
                parent_pid = labeled.pathids[node.parent.pre]
                assert (parent_pid & labeled.pathids[node.pre]) == labeled.pathids[node.pre]

    def test_ordinals_ascending(self, figure1_labeled):
        pids = figure1_labeled.distinct_pathids()
        assert pids == sorted(pids)
        for index, value in enumerate(pids, start=1):
            assert figure1_labeled.ordinal_of(value) == index


class TestSizes:
    def test_pathid_size_bytes(self, figure1_labeled):
        assert figure1_labeled.pathid_size_bytes() == 1  # 4 bits -> 1 byte

    def test_table_size(self, figure1_labeled):
        assert figure1_labeled.pathid_table_size_bytes() == 9  # 9 pids x 1 byte


class TestDeepDocument:
    def test_no_recursion_limit(self):
        # A 5000-deep chain would break naive recursion.
        root = el("n0")
        node = root
        for i in range(1, 5000):
            node = node.append(el("n%d" % (i % 3)))
        labeled = label_document(XmlDocument(root))
        assert labeled.width == 1
        assert all(pid == 1 for pid in labeled.pathids)
