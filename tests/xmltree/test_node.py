"""Unit tests for the element-node model."""

import pytest

from repro.xmltree.builder import el
from repro.xmltree.node import XmlNode


def sample_tree():
    #        Root
    #      /  |  \
    #     A   B   C
    #    / \       \
    #   D   E       F
    return el("Root", el("A", el("D"), el("E")), el("B"), el("C", el("F")))


class TestConstruction:
    def test_empty_tag_rejected(self):
        with pytest.raises(ValueError):
            XmlNode("")

    def test_append_sets_parent_and_sibling_index(self):
        root = sample_tree()
        a, b, c = root.children
        assert a.parent is root and b.parent is root
        assert [child.sibling_index for child in root.children] == [0, 1, 2]
        assert c.children[0].sibling_index == 0

    def test_append_rejects_reparenting(self):
        root = sample_tree()
        with pytest.raises(ValueError):
            el("Other").append(root.children[0])

    def test_extend_appends_in_order(self):
        node = XmlNode("X")
        node.extend([XmlNode("A"), XmlNode("B")])
        assert [c.tag for c in node.children] == ["A", "B"]


class TestPredicates:
    def test_is_leaf(self):
        root = sample_tree()
        assert not root.is_leaf
        assert root.children[1].is_leaf  # B
        assert root.children[0].children[0].is_leaf  # D

    def test_is_root_and_depth(self):
        root = sample_tree()
        assert root.is_root and root.depth == 0
        d = root.children[0].children[0]
        assert not d.is_root and d.depth == 2


class TestTraversal:
    def test_preorder_is_document_order(self):
        root = sample_tree()
        tags = [node.tag for node in root.iter_preorder()]
        assert tags == ["Root", "A", "D", "E", "B", "C", "F"]

    def test_descendants_excludes_self(self):
        root = sample_tree()
        assert [n.tag for n in root.iter_descendants()] == ["A", "D", "E", "B", "C", "F"]

    def test_ancestors_bottom_up(self):
        root = sample_tree()
        f = root.children[2].children[0]
        assert [n.tag for n in f.iter_ancestors()] == ["C", "Root"]

    def test_following_siblings(self):
        root = sample_tree()
        a = root.children[0]
        assert [n.tag for n in a.iter_following_siblings()] == ["B", "C"]
        assert list(root.iter_following_siblings()) == []

    def test_preceding_siblings_nearest_first(self):
        root = sample_tree()
        c = root.children[2]
        assert [n.tag for n in c.iter_preceding_siblings()] == ["B", "A"]


class TestPaths:
    def test_label_path(self):
        root = sample_tree()
        f = root.children[2].children[0]
        assert f.label_path() == "Root/C/F"
        assert root.label_path() == "Root"

    def test_subtree_size(self):
        root = sample_tree()
        assert root.subtree_size() == 7
        assert root.children[0].subtree_size() == 3
