"""Tests for document statistics (Table 1 quantities)."""

from repro.xmltree.builder import el, paper_figure1_document
from repro.xmltree.document import XmlDocument
from repro.xmltree.stats import document_stats


class TestFigure1Stats:
    def test_counts(self):
        stats = document_stats(paper_figure1_document())
        assert stats.total_elements == 18
        assert stats.distinct_tags == 7
        assert stats.distinct_paths == 4
        assert stats.max_depth == 3
        assert stats.leaf_count == 8

    def test_size_positive(self):
        stats = document_stats(paper_figure1_document())
        assert stats.size_bytes > 0
        assert stats.size_kb == stats.size_bytes / 1024.0

    def test_skip_size(self):
        stats = document_stats(paper_figure1_document(), include_size=False)
        assert stats.size_bytes == 0


class TestShapeMeasures:
    def test_fanout(self):
        doc = XmlDocument(el("r", el("a"), el("a"), el("a", el("b"))))
        stats = document_stats(doc)
        assert stats.max_fanout == 3
        assert stats.avg_fanout == 2.0  # (3 + 1) children / 2 internal nodes

    def test_single_node(self):
        stats = document_stats(XmlDocument(el("r")))
        assert stats.max_fanout == 0
        assert stats.avg_fanout == 0.0
        assert stats.leaf_count == 1

    def test_as_row_keys(self):
        row = document_stats(paper_figure1_document()).as_row()
        assert set(row) >= {"dataset", "size", "#distinct_eles", "#eles"}
