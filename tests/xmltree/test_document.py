"""Unit tests for XmlDocument views."""

import pytest

from repro.xmltree.builder import el
from repro.xmltree.document import XmlDocument


@pytest.fixture()
def doc():
    root = el(
        "Root",
        el("A", el("B", el("D")), el("C")),
        el("A", el("B", el("D"))),
    )
    return XmlDocument(root, name="t")


class TestViews:
    def test_len_and_iteration_order(self, doc):
        assert len(doc) == 8
        assert [n.tag for n in doc] == ["Root", "A", "B", "D", "C", "A", "B", "D"]

    def test_nodes_with_tag(self, doc):
        assert len(doc.nodes_with_tag("A")) == 2
        assert doc.nodes_with_tag("missing") == []

    def test_distinct_tags_sorted(self, doc):
        assert doc.distinct_tags == ["A", "B", "C", "D", "Root"]

    def test_tag_count(self, doc):
        assert doc.tag_count("B") == 2
        assert doc.tag_count("zzz") == 0

    def test_node_at_roundtrip(self, doc):
        for node in doc:
            assert doc.node_at(node.pre) is node


class TestPaths:
    def test_distinct_root_to_leaf_paths_first_occurrence_order(self, doc):
        # Note the second B is a leaf-bearing B with only D below it; the
        # first C is a leaf itself.
        assert doc.distinct_root_to_leaf_paths() == [
            "Root/A/B/D",
            "Root/A/C",
        ]

    def test_leaves_in_document_order(self, doc):
        assert [n.tag for n in doc.iter_leaves()] == ["D", "C", "D"]

    def test_max_depth(self, doc):
        assert doc.max_depth() == 3

    def test_single_node_document(self):
        doc = XmlDocument(el("only"))
        assert doc.max_depth() == 0
        assert doc.distinct_root_to_leaf_paths() == ["only"]


class TestConstraints:
    def test_root_with_parent_rejected(self):
        parent = el("p", el("c"))
        with pytest.raises(ValueError):
            XmlDocument(parent.children[0])

    def test_figure1_has_17_elements(self):
        from repro.xmltree.builder import paper_figure1_document

        doc = paper_figure1_document()
        assert len(doc) == 18
        assert doc.distinct_root_to_leaf_paths() == [
            "Root/A/B/D",
            "Root/A/B/E",
            "Root/A/C/E",
            "Root/A/C/F",
        ]
