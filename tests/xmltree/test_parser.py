"""Unit tests for the pure-Python XML parser."""

import pytest

from repro.xmltree.parser import XmlParseError, parse_fragment, parse_xml


class TestBasics:
    def test_single_element(self):
        doc = parse_xml("<a/>")
        assert doc.root.tag == "a" and doc.root.is_leaf

    def test_nested_elements(self):
        doc = parse_xml("<a><b><c/></b><d/></a>")
        assert [n.tag for n in doc] == ["a", "b", "c", "d"]

    def test_text_content(self):
        doc = parse_xml("<a>hello world</a>")
        assert doc.root.text == "hello world"

    def test_mixed_text_collected(self):
        doc = parse_xml("<a>one<b/>two</a>")
        assert doc.root.text == "onetwo"
        assert doc.root.children[0].tag == "b"

    def test_attributes(self):
        doc = parse_xml('<a x="1" y=\'two\'/>')
        assert doc.root.attributes == {"x": "1", "y": "two"}

    def test_sibling_order_preserved(self):
        doc = parse_xml("<a><x/><y/><x/><z/></a>")
        assert [c.tag for c in doc.root.children] == ["x", "y", "x", "z"]


class TestProlog:
    def test_xml_declaration_skipped(self):
        doc = parse_xml('<?xml version="1.0"?><a/>')
        assert doc.root.tag == "a"

    def test_doctype_skipped(self):
        doc = parse_xml("<!DOCTYPE a SYSTEM 'a.dtd'><a/>")
        assert doc.root.tag == "a"

    def test_doctype_with_internal_subset(self):
        doc = parse_xml("<!DOCTYPE a [<!ELEMENT a (b)*>]><a><b/></a>")
        assert doc.root.children[0].tag == "b"

    def test_comments_everywhere(self):
        doc = parse_xml("<!-- pre --><a><!-- in --><b/></a><!-- post -->")
        assert [n.tag for n in doc] == ["a", "b"]

    def test_processing_instructions_skipped(self):
        doc = parse_xml('<?pi data?><a><?target stuff?></a>')
        assert doc.root.is_leaf


class TestEntities:
    def test_predefined_entities(self):
        doc = parse_xml("<a>&lt;&gt;&amp;&apos;&quot;</a>")
        assert doc.root.text == "<>&'\""

    def test_numeric_references(self):
        doc = parse_xml("<a>&#65;&#x42;</a>")
        assert doc.root.text == "AB"

    def test_entities_in_attributes(self):
        doc = parse_xml('<a t="&amp;x"/>')
        assert doc.root.attributes["t"] == "&x"

    def test_unknown_entity_rejected(self):
        with pytest.raises(XmlParseError):
            parse_xml("<a>&nope;</a>")

    def test_cdata(self):
        doc = parse_xml("<a><![CDATA[<not-a-tag> & raw]]></a>")
        assert doc.root.text == "<not-a-tag> & raw"


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "   ",
            "just text",
            "<a>",
            "<a></b>",
            "<a><b></a></b>",
            "<a/><b/>",
            "<a x=1/>",
            '<a x="1" x="2"/>',
            "<a><!-- unterminated </a>",
            "<1tag/>",
        ],
    )
    def test_malformed_inputs(self, text):
        with pytest.raises(XmlParseError):
            parse_xml(text)

    def test_error_reports_offset(self):
        with pytest.raises(XmlParseError) as excinfo:
            parse_xml("<a></b>")
        assert excinfo.value.position > 0


class TestFragment:
    def test_fragment_returns_bare_node(self):
        node = parse_fragment("<a><b/></a>")
        assert node.tag == "a" and node.pre == -1

    def test_fragment_rejects_trailing(self):
        with pytest.raises(XmlParseError):
            parse_fragment("<a/>junk")


class TestDocumentNumbering:
    def test_preorder_numbers_assigned(self):
        doc = parse_xml("<a><b><c/></b><d/></a>")
        assert [n.pre for n in doc] == [0, 1, 2, 3]
        assert doc.node_at(2).tag == "c"
