"""Round-trip and escaping tests for the serializer."""

from repro.xmltree.builder import el
from repro.xmltree.parser import parse_xml
from repro.xmltree.serializer import (
    escape_attribute,
    escape_text,
    serialize,
    serialized_size_bytes,
)


def trees_equal(a, b):
    if a.tag != b.tag or a.attributes != b.attributes or a.text != b.text:
        return False
    if len(a.children) != len(b.children):
        return False
    return all(trees_equal(x, y) for x, y in zip(a.children, b.children))


class TestEscaping:
    def test_text_escapes(self):
        assert escape_text("a<b>&c") == "a&lt;b&gt;&amp;c"

    def test_attribute_escapes_quotes(self):
        assert escape_attribute('say "hi" & <go>') == "say &quot;hi&quot; &amp; &lt;go&gt;"


class TestSerialize:
    def test_empty_element_self_closes(self):
        assert serialize(el("a")) == "<a/>"

    def test_text_only_element(self):
        assert serialize(el("a", "hi")) == "<a>hi</a>"

    def test_attributes_sorted(self):
        node = el("a", attrs={"z": "1", "b": "2"})
        assert serialize(node) == '<a b="2" z="1"/>'

    def test_declaration(self):
        assert serialize(el("a"), declaration=True).startswith("<?xml")

    def test_pretty_adds_newlines(self):
        text = serialize(el("a", el("b")), pretty=True)
        assert text == "<a>\n  <b/>\n</a>"


class TestRoundTrip:
    def test_parse_serialize_parse(self):
        source = '<a x="1">top<b>inner &amp; more</b><c/><b y="2"/></a>'
        doc1 = parse_xml(source)
        doc2 = parse_xml(serialize(doc1))
        assert trees_equal(doc1.root, doc2.root)

    def test_roundtrip_dataset_sample(self, ssplays_small):
        text = serialize(ssplays_small)
        reparsed = parse_xml(text)
        assert len(reparsed) == len(ssplays_small)
        assert trees_equal(reparsed.root, ssplays_small.root)

    def test_size_matches_utf8_length(self):
        node = el("a", "héllo")
        assert serialized_size_bytes(node) == len(serialize(node).encode("utf-8"))
