"""XML parser fuzzing: random trees round-trip; garbage never crashes."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmltree.builder import el
from repro.xmltree.parser import XmlParseError, parse_xml
from repro.xmltree.serializer import serialize

TAGS = ["a", "tag-b", "c_c", "d.d2"]
TEXTS = ["", "plain", "a<b", "x&y", 'say "hi"', "tail'd", "  spaced  "]


@st.composite
def random_tree(draw):
    seed = draw(st.integers(min_value=0, max_value=10**6))
    rng = random.Random(seed)
    budget = draw(st.integers(min_value=1, max_value=30))

    def attrs():
        if rng.random() < 0.3:
            return {"k%d" % rng.randrange(3): rng.choice(TEXTS)}
        return None

    root = el(rng.choice(TAGS), rng.choice(TEXTS), attrs=attrs())
    frontier = [root]
    produced = 1
    while frontier and produced < budget:
        node = frontier.pop(rng.randrange(len(frontier)))
        for _ in range(rng.randint(0, 3)):
            if produced >= budget:
                break
            child = node.append(el(rng.choice(TAGS), rng.choice(TEXTS), attrs=attrs()))
            produced += 1
            frontier.append(child)
    return root


def trees_equal(a, b):
    return (
        a.tag == b.tag
        and a.attributes == b.attributes
        and a.text == b.text
        and len(a.children) == len(b.children)
        and all(trees_equal(x, y) for x, y in zip(a.children, b.children))
    )


class TestRoundTripFuzz:
    @settings(max_examples=120, deadline=None)
    @given(random_tree())
    def test_serialize_parse_roundtrip(self, root):
        reparsed = parse_xml(serialize(root))
        assert trees_equal(root, reparsed.root)

    @settings(max_examples=60, deadline=None)
    @given(random_tree())
    def test_double_roundtrip_stable(self, root):
        once = serialize(parse_xml(serialize(root)).root)
        twice = serialize(parse_xml(once).root)
        assert once == twice


class TestGarbageFuzz:
    @settings(max_examples=300, deadline=None)
    @given(st.text(alphabet='<>/="&;! abAB-_.\n', max_size=40))
    def test_parser_never_crashes(self, text):
        try:
            document = parse_xml(text)
        except XmlParseError:
            return
        # Anything accepted must round-trip stably.
        assert trees_equal(document.root, parse_xml(serialize(document)).root)
