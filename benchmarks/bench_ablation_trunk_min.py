"""Ablation B — Equation 5's min-combination vs the plain upper bound.

For trunk targets of order queries the paper estimates
``min(S_Q(n), S_Q⃗(ni1), S_Q⃗(ni+1))`` rather than just the order-free
``S_Q(n)`` upper bound.  This ablation quantifies how much the min buys.
"""

from benchmarks.conftest import DATASETS
from repro.core.noorder import estimate_no_order
from repro.core.transform import clone_query
from repro.harness.metrics import relative_error
from repro.harness.tables import format_table, record_result


def upper_bound_estimate(system, item):
    """S_Q(n): the order-free counterpart estimate of the trunk target."""
    counterpart, mapping = clone_query(item.query, order_to_structural=True)
    return estimate_no_order(
        counterpart,
        system.path_provider,
        system.encoding_table,
        target=mapping[item.query.target.node_id],
    )


def test_ablation_trunk_min_combination(ctx, benchmark):
    system = ctx.factory("SSPlays").system(0, 0)
    sample = ctx.workload("SSPlays").order_trunk[:30]
    benchmark.pedantic(
        lambda: [system.estimate(i.query) for i in sample], rounds=1, iterations=1
    )

    rows = []
    for name in DATASETS:
        system = ctx.factory(name).system(0, 0)
        items = ctx.workload(name).order_trunk
        if not items:
            continue
        eq5_errors = []
        bound_errors = []
        for item in items:
            eq5_errors.append(relative_error(system.estimate(item.query), item.actual))
            bound_errors.append(
                relative_error(upper_bound_estimate(system, item), item.actual)
            )
        eq5_mean = sum(eq5_errors) / len(eq5_errors)
        bound_mean = sum(bound_errors) / len(bound_errors)
        rows.append(
            [name, len(items), "%.4f" % eq5_mean, "%.4f" % bound_mean]
        )
        # The min-combination never loses to the plain upper bound here:
        # every extra term in the min is itself an upper-bound estimate of
        # a superset query.
        assert eq5_mean <= bound_mean + 0.01
    record_result(
        "ablation_trunk_min",
        format_table(
            ["Dataset", "#queries", "Eq.5 min err", "plain S_Q(n) err"],
            rows,
            title="Ablation B: Equation 5 min-combination for trunk targets",
        ),
    )
