"""Build throughput — tree pipeline vs streaming vs sharded builder.

Not a paper table: this benchmarks the reproduction's own construction
path (repro.build).  The claims under test:

* the streaming scan builds the synopsis without materializing the
  document tree, so its peak memory sits far below the tree pipeline's
  (the shard cap bounds a parallel build's working set);
* on a multi-megabyte document and a multi-core host, sharding the scan
  over worker processes beats the single-threaded scan by >= 1.5x;
* every mode produces bit-identical statistics tables.

The document is the XMark body tiled to ``REPRO_BENCH_BUILD_BYTES``
(default ~6 MB) so the kernel always runs at realistic scale regardless
of the dataset scale factor.
"""

from __future__ import annotations

import os
import time
import tracemalloc

from repro.build import build_synopsis, outline
from repro.core.system import EstimationSystem
from repro.harness.tables import format_table, record_result
from repro.xmltree.parser import parse_xml
from repro.xmltree.serializer import serialize

TARGET_BYTES = int(os.environ.get("REPRO_BENCH_BUILD_BYTES", str(6 * 1024 * 1024)))
WORKERS = 4


def tiled_document_text(document, target_bytes: int) -> str:
    """Tile the document's top-level subtrees until the text reaches
    ``target_bytes`` (shape-preserving: same paths, same sibling mix)."""
    text = serialize(document)
    parsed = outline(text)
    if not parsed.spans:
        return text
    head = text[: parsed.spans[0][0]]
    body = text[parsed.spans[0][0] : parsed.spans[-1][1]]
    tail = text[parsed.spans[-1][1] :]
    copies = max(1, target_bytes // max(1, len(body)))
    return head + body * copies + tail


def _timed(builder):
    start = time.perf_counter()
    system = builder()
    return system, time.perf_counter() - start


def _peak_bytes(action) -> int:
    tracemalloc.start()
    try:
        action()
        return tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()


def test_build_throughput(ctx, benchmark):
    text = tiled_document_text(ctx.document("XMark"), TARGET_BYTES)
    mb = len(text) / (1024.0 * 1024.0)

    # The benchmark kernel: the single-pass streaming scan.
    benchmark.pedantic(lambda: build_synopsis(text), rounds=1, iterations=1)

    tree_system, tree_seconds = _timed(lambda: EstimationSystem.build(parse_xml(text)))
    stream_system, stream_seconds = _timed(lambda: build_synopsis(text))
    shard_system, shard_seconds = _timed(
        lambda: build_synopsis(text, workers=WORKERS)
    )

    # Peak working set: the tree pipeline materializes every node; the
    # streaming scan holds only the open stack + tables.
    tree_peak = _peak_bytes(lambda: parse_xml(text))
    stream_peak = _peak_bytes(lambda: build_synopsis(text))

    rows = [
        ["tree", "%.2f" % tree_seconds, "%.1f" % (mb / tree_seconds),
         "%.1f" % (tree_peak / 1e6)],
        ["stream", "%.2f" % stream_seconds, "%.1f" % (mb / stream_seconds),
         "%.1f" % (stream_peak / 1e6)],
        ["shard x%d" % WORKERS, "%.2f" % shard_seconds,
         "%.1f" % (mb / shard_seconds), "(bounded by shard cap)"],
    ]
    record_result(
        "build_throughput",
        format_table(
            ["mode", "seconds", "MB/s", "peak MB"],
            rows,
            title="Synopsis build throughput (%.1f MB document)" % mb,
        ),
    )

    # Bit-identity across modes is non-negotiable.
    assert stream_system.encoding_table.all_paths() == tree_system.encoding_table.all_paths()
    assert stream_system.pathid_table == tree_system.pathid_table
    assert stream_system.order_table == tree_system.order_table
    assert shard_system.pathid_table == tree_system.pathid_table
    assert shard_system.order_table == tree_system.order_table

    # Streaming must beat the tree pipeline on peak memory by a wide
    # margin — the whole point of not materializing nodes.  The synopsis
    # tables themselves are a fixed cost shared by both pipelines, so the
    # claim only shows once the document dwarfs them.
    if mb >= 2.0:
        assert stream_peak < tree_peak / 2

    # The parallel claim needs parallel hardware; a single-core container
    # can only verify that sharding does not corrupt the result.
    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
        os.cpu_count() or 1
    )
    if cores >= 2 and mb >= 2.0:
        assert shard_seconds * 1.5 <= stream_seconds, (
            "expected >=1.5x sharded speedup on %d cores: stream %.2fs, "
            "shard %.2fs" % (cores, stream_seconds, shard_seconds)
        )
