"""Table 5 — construction time for order data.

Paper:

    Dataset  CollectOrder  O-Histo Size   O-Histo Time
    SSPlays  2.2 s         1.2-1.8 KB     0.002-0.003 s
    DBLP     4574.8 s      7.4-12.7 KB    0.02-0.03 s
    XMark    2347.2 s      11-21.3 KB     1.2-2.1 s

Shapes to reproduce: collecting order data costs (much) more than
collecting path data on the wide datasets; the o-histogram construction
itself stays fast (single scan); DBLP's order summary is large relative to
its path summary.
"""

import time

from benchmarks.conftest import DATASETS
from repro.harness.tables import format_table, record_result
from repro.histograms.ohistogram import OHistogramSet
from repro.histograms.phistogram import PHistogramSet
from repro.pathenc import label_document
from repro.stats import collect_path_order, collect_pathid_frequencies


def test_table5_order_construction(ctx, benchmark):
    factory = ctx.factory("SSPlays")
    phistograms = PHistogramSet.from_table(factory.pathid_table, 0)
    benchmark.pedantic(
        lambda: OHistogramSet.from_table(factory.order_table, phistograms, 2),
        rounds=3,
        iterations=1,
    )

    rows = []
    order_vs_path = {}
    for name in DATASETS:
        document = ctx.document(name)
        labeled = label_document(document)

        start = time.perf_counter()
        collect_pathid_frequencies(labeled)
        path_seconds = time.perf_counter() - start

        start = time.perf_counter()
        order_table = collect_path_order(labeled)
        order_seconds = time.perf_counter() - start
        order_vs_path[name] = order_seconds / max(path_seconds, 1e-9)

        phisto = PHistogramSet.from_table(ctx.factory(name).pathid_table, 0)
        start = time.perf_counter()
        ohistograms = OHistogramSet.from_table(order_table, phisto, 2)
        ohisto_seconds = time.perf_counter() - start

        rows.append(
            [
                name,
                "%.3f s" % order_seconds,
                "%.2f KB" % (ohistograms.size_bytes() / 1024.0),
                "%.4f s" % ohisto_seconds,
                "%.1fx path-collection time" % order_vs_path[name],
            ]
        )
    record_result(
        "table5_order_construction",
        format_table(
            ["Dataset", "CollectOrder", "O-Histo Size", "O-Histo Time", "Order/Path cost"],
            rows,
            title="Table 5: Construction Time for Order Data",
        ),
    )
    # Order collection is the expensive step on the wide dataset (DBLP).
    assert order_vs_path["DBLP"] > 1.0
