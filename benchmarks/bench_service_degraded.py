"""Extra experiment — service throughput and tail latency under faults.

The reliability claim: when a fraction of handlers stalls (a slow disk,
a GC pause, a wedged downstream), an admission gate turns the overload
into fast 503s for the excess instead of letting every request queue
behind the stalled ones.  The experiment injects a deterministic
``DelayFault`` into every 10th ``server.handle`` call and drives the
same concurrent workload twice:

* **shedding on** — a tight gate (``max_inflight``) refuses the excess
  immediately; clients retry with backoff and eventually land;
* **shedding off** — an effectively unbounded gate admits everything,
  so healthy requests wait behind stalled handler threads.

Reported: goodput (successful estimates/s), p99 latency of successful
requests, and how many requests were shed.  Correctness is pinned: every
*successful* estimate equals the direct ``EstimationSystem.estimate``.
"""

from __future__ import annotations

import threading
import time

from repro.harness.tables import format_table, record_result
from repro.reliability import AdmissionGate, RetryPolicy, faults
from repro.reliability.faults import DelayFault, FaultInjector
from repro.service import (
    EstimationService,
    EndpointClient,
    ServiceError,
    ServiceServer,
    SynopsisRegistry,
)

CLIENT_THREADS = 8
MAX_QUERIES = 60
FAULT_EVERY = 10          # every 10th request stalls ...
FAULT_DELAY_S = 0.05      # ... for 50ms (an eternity next to ~0.1ms estimates)
TIGHT_INFLIGHT = 4        # shedding on: at most 4 concurrent estimates
LOOSE_INFLIGHT = 10_000   # shedding off: admit everything


def _drive_degraded(server, texts, direct):
    """Concurrent sweep against a fault-injected server; returns
    (goodput_qps, p99_ms, shed_count, mismatches)."""
    latencies = []
    mismatches = []
    lock = threading.Lock()

    def worker(offset):
        client = EndpointClient(
            port=server.port,
            retry=RetryPolicy(max_attempts=6, base_backoff_s=0.01),
            retry_budget_s=10.0,
        )
        rotated = texts[offset:] + texts[:offset]
        for text in rotated:
            started = time.perf_counter()
            try:
                value = client.estimate("SSPlays", text)
            except ServiceError:
                continue  # retries exhausted: dropped, not counted
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            with lock:
                latencies.append(elapsed_ms)
                if value != direct[text]:
                    mismatches.append(text)

    start = time.perf_counter()
    pool = [
        threading.Thread(target=worker, args=(i * 7,)) for i in range(CLIENT_THREADS)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    elapsed = time.perf_counter() - start

    metrics = EndpointClient(port=server.port).metrics()
    shed = metrics["reliability"]["shed_total"]
    latencies.sort()
    p99 = latencies[int(0.99 * (len(latencies) - 1))] if latencies else float("nan")
    return len(latencies) / elapsed, p99, shed, mismatches


def test_service_degraded(ctx, benchmark):
    system = ctx.factory("SSPlays").system(0, 0)
    workload = ctx.workload("SSPlays")
    items = (workload.simple + workload.branch + workload.order_branch)[:MAX_QUERIES]
    texts = [item.text for item in items]
    direct = {item.text: system.estimate(item.query) for item in items}

    def run(max_inflight):
        registry = SynopsisRegistry()
        registry.register("SSPlays", system)
        service = EstimationService(
            registry, gate=AdmissionGate(max_inflight=max_inflight, retry_after_s=0.01)
        )
        injector = FaultInjector().plan(
            "server.handle", DelayFault(FAULT_DELAY_S, times=None, every=FAULT_EVERY)
        )
        with faults.inject(injector):
            with ServiceServer(service, port=0) as server:
                return _drive_degraded(server, texts, direct)

    # Timing kernel for the benchmark harness: one shedding-on sweep.
    benchmark.pedantic(lambda: run(TIGHT_INFLIGHT), rounds=1, iterations=1)

    shed_qps, shed_p99, shed_count, shed_bad = run(TIGHT_INFLIGHT)
    open_qps, open_p99, open_count, open_bad = run(LOOSE_INFLIGHT)

    assert shed_bad == [] and open_bad == []

    rows = [
        ["shedding on (%d)" % TIGHT_INFLIGHT, "%.0f" % shed_qps,
         "%.2f" % shed_p99, shed_count],
        ["shedding off", "%.0f" % open_qps, "%.2f" % open_p99, open_count],
    ]
    record_result(
        "service_degraded",
        format_table(
            ["Admission", "goodput (est/s)", "p99 (ms)", "shed"],
            rows,
            title="Extra: service under %d%% injected 50ms stalls, %d client threads"
            % (100 // FAULT_EVERY, CLIENT_THREADS),
        ),
    )
    # The reliability claim: the tight gate actually sheds under the
    # injected stalls, and served results never degrade in either mode.
    assert shed_count > 0
    assert open_count == 0
