"""Figure 9 — p-/o-histogram memory usage vs intra-bucket variance.

Paper shapes to reproduce:

* both histogram sizes are monotonically non-increasing in the variance
  threshold (0 → 14);
* XMark needs the most p-histogram space (most tags and path ids);
* DBLP shows the largest o-histogram/p-histogram ratio (shallow + wide ⇒
  order data dominates).
"""

from benchmarks.conftest import DATASETS
from repro.harness.figures import render_series_chart
from repro.harness.tables import format_table, record_result

VARIANCES = [0, 1, 2, 4, 6, 8, 10, 12, 14]


def test_fig9_histogram_memory(ctx, benchmark):
    factory = ctx.factory("SSPlays")
    benchmark.pedantic(
        lambda: factory.system(p_variance=4, o_variance=4), rounds=1, iterations=1
    )

    series = {}
    rows = []
    for name in DATASETS:
        factory = ctx.factory(name)
        p_sizes, o_sizes = [], []
        for variance in VARIANCES:
            system = factory.system(p_variance=variance, o_variance=variance)
            sizes = system.summary_sizes()
            p_sizes.append(sizes["p_histogram"] / 1024.0)
            o_sizes.append(sizes["o_histogram"] / 1024.0)
        series[name] = (p_sizes, o_sizes)
        for label, values in (("p-histo", p_sizes), ("o-histo", o_sizes)):
            rows.append(
                [name, label] + ["%.2f" % value for value in values]
            )
    charts = [
        render_series_chart(
            {
                "p-histo": (VARIANCES, series[name][0]),
                "o-histo": (VARIANCES, series[name][1]),
            },
            title="Figure 9 (%s): memory KB vs variance" % name,
            x_label="intra-bucket variance",
            y_label="KB",
            width=48,
            height=10,
        )
        for name in DATASETS
    ]
    record_result(
        "fig9_memory",
        format_table(
            ["Dataset", "Histogram"] + ["v=%d" % v for v in VARIANCES],
            rows,
            title="Figure 9: Histogram Memory Usage (KB) vs Intra-Bucket Variance",
        )
        + "\n\n" + "\n\n".join(charts),
    )
    for name in DATASETS:
        p_sizes, o_sizes = series[name]
        assert p_sizes == sorted(p_sizes, reverse=True)
        assert o_sizes == sorted(o_sizes, reverse=True)
    # XMark needs the most p-histogram space.
    assert series["XMark"][0][0] == max(series[n][0][0] for n in DATASETS)
    # DBLP's order data is large relative to its path data (the Section
    # 7.1 observation), in sharp contrast to path-dominated XMark.
    ratios = {n: series[n][1][0] / series[n][0][0] for n in DATASETS}
    assert ratios["DBLP"] > 2.0
    assert ratios["DBLP"] > 5 * ratios["XMark"]
