"""Table 4 — construction time/size for path data: ours vs XSketch.

Paper (C++, Pentium IV):

    Proposed:  collecting path time seconds-to-minutes; p-histogram size
               0.55-24.6 KB; p-histogram construction < 0.001 s.
    XSketch:   statistics construction 2 s ... > 1 week (XMark at 90 KB).

Shapes to reproduce: p-histogram construction is essentially free compared
to collecting the statistics, and orders of magnitude cheaper than XSketch
refinement at a matched byte budget; the XSketch construction gap widens
with the budget.
"""

import time

from benchmarks.conftest import DATASETS
from repro.baselines import XSketch
from repro.harness.tables import format_table, record_result
from repro.histograms.phistogram import PHistogramSet
from repro.pathenc import label_document
from repro.stats import collect_pathid_frequencies


def _collect(document):
    labeled = label_document(document)
    return labeled, collect_pathid_frequencies(labeled)


def test_table4_construction(ctx, benchmark):
    # The benchmark kernel is the paper's headline: p-histogram build time.
    labeled, table = _collect(ctx.document("XMark"))
    benchmark.pedantic(
        lambda: PHistogramSet.from_table(table, 2), rounds=3, iterations=1
    )

    rows = []
    gaps = {}
    for name in DATASETS:
        document = ctx.document(name)
        start = time.perf_counter()
        labeled, freq_table = _collect(document)
        collect_seconds = time.perf_counter() - start

        start = time.perf_counter()
        phistograms = PHistogramSet.from_table(freq_table, 2)
        phisto_seconds = time.perf_counter() - start
        phisto_kb = phistograms.size_bytes(labeled.pathid_size_bytes()) / 1024.0

        budget = int(
            labeled.encoding_table.size_bytes()
            + ctx.factory(name).binary_tree.size_bytes()
            + phistograms.size_bytes(labeled.pathid_size_bytes())
        )
        start = time.perf_counter()
        sketch = XSketch.build(document, budget_bytes=budget)
        xsketch_seconds = time.perf_counter() - start
        gaps[name] = xsketch_seconds / max(phisto_seconds, 1e-9)

        rows.append(
            [
                name,
                "%.2f s" % collect_seconds,
                "%.2f KB" % phisto_kb,
                "%.4f s" % phisto_seconds,
                "%.2f KB" % (sketch.size_bytes() / 1024.0),
                "%.2f s" % xsketch_seconds,
                sketch.construction_rounds,
            ]
        )
    record_result(
        "table4_construction",
        format_table(
            ["Dataset", "CollectPath", "P-Histo Size", "P-Histo Time",
             "XSketch Size", "XSketch Time", "XSketch Rounds"],
            rows,
            title="Table 4: Construction Time, Queries without Order Axes",
        ),
    )
    # XSketch construction must be dramatically slower than the
    # p-histogram build on every dataset (the paper's headline contrast).
    assert all(gap > 10 for gap in gaps.values())
