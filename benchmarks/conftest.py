"""Shared benchmark fixtures and reporting.

Every bench module regenerates one table or figure of the paper at a
configurable scale:

* ``REPRO_BENCH_SCALE``  — dataset scale factor (default 0.6; the paper's
  corpora are 10-100x larger, the *shapes* are scale-invariant).
* ``REPRO_BENCH_RAW``    — raw workload candidates per query class
  (default 700; the paper used 4000).
* ``REPRO_RESULTS_DIR``  — where rendered tables are persisted
  (default ``bench_results/``).

Rendered tables are printed in the pytest terminal summary, so they land
in ``bench_output.txt`` even though passing tests capture stdout.
"""

from __future__ import annotations

import os

import pytest

from repro.datasets import generate
from repro.harness import SystemFactory
from repro.harness.tables import _RESULTS, record_metrics, rendered_results
from repro.workload import WorkloadGenerator

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.6"))
BENCH_RAW = int(os.environ.get("REPRO_BENCH_RAW", "700"))
DATASETS = ("SSPlays", "DBLP", "XMark")


class BenchContext:
    """Lazily built per-dataset artifacts shared by all bench modules."""

    def __init__(self):
        self._documents = {}
        self._factories = {}
        self._workloads = {}

    def document(self, name: str):
        if name not in self._documents:
            self._documents[name] = generate(name, scale=BENCH_SCALE)
        return self._documents[name]

    def factory(self, name: str) -> SystemFactory:
        if name not in self._factories:
            self._factories[name] = SystemFactory(self.document(name))
        return self._factories[name]

    def workload(self, name: str):
        if name not in self._workloads:
            generator = WorkloadGenerator(self.document(name), seed=17)
            self._workloads[name] = generator.full_workload(
                raw_simple=BENCH_RAW, raw_branch=BENCH_RAW, raw_order=BENCH_RAW
            )
        return self._workloads[name]


@pytest.fixture(scope="session")
def ctx() -> BenchContext:
    return BenchContext()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    text = rendered_results()
    if text:
        terminalreporter.write_line("")
        terminalreporter.write_line("REPRODUCED TABLES AND FIGURES")
        for line in text.splitlines():
            terminalreporter.write_line(line)
        # Machine-readable run index beside the tables: which benches
        # produced results under which knobs (benches with numeric
        # metrics additionally write their own BENCH_<name>.json via
        # record_result(..., metrics=...)).
        record_metrics(
            "run_index",
            {
                "results": sorted(_RESULTS),
                "scale": BENCH_SCALE,
                "raw_candidates": BENCH_RAW,
                "exit_status": int(exitstatus),
            },
        )
