"""Semantic result cache: zipf-hot QPS, bit-identity, O(1) invalidation.

Three claims are measured:

1. **Throughput** — on a zipf-distributed (hot-head) schedule the
   read-through semantic cache multiplies single-endpoint QPS: a hit
   costs one canonical-key render and one dict probe instead of a path
   join.  Gated at ``REPRO_SEMCACHE_MIN_SPEEDUP`` (default 3x) per
   dataset, at a hit rate of at least ``REPRO_SEMCACHE_MIN_HIT_RATE``
   (default 0.5; the zipf head runs much higher).
2. **Bit-identity** — cached estimates equal uncached floats *exactly*
   on all three datasets, across the direct path, batches with
   duplicates, and the cluster scatter path (which dedupes repeated
   queries before fan-out).
3. **O(1) invalidation** — ``bump_generation`` costs the same whether
   16 or 65536 entries are resident: invalidation never scans.

The CI ``semcache-smoke`` job runs this at reduced scale with a relaxed
speedup bar (hot-loop margins shrink on small documents and noisy
runners); the bit-identity and hit-rate gates are never relaxed.
"""

from __future__ import annotations

import os
import random
import time

from repro.cluster.router import ClusterRouter, RouterConfig
from repro.harness.tables import format_table, record_result
from repro.semcache import SemanticResultCache
from repro.service import EstimationService, SynopsisRegistry

#: Per-dataset QPS multiple the cached arm must clear on the zipf
#: schedule.  The CI smoke job overrides this to 2x (reduced scale).
MIN_SPEEDUP = float(os.environ.get("REPRO_SEMCACHE_MIN_SPEEDUP", "3.0"))
#: Hit-rate floor on the zipf schedule — never relaxed.
MIN_HIT_RATE = float(os.environ.get("REPRO_SEMCACHE_MIN_HIT_RATE", "0.5"))
ZIPF_S = 1.1
SWEEP_REPEATS = 3
DATASETS = ("SSPlays", "DBLP", "XMark")


def _workload_texts(ctx, name):
    workload = ctx.workload(name)
    return [
        item.text
        for item in (
            workload.simple + workload.branch
            + workload.order_branch + workload.order_trunk
        )
    ]


def _zipf_schedule(texts, seed=29):
    """A hot-head request schedule: rank r drawn ∝ 1/(r+1)^s."""
    count = max(500, 6 * len(texts))
    weights = [1.0 / (rank + 1) ** ZIPF_S for rank in range(len(texts))]
    return random.Random(seed).choices(texts, weights=weights, k=count)


def _best_sweep_s(system, schedule):
    """Best-of-N wall time for one pass over the schedule."""
    best = float("inf")
    for _ in range(SWEEP_REPEATS):
        start = time.perf_counter()
        for text in schedule:
            system.estimate(text)
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


class LoopbackClient:
    """EndpointClient stand-in that calls a service in-process, so the
    scatter measurement exercises the real router dedupe/fan-out logic
    without HTTP noise."""

    def __init__(self, service):
        self._service = service

    def _request(self, method, path, payload=None):
        return self._service.handle_estimate(payload)

    def close(self):
        pass


def test_semcache_zipf_qps(ctx):
    rows = []
    metrics = {}
    speedups = {}
    hit_rates = {}
    for name in DATASETS:
        system = ctx.factory(name).system(0, 0)
        texts = _workload_texts(ctx, name)
        schedule = _zipf_schedule(texts)

        # Control arm: the semantic cache is the only result cache on
        # this path, so disabling it yields honest uncached QPS.
        system.semcache.configure(0, None)
        _best_sweep_s(system, schedule)  # warm parse + kernel caches
        uncached_s = _best_sweep_s(system, schedule)

        system.semcache.configure(max(4096, 2 * len(texts)), None)
        before = system.semcache.stats()
        cold_s = _best_sweep_s(system, schedule)  # first round is the cold fill
        cached_s = min(cold_s, _best_sweep_s(system, schedule))
        after = system.semcache.stats()

        lookups = (after.hits + after.misses) - (before.hits + before.misses)
        hit_rate = (after.hits - before.hits) / max(lookups, 1)
        uncached_qps = len(schedule) / uncached_s
        cached_qps = len(schedule) / cached_s
        speedups[name] = cached_qps / uncached_qps
        hit_rates[name] = hit_rate
        rows.append(
            [name, len(texts), len(schedule),
             "%.0f" % uncached_qps, "%.0f" % cached_qps,
             "%.1fx" % speedups[name], "%.2f" % hit_rate]
        )
        metrics[name] = {
            "distinct_queries": len(texts),
            "requests": len(schedule),
            "uncached_qps": round(uncached_qps, 1),
            "cached_qps": round(cached_qps, 1),
            "speedup": round(speedups[name], 2),
            "hit_rate": round(hit_rate, 4),
        }
        system.semcache.configure(4096, None)

    record_result(
        "semcache_qps",
        format_table(
            ["Dataset", "#distinct", "#requests",
             "uncached QPS", "cached QPS", "speedup", "hit rate"],
            rows,
            title="Semantic cache: zipf(s=%.1f) single-endpoint throughput"
            % ZIPF_S,
        ),
        metrics={
            "zipf_s": ZIPF_S,
            "min_speedup_gate": MIN_SPEEDUP,
            "min_hit_rate_gate": MIN_HIT_RATE,
            "datasets": metrics,
        },
    )
    for name in DATASETS:
        assert hit_rates[name] >= MIN_HIT_RATE, (
            "%s zipf hit rate %.2f below the %.2f floor"
            % (name, hit_rates[name], MIN_HIT_RATE)
        )
        assert speedups[name] >= MIN_SPEEDUP, (
            "%s cached QPS only %.2fx uncached (need %.1fx)"
            % (name, speedups[name], MIN_SPEEDUP)
        )


def test_semcache_bit_identity(ctx):
    """Cached == uncached, bit for bit, on every serving path."""
    rows = []
    checked = {}
    for name in DATASETS:
        system = ctx.factory(name).system(0, 0)
        texts = _workload_texts(ctx, name)[:150]
        assert texts

        system.semcache.configure(0, None)
        uncached = [system.estimate(text) for text in texts]

        system.semcache.configure(max(4096, 2 * len(texts)), None)
        cold = [system.estimate(text) for text in texts]
        warm = [system.estimate(text) for text in texts]
        assert cold == uncached, "%s: cold cached estimates diverged" % name
        assert warm == uncached, "%s: warm cached estimates diverged" % name

        # Batch with duplicates: within-batch CSE fans one evaluation
        # back out to every duplicate position.
        batch = texts + texts[: len(texts) // 2] + texts[::-1]
        expected = dict(zip(texts, uncached))
        assert system.estimate(batch) == [expected[text] for text in batch]

        # Cluster scatter: duplicates collapse before fan-out, replies
        # fan back to every original position.
        registry = SynopsisRegistry()
        registry.register(name, system)
        service = EstimationService(registry)
        router = ClusterRouter(
            ["10.0.0.%d:9000" % (index + 1) for index in range(3)],
            config=RouterConfig(replication=3, scatter_min=4),
            client_factory=lambda address: LoopbackClient(service),
        )
        scatter = texts[:40] + texts[:40]
        document = router.handle_estimate(
            {"synopsis": name, "queries": scatter}
        )
        assert document["count"] == len(scatter)
        got = [result["estimate"] for result in document["results"]]
        assert got == [expected[text] for text in scatter], (
            "%s: scatter estimates diverged from direct evaluation" % name
        )
        checked[name] = {
            "direct": len(texts),
            "batch": len(batch),
            "scatter": len(scatter),
        }
        rows.append([name, len(texts), len(batch), len(scatter), "ok"])

    record_result(
        "semcache_bit_identity",
        format_table(
            ["Dataset", "#direct", "#batch", "#scatter", "identical"],
            rows,
            title="Semantic cache: cached vs uncached bit-identity",
        ),
        metrics={"checked": checked, "identical": True},
    )


def test_generation_bump_is_o1():
    """Invalidation cost must not depend on resident entry count."""

    def best_bump_s(resident):
        cache = SemanticResultCache(capacity=resident + 16)
        for index in range(resident):
            cache.put("//Q%d/$A" % index, "f1d1", float(index))
        assert len(cache) == resident
        best = float("inf")
        for _ in range(5):
            start = time.perf_counter()
            for _ in range(1000):
                cache.bump_generation()
            elapsed = (time.perf_counter() - start) / 1000.0
            if elapsed < best:
                best = elapsed
        return best

    small = best_bump_s(16)
    large = best_bump_s(65536)
    record_result(
        "semcache_bump",
        format_table(
            ["resident entries", "bump cost"],
            [[16, "%.0f ns" % (small * 1e9)], [65536, "%.0f ns" % (large * 1e9)]],
            title="Semantic cache: generation bump is O(1)",
        ),
        metrics={
            "bump_ns_16_entries": round(small * 1e9, 1),
            "bump_ns_65536_entries": round(large * 1e9, 1),
        },
    )
    # 4096x more resident entries must not change the cost class; the
    # generous factor only absorbs timer noise, not an entry scan (a
    # scan would be thousands of times slower).
    assert large < small * 20 + 20e-6, (
        "bump cost grew with residency: %.0f ns at 16 vs %.0f ns at 65536"
        % (small * 1e9, large * 1e9)
    )
