"""Table 3 — space of the encoding table, path-id table and binary tree.

Paper (full-scale corpora):

    Dataset  #DistPaths  PidSize  #DistPid  EncTab   PidTab    Bin-Tree
    SSPlays  40          5 B      115       0.24 KB  0.92 KB   0.93 KB
    DBLP     87          11 B     327       0.39 KB  3.60 KB   2.97 KB
    XMark    344         43 B     6811      2.90 KB  299.7 KB  67.3 KB

Shapes to reproduce: tiny encoding tables everywhere; the binary tree is
roughly break-even for the regular datasets but compresses the XMark pid
table substantially (~78% savings in the paper).
"""

from benchmarks.conftest import DATASETS
from repro.harness.tables import format_table, record_result
from repro.pathenc import PathIdBinaryTree, label_document


def test_table3_space_requirements(ctx, benchmark):
    document = ctx.document("XMark")

    def kernel():
        labeled = label_document(document)
        return PathIdBinaryTree(labeled.distinct_pathids(), labeled.width).compress()

    benchmark.pedantic(kernel, rounds=1, iterations=1)

    rows = []
    ratios = {}
    for name in DATASETS:
        factory = ctx.factory(name)
        labeled = factory.labeled
        tree = factory.binary_tree
        enc_kb = labeled.encoding_table.size_bytes() / 1024.0
        pid_kb = labeled.pathid_table_size_bytes() / 1024.0
        tree_kb = tree.size_bytes() / 1024.0
        ratios[name] = tree_kb / pid_kb
        rows.append(
            [
                name,
                labeled.width,
                "%d B" % labeled.pathid_size_bytes(),
                len(labeled.distinct_pathids()),
                "%.2f KB" % enc_kb,
                "%.2f KB" % pid_kb,
                "%.2f KB" % tree_kb,
            ]
        )
    record_result(
        "table3_space",
        format_table(
            ["Dataset", "#DistPaths", "PidSize", "#DistPid", "EncTab", "PidTab", "BinTree"],
            rows,
            title="Table 3: Space of Encoding Table and Path Id Binary Tree",
        ),
    )
    # XMark gains the most from compression (long ids, chain-rich trie).
    assert ratios["XMark"] < 1.0
    assert ratios["XMark"] == min(ratios.values())
