"""Extra experiment — selectivity estimates steering query execution.

The planner reorders pattern edges most-selective-first using the
estimation system's cardinalities; the structural-join processor then
sweeps smaller intermediate lists.  This is the closing of the loop the
paper motivates ("important in query optimization"): the synopsis built
for estimation directly reduces execution work.

Expected shape, measured honestly: in a semijoin engine most work lives
in the per-tag candidate lists (which only path-id pruning shrinks — see
``bench_structural_join.py``), so edge reordering saves little on the
random workload overall — but it *never hurts*, improves a meaningful
fraction of queries, and on skewed-filter queries (one rare predicate,
one ubiquitous) the saving is visible.  Results stay identical
throughout.
"""

from benchmarks.conftest import DATASETS
from repro.core.system import EstimationSystem
from repro.harness.tables import format_table, record_result
from repro.planner import QueryPlanner
from repro.queryproc import StructuralJoinProcessor
from repro.xmltree.builder import el
from repro.xmltree.document import XmlDocument
from repro.xpath import parse_query


def _skewed_case():
    """One rare field among sixty records of a ubiquitous one."""
    root = el("lib")
    for index in range(600):
        record = el("rec", el("common", el("detail")))
        if index % 40 == 0:
            record.append(el("rare"))
        root.append(record)
    document = XmlDocument(root)
    system = EstimationSystem.build(document, p_variance=0)
    planner = QueryPlanner(system)
    processor = StructuralJoinProcessor(document)
    query = parse_query("//rec[/common/detail][/rare]")
    processor.count(query, use_path_ids=False)
    authored = processor.last_semijoin_work
    processor.count(planner.plan(query), use_path_ids=False)
    planned = processor.last_semijoin_work
    return authored, planned


def test_planner_work_reduction(ctx, benchmark):
    planner = QueryPlanner(ctx.factory("SSPlays").system(0, 0))
    items = ctx.workload("SSPlays").branch[:40]
    benchmark.pedantic(
        lambda: [planner.plan(i.query) for i in items], rounds=1, iterations=1
    )

    rows = []
    for name in DATASETS:
        system = ctx.factory(name).system(0, 0)
        planner = QueryPlanner(system)
        processor = StructuralJoinProcessor(
            ctx.document(name), labeled=ctx.factory(name).labeled
        )
        items = [
            item for item in ctx.workload(name).branch
            if any(len(node.edges) > 1 for node in item.query.nodes())
        ]
        unplanned_work = 0
        planned_work = 0
        mismatches = 0
        improved = 0
        for item in items:
            count = processor.count(item.query, use_path_ids=False)
            before = processor.last_semijoin_work
            planned = planner.plan(item.query)
            planned_count = processor.count(planned, use_path_ids=False)
            after = processor.last_semijoin_work
            unplanned_work += before
            planned_work += after
            if planned_count != count or count != item.actual:
                mismatches += 1
            if after < before:
                improved += 1
        saving = 1.0 - planned_work / max(unplanned_work, 1)
        rows.append(
            [
                name,
                len(items),
                unplanned_work,
                planned_work,
                "%.1f%%" % (saving * 100),
                improved,
                mismatches,
            ]
        )
        assert mismatches == 0
        assert planned_work <= unplanned_work * 1.02  # never meaningfully worse
    authored, planned = _skewed_case()
    rows.append(
        ["skewed filter (crafted)", 1, authored, planned,
         "%.1f%%" % ((1 - planned / authored) * 100), int(planned < authored), 0]
    )
    assert planned < authored * 0.95  # the skewed case shows a real win
    record_result(
        "planner",
        format_table(
            ["Dataset", "#queries", "authored-order work", "planned work",
             "saving", "#improved", "mismatches"],
            rows,
            title="Extra: selectivity-driven edge ordering in the executor",
        ),
    )
