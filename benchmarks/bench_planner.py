"""Extra experiment — cost-based planning and adaptive execution.

The cost-based planner orders each pattern node's semijoin edges using
the estimation system's cardinalities; the adaptive executor then runs
the plan and replans the remaining steps when observed cardinalities
drift from the estimates.  This closes the loop the paper motivates
("important in query optimization"): the synopsis built for estimation
directly steers execution.

Two tables, measured honestly:

* ``planner_execution`` — estimate-ordered vs naive (authored-order)
  execution over the branch workload with path-id pruning off (pruning
  applies every synopsis-visible constraint up front, which leaves join
  ordering nothing to save — see ``docs/PLANNER.md``).  Estimate
  ordering never does more semijoin work, and must not be slower on
  XMark: that assertion is the CI gate.
* ``planner_replans`` — replan trigger rates when the statistics are
  unreliable: coarse histograms (variance 4) over the real workload,
  plus a crafted optimistic-synopsis/sparse-document case where the
  drift is guaranteed.  Results stay exact throughout.
"""

import time

from benchmarks.conftest import DATASETS
from repro.core.options import ExecuteOptions
from repro.core.system import EstimationSystem
from repro.harness.tables import format_table, record_result
from repro.xmltree.parser import parse_xml

UNPRUNED = ExecuteOptions(use_path_ids=False)
NAIVE = ExecuteOptions(use_path_ids=False, naive_order=True)


def _branchy_items(ctx, name, limit=40):
    items = [
        item for item in ctx.workload(name).branch
        if any(len(node.edges) > 1 for node in item.query.nodes())
    ]
    return items[:limit]


def _run(system, items, options):
    """Execute a workload; returns (seconds, semijoin work, mismatches,
    reordered plans, replanned executions, max drift)."""
    work = mismatches = reordered = replanned = 0
    max_drift = 1.0
    start = time.perf_counter()
    for item in items:
        result = system.execute(item.text, options=options)
        work += result.plan.observed_work
        if result.match_count != item.actual:
            mismatches += 1
        if result.plan.reordered:
            reordered += 1
        if result.plan.replans:
            replanned += 1
        max_drift = max(max_drift, result.plan.max_drift)
    return time.perf_counter() - start, work, mismatches, reordered, replanned, max_drift


def test_planner_execution(ctx, benchmark):
    planner = ctx.factory("SSPlays").system(0, 0).planner()
    warm = _branchy_items(ctx, "SSPlays")[:20]
    benchmark.pedantic(
        lambda: [planner.plan(i.text, use_path_ids=False) for i in warm],
        rounds=1, iterations=1,
    )

    rows = []
    gate = {}
    for name in DATASETS:
        system = ctx.factory(name).system(0, 0)
        items = _branchy_items(ctx, name)
        _run(system, items[:5], NAIVE)  # warm parse/labeling caches
        naive_s, naive_work, naive_mism, _, _, _ = _run(system, items, NAIVE)
        planned_s, planned_work, planned_mism, reordered, _, _ = _run(
            system, items, UNPRUNED
        )
        saving = 1.0 - planned_work / max(naive_work, 1)
        gate[name] = (naive_s, planned_s, naive_work, planned_work)
        rows.append(
            [
                name,
                len(items),
                naive_work,
                planned_work,
                "%.1f%%" % (saving * 100),
                reordered,
                "%.2fs vs %.2fs" % (naive_s, planned_s),
                naive_mism + planned_mism,
            ]
        )
        assert naive_mism == planned_mism == 0
        assert planned_work <= naive_work * 1.02  # never meaningfully worse
    record_result(
        "planner_execution",
        format_table(
            ["Dataset", "#queries", "naive work", "planned work", "saving",
             "#reordered", "time (naive vs planned)", "mismatches"],
            rows,
            title="Extra: estimate-ordered vs naive structural-join execution",
        ),
    )
    # CI gate: estimate ordering must not lose to naive ordering on XMark
    # — strict on deterministic semijoin work, 25% slack on wall time.
    naive_s, planned_s, naive_work, planned_work = gate["XMark"]
    assert planned_work <= naive_work
    assert planned_s <= naive_s * 1.25


def _drift_case():
    """Optimistic synopsis (every rec has the rare field) executing a
    sparse document — the drift every mid-plan check is built to catch."""
    def tree(every):
        parts = ["<lib>"]
        for index in range(400):
            parts.append("<rec>")
            if index % every == 0:
                parts.append("<rare/>")
            parts.append("<common/><detail/></rec>")
        parts.append("</lib>")
        return parse_xml("".join(parts))

    system = EstimationSystem.build(tree(1), p_variance=0, o_variance=0)
    sparse = tree(40)
    result = system.execute(
        "/lib/rec[rare][common][detail]", document=sparse, options=UNPRUNED
    )
    return result


def test_planner_replan_rates(ctx, benchmark):
    benchmark.pedantic(_drift_case, rounds=1, iterations=1)

    rows = []
    for name in DATASETS:
        coarse = ctx.factory(name).system(4, 4)
        items = _branchy_items(ctx, name)
        _, _, mismatches, _, replanned, max_drift = _run(coarse, items, UNPRUNED)
        rows.append(
            [
                name + " (p=o=4 histograms)",
                len(items),
                replanned,
                "%.1f%%" % (100.0 * replanned / max(len(items), 1)),
                "%.1f" % max_drift,
                mismatches,
            ]
        )
        assert mismatches == 0  # replanning never changes results
    drifted = _drift_case()
    rows.append(
        [
            "optimistic synopsis (crafted)",
            1,
            int(drifted.plan.replans > 0),
            "100.0%" if drifted.plan.replans else "0.0%",
            "%.1f" % drifted.plan.max_drift,
            0,
        ]
    )
    assert drifted.plan.replans >= 1
    assert drifted.plan.max_drift > drifted.plan.drift_threshold
    assert drifted.match_count == 10  # 400 recs, rare 1-in-40, exact
    record_result(
        "planner_replans",
        format_table(
            ["Workload", "#queries", "#replanned", "replan rate",
             "max drift", "mismatches"],
            rows,
            title="Extra: adaptive re-optimization trigger rates",
        ),
    )
