"""Table 1 — characteristics of the datasets.

Paper (full-scale corpora):

    Dataset  Size     #Distinct Eles  #Eles
    SSPlays  7.5 MB   21              179,690
    DBLP     65.2 MB  31              1,711,542
    XMark    20.4 MB  74              319,815

Shape to reproduce at bench scale: same distinct-tag counts (21/31/74);
DBLP largest by elements; XMark the most path-diverse.
"""

from repro.harness.tables import format_table, record_result
from repro.xmltree.stats import document_stats

from benchmarks.conftest import DATASETS


def test_table1_dataset_characteristics(ctx, benchmark):
    def compute():
        return [document_stats(ctx.document(name)) for name in DATASETS]

    stats = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        [
            name,
            "%.2f MB" % s.size_mb,
            s.distinct_tags,
            s.total_elements,
            s.distinct_paths,
            s.max_depth,
        ]
        for name, s in zip(DATASETS, stats)
    ]
    record_result(
        "table1_datasets",
        format_table(
            ["Dataset", "Size", "#Distinct Eles", "#Eles", "#Distinct Paths", "Max Depth"],
            rows,
            title="Table 1: Characteristics of Datasets (bench scale)",
        ),
    )
    by_name = dict(zip(DATASETS, stats))
    assert by_name["SSPlays"].distinct_tags == 21
    assert by_name["DBLP"].distinct_tags == 31
    assert by_name["XMark"].distinct_tags == 74
    assert by_name["DBLP"].total_elements > by_name["XMark"].total_elements
    assert by_name["XMark"].distinct_paths > by_name["DBLP"].distinct_paths
