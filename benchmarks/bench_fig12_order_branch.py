"""Figure 12 — order-axis queries, target node in the *branch* part.

Four curves per dataset (p-histogram variance 0/1/5/10); x-axis is
o-histogram memory (variance 0/2/6/10 mapped to KB).

Paper shapes to reproduce:

* at p-variance 0 the error is small at low o-variance (paper: < ~10% at
  o-variance 2, < ~6% at 0);
* curves flatten at high p-variance — better order data cannot repair bad
  path data;
* DBLP stays flat across o-variance (order information dominated by the
  sheer sibling width).
"""

from benchmarks.conftest import DATASETS
from repro.harness.metrics import relative_error
from repro.harness.figures import render_series_chart
from repro.harness.tables import format_table, record_result

P_VARIANCES = [0, 1, 5, 10]
O_VARIANCES = [0, 2, 6, 10]


def mean_error(system, items):
    errors = [relative_error(system.estimate(i.query), i.actual) for i in items]
    return sum(errors) / len(errors) if errors else 0.0


def run_grid(ctx, name, items):
    factory = ctx.factory(name)
    grid = {}
    memories = {}
    for p_variance in P_VARIANCES:
        errors = []
        for o_variance in O_VARIANCES:
            system = factory.system(p_variance=p_variance, o_variance=o_variance)
            memories[o_variance] = system.summary_sizes()["o_histogram"] / 1024.0
            errors.append(mean_error(system, items))
        grid[p_variance] = errors
    return grid, memories


def record_grid(result_name, title, per_dataset):
    rows = []
    charts = []
    for name, (grid, memories) in per_dataset.items():
        rows.append(
            [name, "o-histo KB"] + ["%.2f" % memories[o] for o in O_VARIANCES]
        )
        for p_variance in P_VARIANCES:
            rows.append(
                [name, "p-histo.v=%d" % p_variance]
                + ["%.4f" % e for e in grid[p_variance]]
            )
        memory_axis = [memories[o] for o in O_VARIANCES]
        charts.append(
            render_series_chart(
                {
                    "p-histo.v=%d" % p: (memory_axis, grid[p])
                    for p in P_VARIANCES
                },
                title="%s — %s (error vs o-histogram KB)" % (title.split(":")[0], name),
                x_label="o-histogram KB",
                y_label="rel err",
                width=48,
                height=10,
            )
        )
    record_result(
        result_name,
        format_table(
            ["Dataset", "Series"] + ["o.v=%d" % o for o in O_VARIANCES],
            rows,
            title=title,
        )
        + "\n\n" + "\n\n".join(charts),
    )


def test_fig12_order_error_branch_targets(ctx, benchmark):
    sample = ctx.workload("SSPlays").order_branch[:40]
    system = ctx.factory("SSPlays").system(0, 0)
    benchmark.pedantic(
        lambda: [system.estimate(i.query) for i in sample], rounds=1, iterations=1
    )

    per_dataset = {}
    for name in DATASETS:
        items = ctx.workload(name).order_branch
        per_dataset[name] = run_grid(ctx, name, items)
    record_grid(
        "fig12_order_branch",
        "Figure 12: Error of Order-Axis Queries (target in branch part)",
        per_dataset,
    )
    for name in DATASETS:
        grid, _ = per_dataset[name]
        # Best configuration (p=0, o=0) no worse than the worst one.
        best = grid[0][0]
        worst = max(max(row) for row in grid.values())
        assert best <= worst + 1e-9
    # At exact path statistics, more order memory does not hurt much:
    # the p=0 curve's o=0 point is its minimum (up to noise).
    grid, _ = per_dataset["SSPlays"]
    assert grid[0][0] <= min(grid[0]) + 0.02
