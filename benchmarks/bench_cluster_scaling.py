"""Extra experiment — the cluster tier: scatter-gather scaling and
incremental maintenance vs full rebuild.

Two claims under test:

* **Horizontal scaling** — a router scattering batches over 3 backend
  *processes* delivers >= 2x the QPS of the same router over 1 backend
  (the bar applies on a >= 4-core host; the cluster cannot beat the
  machine), and killing one replica mid-run yields **zero failed
  requests** — the failover path re-serves every chunk (asserted on any
  machine).
* **Incremental maintenance** — absorbing a ~10% document delta through
  ``IncrementalSynopsis.apply`` is >= 5x faster than rebuilding the
  synopsis from scratch, and the merged system estimates **bit-identical**
  to the from-scratch build (asserted on any machine).

Backends run in separate processes (plan cache off, so every query costs
real estimation work) and load is generated from separate processes —
threaded clients would serialize on the load generator's GIL and mask
server-side scaling.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import pytest

from repro import persist
from repro.build import build_synopsis, outline
from repro.cluster.delta import IncrementalSynopsis
from repro.cluster.router import ClusterRouter, RouterConfig, RouterServer
from repro.harness.tables import format_table, record_result
from repro.service import EndpointClient
from repro.xmltree.serializer import serialize

BACKENDS = 3
CLIENT_PROCESSES = 3
PASSES = 3
MAX_QUERIES = 36
DELTA_TARGET_BYTES = int(
    os.environ.get("REPRO_BENCH_DELTA_BYTES", str(6 * 1024 * 1024))
)
#: Acceptance bars (the smoke run shrinks the corpus far below the scale
#: these were calibrated for and relaxes them accordingly).
MIN_DELTA_SPEEDUP = 5.0
MIN_SCALING = 2.0

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="backend processes need os.fork"
)


# ----------------------------------------------------------------------
# Backend + load-generator processes
# ----------------------------------------------------------------------


def _backend_main(snapshot_dir: str, queue) -> None:
    """One estimation instance in its own process, plan cache off."""
    from repro.service import EstimationService, ServiceServer, SynopsisRegistry
    from repro.service.plancache import PlanCache

    registry = SynopsisRegistry(snapshot_dir)
    registry.scan()
    service = EstimationService(registry, plan_cache=PlanCache(capacity=0))
    server = ServiceServer(service, port=0).start()
    queue.put(server.port)
    while True:  # killed by the parent (terminate() == the chaos test)
        time.sleep(3600)


def _start_backends(snapshot_dir: str, count: int):
    queue = multiprocessing.Queue()
    processes = []
    ports = []
    for _ in range(count):
        process = multiprocessing.Process(
            target=_backend_main, args=(snapshot_dir, queue), daemon=True
        )
        process.start()
        processes.append(process)
    for _ in range(count):
        ports.append(queue.get(timeout=60))
    return processes, ["127.0.0.1:%d" % port for port in sorted(ports)]


def _drive_one(port, texts, passes, out):
    served = failed = 0
    with EndpointClient(port=port) as client:
        for _ in range(passes):
            try:
                values = client.estimate_batch("SSPlays", texts)
                served += len(values)
            except Exception:
                failed += len(texts)
    out.put((served, failed))


def _drive(port, texts, processes=CLIENT_PROCESSES, passes=PASSES):
    out = multiprocessing.Queue()
    drivers = [
        multiprocessing.Process(target=_drive_one, args=(port, texts, passes, out))
        for _ in range(processes)
    ]
    start = time.perf_counter()
    for driver in drivers:
        driver.start()
    results = [out.get(timeout=300) for _ in drivers]
    for driver in drivers:
        driver.join(timeout=60)
    elapsed = time.perf_counter() - start
    served = sum(count for count, _ in results)
    failed = sum(bad for _, bad in results)
    return served / elapsed, served, failed


# ----------------------------------------------------------------------
# Scatter-gather scaling + kill-one-replica chaos
# ----------------------------------------------------------------------


def test_cluster_router_scaling(ctx, benchmark, tmp_path_factory):
    system = ctx.factory("SSPlays").system(0, 0)
    workload = ctx.workload("SSPlays")
    items = (workload.simple + workload.branch)[:MAX_QUERIES]
    texts = [item.text for item in items]
    direct = [system.estimate(item.query) for item in items]

    snapshot_dir = tmp_path_factory.mktemp("cluster-bench")
    persist.save(system, str(snapshot_dir / "SSPlays.json"))

    processes, addresses = _start_backends(str(snapshot_dir), BACKENDS)
    qps_by_backends = {}
    rows = []
    try:
        for count in (1, BACKENDS):
            router = ClusterRouter(
                addresses[:count],
                config=RouterConfig(
                    replication=min(2, count), scatter_min=4, timeout=60.0
                ),
            )
            with RouterServer(router, host="127.0.0.1", port=0) as front:
                with EndpointClient(port=front.port) as probe:
                    assert probe.estimate_batch("SSPlays", texts) == direct
                if count == 1:
                    benchmark.pedantic(
                        lambda: _drive(front.port, texts, processes=1, passes=1),
                        rounds=1, iterations=1,
                    )
                qps, served, failed = _drive(front.port, texts)
                assert failed == 0
                qps_by_backends[count] = qps
                rows.append([str(count), str(served), "%.0f" % qps, "0"])

        # Chaos: kill the primary replica of SSPlays mid-run; every
        # request must still be answered (and answered correctly).
        router = ClusterRouter(
            addresses, config=RouterConfig(replication=2, scatter_min=4, timeout=60.0)
        )
        with RouterServer(router, host="127.0.0.1", port=0) as front:
            with EndpointClient(port=front.port) as probe:
                assert probe.estimate_batch("SSPlays", texts) == direct
                victim = router.replicas("SSPlays")[0].address
                processes[addresses.index(victim)].terminate()
                failed = 0
                for _ in range(4):
                    values = probe.estimate_batch("SSPlays", texts)
                    assert values == direct
            qps, served, failed = _drive(front.port, texts)
            assert failed == 0, "requests failed after killing a replica"
            rows.append(["%d (1 killed)" % BACKENDS, str(served), "%.0f" % qps, "0"])
    finally:
        for process in processes:
            process.terminate()
        for process in processes:
            process.join(timeout=10)

    record_result(
        "cluster_scaling",
        format_table(
            ["backends", "#served", "QPS", "#failed"],
            rows,
            title="Extra: scatter-gather router scaling, %d client processes "
            "(%d-core host, SSPlays workload)"
            % (CLIENT_PROCESSES, os.cpu_count() or 1),
        ),
    )

    if (os.cpu_count() or 1) >= 4:
        assert qps_by_backends[BACKENDS] >= MIN_SCALING * qps_by_backends[1], (
            "%d backends must deliver >=%.1fx the single-backend QPS on a "
            "multi-core host: %r" % (BACKENDS, MIN_SCALING, qps_by_backends)
        )


# ----------------------------------------------------------------------
# Incremental delta vs full rebuild
# ----------------------------------------------------------------------


def test_delta_apply_vs_full_rebuild(ctx, benchmark):
    """A ~10% append absorbed incrementally vs rebuilding everything."""
    text = serialize(ctx.document("XMark"))
    parsed = outline(text)
    head = text[: parsed.spans[0][0]]
    body = text[parsed.spans[0][0] : parsed.spans[-1][1]]
    tail = text[parsed.spans[-1][1] :]
    copies = max(10, DELTA_TARGET_BYTES // max(1, len(body)))
    base_copies = max(1, (copies * 9) // 10)
    delta_copies = max(1, copies - base_copies)
    base_text = head + body * base_copies + tail
    delta_fragment = body * delta_copies

    queries = [item.text for item in ctx.workload("XMark").simple[:12]]

    maintainer = IncrementalSynopsis.build(base_text, name="xmark-inc")

    benchmark.pedantic(
        maintainer.scan_fragment, args=(delta_fragment,), rounds=1, iterations=1
    )
    started = time.perf_counter()
    partial = maintainer.scan_fragment(delta_fragment)
    outcome = maintainer.apply(partial, force_refresh=True)
    delta_s = time.perf_counter() - started
    assert outcome.refreshed

    started = time.perf_counter()
    combined = build_synopsis(head + body * copies + tail)
    rebuild_s = time.perf_counter() - started

    for query in queries:
        assert outcome.system.estimate(query) == combined.estimate(query), query

    speedup = rebuild_s / max(delta_s, 1e-9)
    record_result(
        "cluster_delta",
        format_table(
            ["path", "seconds", "speedup"],
            [
                ["full rebuild (%.1f MB)" % (len(body) * copies / 1e6), "%.2f" % rebuild_s, "1.0x"],
                ["delta apply (%.0f%% append)" % (100.0 * delta_copies / copies), "%.2f" % delta_s, "%.1fx" % speedup],
            ],
            title="Extra: incremental delta apply vs full rebuild "
            "(bit-identical estimates on %d queries)" % len(queries),
        ),
    )
    assert speedup >= MIN_DELTA_SPEEDUP, (
        "delta apply must be >=%.1fx faster than a full rebuild "
        "(rebuild %.2fs, delta %.2fs)" % (MIN_DELTA_SPEEDUP, rebuild_s, delta_s)
    )
