"""Extra experiment — QoS-tiered admission vs a flat gate under overload.

The robustness claim behind the tiered gate: when mixed traffic (point
lookups an optimizer is blocking on, plus bulk batch estimation) offers
more load than the server can absorb, a flat admission gate makes every
class pay equally — interactive requests queue behind bulk work and shed
at the same rate.  QoS tiers box bulk into a sliver of the slot pool,
give freed slots to waiting interactive work first, and (with brownout)
stop admitting bulk entirely, so the overload lands on the traffic that
can wait.

The experiment drives the *same* deterministic schedule (diurnal +
bursts, 30/10/60 interactive/standard/bulk mix) at several offered loads
against two otherwise identical servers whose handlers are slowed by an
injected 40ms delay (so capacity is ``max_inflight / delay`` requests/s
rather than "as fast as the estimator runs"):

* **flat** — one :class:`AdmissionGate` pool shared by everyone;
* **tiered** — :func:`default_tiers` + :class:`BrownoutController`.

Reported: the latency-vs-offered-load curve per gate (per-tier p50/p99,
goodput, sheds) and the capacity knee.  Gates: at the overload point the
tiered server's interactive p99 must beat the flat server's by
``P99_ADVANTAGE``x, interactive sheds stay at zero at the first
overloaded level (and within timing jitter at the extreme level) while
the tiered bulk lane is throttled, and the tiered knee must be nonzero.
"""

from __future__ import annotations

import os

from repro.harness.tables import record_result
from repro.reliability import AdmissionGate, faults
from repro.reliability.brownout import BrownoutController
from repro.reliability.faults import DelayFault, FaultInjector
from repro.reliability.shedding import (
    BULK_TIER,
    INTERACTIVE_TIER,
    TieredAdmissionGate,
    default_tiers,
)
from repro.service import EstimationService, ServiceServer, SynopsisRegistry
from repro.traffic import (
    TrafficConfig,
    TrafficDriver,
    format_curve,
    generate_schedule,
    knee_qps,
    summarize,
)

MAX_INFLIGHT = 4
HANDLE_DELAY_S = 0.04     # per-request stall: capacity ~= 4/0.04 = 100 req/s
OFFERED_QPS = (15.0, 90.0, 150.0)
DURATION_S = 4.0
WORKERS = 32
MAX_QUERIES = 24
#: At the overload point, tiered interactive p99 must be at least this
#: factor better than flat interactive p99.
P99_ADVANTAGE = 2.0

TRAFFIC = dict(
    seed=11,
    base_qps=50.0,            # overridden per level via .scaled()
    diurnal_amplitude=0.15,
    burst_rate=0.25,
    burst_factor=1.5,
    burst_duration_s=0.5,
    interactive_weight=0.20,
    standard_weight=0.10,
    bulk_weight=0.70,         # the overload is bulk-heavy by design
    batch_size=8,
)


def _make_service(system, tiered: bool) -> EstimationService:
    registry = SynopsisRegistry()
    registry.register("SSPlays", system)
    if tiered:
        gate = TieredAdmissionGate(
            tiers=default_tiers(MAX_INFLIGHT), max_total=MAX_INFLIGHT
        )
        brownout = BrownoutController()
    else:
        gate = AdmissionGate(
            max_inflight=MAX_INFLIGHT,
            max_queue=8,
            queue_timeout_s=0.25,
            retry_after_s=0.5,
        )
        brownout = None
    return EstimationService(registry, gate=gate, brownout=brownout)


def _run_curve(system, texts, tiered: bool):
    """One full load sweep against a fresh server; returns LoadPoints."""
    service = _make_service(system, tiered)
    injector = FaultInjector().plan(
        "server.handle", DelayFault(HANDLE_DELAY_S, times=None, every=1)
    )
    points = []
    with faults.inject(injector):
        with ServiceServer(service, port=0) as server:
            driver = TrafficDriver(
                server.host, server.port, "SSPlays", workers=WORKERS
            )
            for qps in OFFERED_QPS:
                config = TrafficConfig(
                    duration_s=DURATION_S, **TRAFFIC
                ).scaled(qps)
                events = generate_schedule(config, texts)
                horizon = max(DURATION_S, events[-1].at_s)
                report = driver.run(events)
                points.append(
                    summarize(
                        report.outcomes,
                        max(report.wall_s, horizon),
                        len(events) / horizon,
                    )
                )
    return points


def test_traffic_capacity(ctx, benchmark):
    system = ctx.factory("SSPlays").system(0, 0)
    workload = ctx.workload("SSPlays")
    texts = [
        item.text
        for item in (workload.simple + workload.branch)[:MAX_QUERIES]
    ]

    # Timing kernel: one short tiered run at the lowest offered load.
    def kernel():
        events = generate_schedule(
            TrafficConfig(duration_s=1.0, **TRAFFIC), texts
        )
        service = _make_service(system, tiered=True)
        with ServiceServer(service, port=0) as server:
            TrafficDriver(
                server.host, server.port, "SSPlays", workers=8
            ).run(events)

    benchmark.pedantic(kernel, rounds=1, iterations=1)

    flat = _run_curve(system, texts, tiered=False)
    tiered = _run_curve(system, texts, tiered=True)

    record_result(
        "traffic_capacity",
        "\n\n".join(
            [
                format_curve(
                    flat,
                    title="traffic capacity: flat gate "
                    "(max_inflight=%d, %.0fms handler)"
                    % (MAX_INFLIGHT, HANDLE_DELAY_S * 1000),
                ),
                format_curve(
                    tiered,
                    title="traffic capacity: QoS tiers + brownout "
                    "(same pool, bulk boxed to %d slot)"
                    % max(1, MAX_INFLIGHT // 4),
                ),
            ]
        ),
    )

    overload_flat = flat[-1]
    overload_tiered = tiered[-1]
    flat_interactive = overload_flat.tier(INTERACTIVE_TIER)
    tiered_interactive = overload_tiered.tier(INTERACTIVE_TIER)
    tiered_bulk = overload_tiered.tier(BULK_TIER)

    # The QoS gate keeps interactive sheds at zero (within thread-timing
    # jitter at the most extreme level) everywhere on the curve...
    for point in tiered:
        interactive = point.tier(INTERACTIVE_TIER)
        assert interactive is not None
        assert interactive.shed <= max(1, int(0.05 * interactive.offered))
    # ...and at the first overloaded level the contrast is absolute:
    # bulk is already being throttled hard while interactive sheds
    # nothing at all.
    mid = tiered[1]
    assert mid.tier(BULK_TIER).shed > 0
    assert mid.tier(INTERACTIVE_TIER).shed == 0
    assert tiered_bulk.shed > 0
    # The timing-sensitive bars self-gate on host parallelism: on a
    # 2-core CI runner the open-loop driver and the server fight for
    # too little CPU for tail latencies and the lightest level to be
    # trustworthy.  The shed-placement assertions above hold anywhere.
    assert tiered_interactive.served > 0 and flat_interactive.served > 0
    cores = os.cpu_count() or 1
    if P99_ADVANTAGE and cores >= 4:
        # Interactive tail latency is the headline: the tiered gate
        # keeps it a multiple better under the same overload.
        assert flat_interactive.p99_ms >= P99_ADVANTAGE * tiered_interactive.p99_ms
    if cores >= 4:
        # The tiered server still absorbs the lightest load completely.
        assert knee_qps(tiered) > 0.0
