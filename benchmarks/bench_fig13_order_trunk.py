"""Figure 13 — order-axis queries, target node in the *trunk* part.

Same grid as Figure 12 but the targets are trunk nodes, estimated with
Equation 5's min-combination.

Paper shapes to reproduce:

* at low p-variance the estimation stays accurate even at high o-variance
  (the no-order component of the min compensates for coarse order data);
* trunk targets are estimated at least as well as branch targets on the
  regular datasets.
"""

from benchmarks.bench_fig12_order_branch import (
    O_VARIANCES,
    P_VARIANCES,
    mean_error,
    record_grid,
    run_grid,
)
from benchmarks.conftest import DATASETS


def test_fig13_order_error_trunk_targets(ctx, benchmark):
    sample = ctx.workload("SSPlays").order_trunk[:40]
    system = ctx.factory("SSPlays").system(0, 0)
    benchmark.pedantic(
        lambda: [system.estimate(i.query) for i in sample], rounds=1, iterations=1
    )

    per_dataset = {}
    for name in DATASETS:
        items = ctx.workload(name).order_trunk
        per_dataset[name] = run_grid(ctx, name, items)
    record_grid(
        "fig13_order_trunk",
        "Figure 13: Error of Order-Axis Queries (target in trunk part)",
        per_dataset,
    )
    # Trunk targets beat branch targets at (p=0, o=0) on the regular
    # datasets (SSPlays, DBLP) — the Figure 12 vs 13 comparison.
    for name in ("SSPlays", "DBLP"):
        trunk_grid, _ = per_dataset[name]
        system = ctx.factory(name).system(0, 0)
        branch_err = mean_error(system, ctx.workload(name).order_branch)
        assert trunk_grid[0][0] <= branch_err + 1e-9
        assert trunk_grid[0][0] < 0.2
    # Low p-variance rows stay flat-ish: max - min across o-variance small.
    trunk_grid, _ = per_dataset["DBLP"]
    row = trunk_grid[0]
    assert max(row) - min(row) < 0.1
