"""Ablation C — path-join variants.

Two switches of the join are ablated on the no-order workload:

* **fixpoint vs single pass** — the paper prunes each adjacent pair once;
  a removal can enable further pruning upstream, so the fixpoint is never
  less accurate;
* **depth-consistent vs pairwise containment** — the literal pairwise tag
  test lets recursive schemas (XMark) match chains across different
  recursion levels; the depth-consistent test restores Theorem 4.1's
  exactness up to same-id multi-depth ambiguity (DESIGN.md §5).
"""

from benchmarks.conftest import DATASETS
from repro.harness.metrics import relative_error
from repro.harness.tables import format_table, record_result


def mean_error(system, items, **kwargs):
    errors = [
        relative_error(system.estimate(i.query, **kwargs), i.actual) for i in items
    ]
    return sum(errors) / len(errors) if errors else 0.0


def test_ablation_pathjoin_variants(ctx, benchmark):
    system = ctx.factory("XMark").system(0, 0)
    sample = ctx.workload("XMark").simple[:40]
    benchmark.pedantic(
        lambda: [system.estimate(i.query, fixpoint=False) for i in sample],
        rounds=1,
        iterations=1,
    )

    rows = []
    results = {}
    for name in DATASETS:
        system = ctx.factory(name).system(0, 0)
        items = ctx.workload(name).no_order()
        full = mean_error(system, items)
        single_pass = mean_error(system, items, fixpoint=False)
        pairwise = mean_error(system, items, depth_consistent=False)
        results[name] = (full, single_pass, pairwise)
        rows.append(
            [name, len(items), "%.4f" % full, "%.4f" % single_pass, "%.4f" % pairwise]
        )
    record_result(
        "ablation_pathjoin",
        format_table(
            ["Dataset", "#queries", "fixpoint+depth", "single pass", "pairwise test"],
            rows,
            title="Ablation C: path-join fixpoint and depth-consistency",
        ),
    )
    for name in DATASETS:
        full, single_pass, pairwise = results[name]
        # More pruning is not a theorem-level guarantee of lower error
        # (Eq.-2 ratios can flip slightly), so allow a small tolerance;
        # the headline gaps at bench scale are an order of magnitude.
        assert full <= single_pass + 0.01
        assert full <= pairwise + 0.01
    # Depth consistency matters specifically on the recursive dataset.
    assert results["XMark"][2] > results["XMark"][0] + 0.01
