"""Ablation A — variance-bounded vs equi-count p-histogram buckets.

The paper controls buckets by an intra-bucket variance threshold; the
classic alternative cuts the frequency-sorted list into equal-count
buckets.  At pinned memory (same per-tag bucket counts), the
variance-bounded policy should estimate no worse: it never mixes wildly
different frequencies in one bucket.
"""

from benchmarks.conftest import DATASETS
from repro.core.noorder import estimate_no_order
from repro.harness.metrics import relative_error
from repro.harness.tables import format_table, record_result
from repro.histograms.equiwidth import EquiCountPHistogramSet
from repro.histograms.phistogram import PHistogramSet

VARIANCES = [1, 4, 10]


def mean_error(provider, table, items):
    errors = [
        relative_error(
            estimate_no_order(item.query, provider, table), item.actual
        )
        for item in items
    ]
    return sum(errors) / len(errors) if errors else 0.0


def test_ablation_bucketing_policy(ctx, benchmark):
    factory = ctx.factory("SSPlays")
    benchmark.pedantic(
        lambda: PHistogramSet.from_table(factory.pathid_table, 4),
        rounds=3,
        iterations=1,
    )

    rows = []
    wins = 0
    comparisons = 0
    for name in DATASETS:
        factory = ctx.factory(name)
        items = ctx.workload(name).no_order()
        encoding_table = factory.labeled.encoding_table
        for variance in VARIANCES:
            reference = PHistogramSet.from_table(factory.pathid_table, variance)
            equicount = EquiCountPHistogramSet.from_reference(
                factory.pathid_table, reference
            )
            variance_err = mean_error(reference, encoding_table, items)
            equicount_err = mean_error(equicount, encoding_table, items)
            comparisons += 1
            if variance_err <= equicount_err + 1e-9:
                wins += 1
            rows.append(
                [
                    name,
                    variance,
                    reference.total_buckets(),
                    "%.4f" % variance_err,
                    "%.4f" % equicount_err,
                ]
            )
    record_result(
        "ablation_bucketing",
        format_table(
            ["Dataset", "variance", "#buckets", "variance-bounded err", "equi-count err"],
            rows,
            title="Ablation A: bucketing policy at pinned memory",
        ),
    )
    # The variance-bounded policy wins (or ties) in the clear majority.
    assert wins >= comparisons * 2 // 3
