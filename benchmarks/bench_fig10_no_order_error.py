"""Figure 10 — estimation error of queries without order axes.

Per dataset, the average relative error of simple / branch / all queries
as the p-histogram memory varies (via the variance threshold).

Paper shapes to reproduce:

* error decreases as p-histogram memory grows (variance shrinks);
* at variance 0 simple queries are (near-)exact — exact for the
  non-recursive datasets, small residual for XMark's recursion;
* branch queries carry more error than simple queries (< ~7% at v=0 for
  the paper's corpora).
"""

import pytest

from benchmarks.conftest import DATASETS
from repro.harness.metrics import relative_error
from repro.harness.figures import render_series_chart
from repro.harness.tables import format_table, record_result

VARIANCES = [14, 8, 4, 2, 1, 0]  # increasing memory, like the paper's x-axis


def mean_error(system, items):
    if not items:
        return 0.0
    errors = [relative_error(system.estimate(i.query), i.actual) for i in items]
    return sum(errors) / len(errors)


def test_fig10_no_order_error(ctx, benchmark):
    factory = ctx.factory("SSPlays")
    sample = ctx.workload("SSPlays").simple[:50]
    system0 = factory.system(p_variance=0)
    benchmark.pedantic(
        lambda: [system0.estimate(i.query) for i in sample], rounds=1, iterations=1
    )

    rows = []
    results = {}
    memories_by_name = {}
    for name in DATASETS:
        factory = ctx.factory(name)
        workload = ctx.workload(name)
        per_class = {"simple": [], "branch": [], "all": []}
        memories = []
        for variance in VARIANCES:
            system = factory.system(p_variance=variance)
            memories.append(system.summary_sizes()["p_histogram"] / 1024.0)
            simple_err = mean_error(system, workload.simple)
            branch_err = mean_error(system, workload.branch)
            count = len(workload.simple) + len(workload.branch)
            all_err = (
                (simple_err * len(workload.simple) + branch_err * len(workload.branch))
                / count
            )
            per_class["simple"].append(simple_err)
            per_class["branch"].append(branch_err)
            per_class["all"].append(all_err)
        results[name] = per_class
        memories_by_name[name] = memories
        rows.append([name, "memKB"] + ["%.2f" % m for m in memories])
        for klass in ("simple", "branch", "all"):
            rows.append(
                [name, klass] + ["%.4f" % e for e in per_class[klass]]
            )
    charts = [
        render_series_chart(
            {
                klass: (memories_by_name[name], results[name][klass])
                for klass in ("simple", "branch", "all")
            },
            title="Figure 10 (%s): relative error vs p-histogram KB" % name,
            x_label="p-histogram KB",
            y_label="rel err",
            width=48,
            height=10,
        )
        for name in DATASETS
    ]
    record_result(
        "fig10_no_order_error",
        format_table(
            ["Dataset", "Series"] + ["v=%d" % v for v in VARIANCES],
            rows,
            title="Figure 10: Relative Error vs P-Histogram Memory (no order axes)",
        )
        + "\n\n" + "\n\n".join(charts),
    )
    for name in DATASETS:
        per_class = results[name]
        # Error at max memory (v=0) is no worse than at min memory (v=14).
        assert per_class["all"][-1] <= per_class["all"][0] + 1e-9
    # Simple queries exact at v=0 on the non-recursive datasets.
    assert results["SSPlays"]["simple"][-1] == pytest.approx(0.0, abs=1e-9)
    assert results["DBLP"]["simple"][-1] == pytest.approx(0.0, abs=1e-9)
    # XMark's recursion residual stays small.
    assert results["XMark"]["simple"][-1] < 0.15
    # Branch error at v=0 is modest (paper: < 7%; allow slack at scale).
    assert results["SSPlays"]["branch"][-1] < 0.10
    assert results["DBLP"]["branch"][-1] < 0.10
