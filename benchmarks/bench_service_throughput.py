"""Extra experiment — estimation-service throughput, plan cache on vs off.

The serving claim: a long-lived synopsis server with a compiled-plan LRU
(parsed AST + route + scoped rewrite + memoized estimate, keyed by
synopsis generation) answers hot queries without re-parsing, re-routing
or re-joining.  The load generator drives an **in-process** threaded
HTTP server — real sockets, real JSON, real handler threads — with 8
concurrent clients sweeping the Table-2 workload, and compares QPS and
p95 latency between a warm cache and a disabled one (capacity 0).

Correctness is pinned alongside the speed claim: every served estimate
is checked byte-for-byte against direct ``EstimationSystem.estimate``.
"""

from __future__ import annotations

import threading
import time

from repro.harness.tables import format_table, record_result
from repro.service import (
    EstimationService,
    PlanCache,
    EndpointClient,
    ServiceServer,
    SynopsisRegistry,
)

CLIENT_THREADS = 8
PASSES_PER_THREAD = 2
MAX_QUERIES = 120


def _drive(server, texts, passes=PASSES_PER_THREAD, threads=CLIENT_THREADS):
    """Sweep ``texts`` from ``threads`` concurrent clients; returns
    (qps, p95_ms, hit_rate, results-by-text from one thread)."""
    results = {}
    errors = []

    def worker(offset, collect):
        client = EndpointClient(port=server.port)
        rotated = texts[offset:] + texts[:offset]
        for _ in range(passes):
            for text in rotated:
                try:
                    value = client.estimate("SSPlays", text)
                except Exception as error:  # pragma: no cover - diagnostics
                    errors.append((text, error))
                    return
                if collect:
                    results[text] = value

    start = time.perf_counter()
    pool = [
        threading.Thread(target=worker, args=(i * 7, i == 0))
        for i in range(threads)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    elapsed = time.perf_counter() - start
    assert not errors, errors[:3]

    metrics = EndpointClient(port=server.port).metrics()
    qps = threads * passes * len(texts) / elapsed
    p95 = metrics["latency_ms"]["p95_ms"]
    hit_rate = metrics["plan_cache"]["hit_rate"]
    return qps, p95, hit_rate, results


def _drive_batch(server, texts, passes=PASSES_PER_THREAD, threads=CLIENT_THREADS):
    """Same sweep through the batch endpoint; returns (qps, results).

    Each pass is one ``POST /estimate`` with every text **twice**: the
    duplicate half exercises the batch-local memo (computed once, served
    twice), and all queries of the batch share one warm kernel.
    """
    batch = texts + texts
    results = {}
    errors = []

    def worker(offset, collect):
        client = EndpointClient(port=server.port)
        rotated = batch[offset:] + batch[:offset]
        for _ in range(passes):
            try:
                values = client.estimate_batch("SSPlays", rotated)
            except Exception as error:  # pragma: no cover - diagnostics
                errors.append(error)
                return
            if collect:
                results.update(zip(rotated, values))

    start = time.perf_counter()
    pool = [
        threading.Thread(target=worker, args=(i * 7, i == 0))
        for i in range(threads)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    elapsed = time.perf_counter() - start
    assert not errors, errors[:3]
    qps = threads * passes * len(batch) / elapsed
    return qps, results


def test_service_throughput(ctx, benchmark):
    system = ctx.factory("SSPlays").system(0, 0)
    workload = ctx.workload("SSPlays")
    items = (workload.simple + workload.branch + workload.order_branch)[:MAX_QUERIES]
    texts = [item.text for item in items]
    direct = {item.text: system.estimate(item.query) for item in items}
    # This A/B isolates the compiled-plan cache, so the semantic result
    # cache underneath it is held off for both arms — it would otherwise
    # serve the hot path in the cache-off arm too and drown the plan
    # cache's effect in noise (bench_semcache measures that layer).
    system.semcache.configure(0, None)

    def run(cache_capacity, driver=_drive):
        registry = SynopsisRegistry()
        registry.register("SSPlays", system)
        service = EstimationService(registry, plan_cache=PlanCache(cache_capacity))
        with ServiceServer(service, port=0) as server:
            return driver(server, texts)

    # Timing kernel for the benchmark harness: one cached sweep.
    benchmark.pedantic(lambda: run(1024), rounds=1, iterations=1)

    # Interleaved best-of-3 sweeps per arm: thread-pool timing on a
    # loaded host jitters far more than the cache effect at smoke scale,
    # and interleaving means a load swing hits both arms instead of
    # penalizing whichever happened to run second.
    on_measured = []
    off_measured = []
    for _ in range(3):
        on_measured.append(run(1024))
        off_measured.append(run(0))
    on_qps, on_p95, on_hit_rate, on_results = max(
        on_measured, key=lambda measured: measured[0]
    )
    off_qps, off_p95, off_hit_rate, off_results = max(
        off_measured, key=lambda measured: measured[0]
    )
    batch_qps, batch_results = run(1024, driver=_drive_batch)

    # Served numbers are the direct numbers — cache, batch or neither.
    assert on_results == direct
    assert off_results == direct
    assert batch_results == direct

    rows = [
        ["cache on (1024)", len(texts), "%.0f" % on_qps, "%.2f" % on_p95,
         "%.0f%%" % (100 * on_hit_rate)],
        ["cache off", len(texts), "%.0f" % off_qps, "%.2f" % off_p95,
         "%.0f%%" % (100 * off_hit_rate)],
        ["batch endpoint", 2 * len(texts), "%.0f" % batch_qps, "-", "-"],
        ["speedup", "-", "%.2fx" % (on_qps / max(off_qps, 1e-9)), "-", "-"],
        ["batch speedup", "-", "%.2fx" % (batch_qps / max(on_qps, 1e-9)), "-", "-"],
    ]
    record_result(
        "service_throughput",
        format_table(
            ["Plan cache", "#queries", "QPS", "p95 (ms)", "hit rate"],
            rows,
            title="Extra: service throughput, %d client threads (SSPlays workload)"
            % CLIENT_THREADS,
        ),
    )
    # The tentpole claim: the compiled-plan cache is a measurable win.
    assert on_hit_rate > 0.5 and off_hit_rate == 0.0
    assert on_qps > off_qps
    # Batching amortizes HTTP round trips and shares the per-batch memo
    # (duplicates are computed once), so it must beat per-query QPS.
    assert batch_qps > on_qps
    # The factory caches systems session-wide; give the next bench the
    # default semantic cache back.
    system.semcache.configure(4096, None)
