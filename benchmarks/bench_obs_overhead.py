"""Extra experiment — observability overhead, tracing off vs on.

The tentpole constraint of the observability layer: the hooks compiled
into the estimator (null-tracer span sites in the path join, the
histogram providers and the service handler) must be effectively free
when tracing is off.  Two measurements:

* **in-process** — a tight estimation loop over the Table-2 workload via
  the legacy ``estimate()`` float path, via ``query()`` with tracing off
  (the redesigned API's default), and via ``query(trace=True)``.  The
  off/legacy gap is the per-call cost of the structured-result API plus
  every dormant span site; the on/off gap is what a traced request pays.
* **service** — the throughput drive of ``bench_service_throughput``
  with ``trace_sample_rate=0`` vs ``1.0`` (every request traced,
  slow-query log fed, result objects serialized).

The trace-off overhead budget is 2%; timing jitter on shared CI boxes
can exceed that on its own, so the hard gate is a looser sanity bound
and the measured percentages are recorded in the report table for the
regression check to eyeball.
"""

from __future__ import annotations

import threading
import time

from repro.core.options import EstimateOptions
from repro.harness.tables import format_table, record_result
from repro.service import (
    EstimationService,
    PlanCache,
    EndpointClient,
    ServiceServer,
    SynopsisRegistry,
)

#: Options objects reused across the timed loops (allocation-free).
DETAIL = EstimateOptions(detail=True)
TRACED = EstimateOptions(trace=True)

#: Budget for trace-off overhead (documented target; the hard assert
#: below allows timing jitter on top).
OVERHEAD_BUDGET = 0.02
#: Hard gate: trace-off must never cost more than this, jitter included.
OVERHEAD_HARD_LIMIT = 0.15

MAX_QUERIES = 60
REPEATS = 9
CLIENT_THREADS = 4
PASSES_PER_THREAD = 2


def _best_loop_s(actions, repeats=None):
    """Best-of-N loop time for each action, samples interleaved.

    Round-robin interleaving cancels clock-speed drift between the
    sweeps being compared (back-to-back blocks of a few milliseconds
    otherwise swing by more than the overhead being measured); the
    minimum is the standard low-noise statistic for micro-loops.
    """
    best = [float("inf")] * len(actions)
    for _ in range(REPEATS if repeats is None else repeats):
        for index, action in enumerate(actions):
            start = time.perf_counter()
            action()
            elapsed = time.perf_counter() - start
            if elapsed < best[index]:
                best[index] = elapsed
    return best


def _drive_service(system, texts, trace_sample_rate):
    registry = SynopsisRegistry()
    registry.register("SSPlays", system)
    service = EstimationService(
        registry,
        plan_cache=PlanCache(1024),
        trace_sample_rate=trace_sample_rate,
    )
    errors = []

    def worker(offset):
        client = EndpointClient(port=server.port)
        rotated = texts[offset:] + texts[:offset]
        for _ in range(PASSES_PER_THREAD):
            for text in rotated:
                try:
                    client.estimate("SSPlays", text)
                except Exception as error:  # pragma: no cover - diagnostics
                    errors.append((text, error))
                    return

    with ServiceServer(service, port=0) as server:
        start = time.perf_counter()
        pool = [
            threading.Thread(target=worker, args=(i * 5,))
            for i in range(CLIENT_THREADS)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        elapsed = time.perf_counter() - start
        assert not errors, errors[:3]
        traced = service.metrics.counter("traced_requests_total")
        observed = service.slow_log.observed
    qps = CLIENT_THREADS * PASSES_PER_THREAD * len(texts) / elapsed
    return qps, traced, observed


def test_obs_overhead(ctx, benchmark):
    system = ctx.factory("SSPlays").system(0, 0)
    workload = ctx.workload("SSPlays")
    items = (workload.simple + workload.branch + workload.order_branch)[:MAX_QUERIES]
    texts = [item.text for item in items]

    def sweep_estimate():
        for text in texts:
            system.estimate(text)

    def sweep_query_off():
        for text in texts:
            system.estimate(text, options=DETAIL)

    def sweep_query_on():
        for text in texts:
            system.estimate(text, options=TRACED)

    benchmark.pedantic(sweep_query_off, rounds=1, iterations=1)

    legacy_s, off_s, on_s = _best_loop_s(
        [sweep_estimate, sweep_query_off, sweep_query_on]
    )
    off_overhead = off_s / legacy_s - 1.0
    on_overhead = on_s / legacy_s - 1.0

    off_qps, off_traced, _ = _drive_service(system, texts, 0.0)
    on_qps, on_traced, on_observed = _drive_service(system, texts, 1.0)
    requests = CLIENT_THREADS * PASSES_PER_THREAD * len(texts)
    service_overhead = off_qps / max(on_qps, 1e-9) - 1.0

    rows = [
        ["estimate() legacy", "%.1f" % (1e3 * legacy_s), "-", "-"],
        ["query() trace off", "%.1f" % (1e3 * off_s),
         "%+.1f%%" % (100 * off_overhead), "%.0f%%" % (100 * OVERHEAD_BUDGET)],
        ["query() trace on", "%.1f" % (1e3 * on_s),
         "%+.1f%%" % (100 * on_overhead), "-"],
        ["service sample=0", "%.0f qps" % off_qps, "-", "-"],
        ["service sample=1", "%.0f qps" % on_qps,
         "%+.1f%% slower" % (100 * service_overhead), "-"],
    ]
    record_result(
        "obs_overhead",
        format_table(
            ["Path", "best sweep (ms) / QPS", "overhead", "budget"],
            rows,
            title="Extra: observability overhead (%d queries, best of %d)"
            % (len(texts), REPEATS),
        ),
    )

    # Tracing off: every span site dormant, nothing sampled, nothing logged
    # beyond the slowlog ring append.
    assert off_traced == 0
    # Tracing on: every request was traced and fed the slow-query log.
    assert on_traced == requests
    assert on_observed >= requests
    # The hard gate (budget + jitter allowance); the 2% budget itself is
    # tracked via the recorded table.
    assert off_overhead <= OVERHEAD_HARD_LIMIT, (
        "trace-off overhead %.1f%% exceeds the hard limit" % (100 * off_overhead)
    )
    # A traced request must still be in the same league (it re-executes
    # the estimate and serializes the span tree).
    assert on_qps > 0 and off_qps > 0
