"""Extra experiment — multi-core serving: worker-pool scaling sweep.

The shm subsystem's claim: N pre-forked ``SO_REUSEPORT`` workers
mmap-ing one staged kernelpack serve ~N× the single-worker QPS, because
nothing is shared downstream of ``accept()`` — no GIL, no lock, no IPC
on the data path, and no per-worker kernel compilation (packs decode,
never rebuild).

Load is generated from separate **processes** (one keep-alive client
each): threaded clients would serialize on the load generator's own GIL
and mask the server-side scaling this bench exists to measure.  Each
point of the sweep reports pool-wide QPS and the true merged-histogram
p50/p99 from the shared-memory slabs.

The ≥3x-at-4-workers acceptance bar only applies on a ≥4-core box —
the pool cannot beat the machine — but the reload-without-recompile
claim (zero pack misses after a hot reload) is asserted everywhere.
"""

from __future__ import annotations

import multiprocessing
import os
import time

from repro import persist
from repro.harness.tables import format_table, record_result
from repro.service import ServerConfig, EndpointClient
from repro.shm import WorkerPool, pool_supported

import pytest

pytestmark = pytest.mark.skipif(
    not pool_supported(), reason="needs os.fork and SO_REUSEPORT"
)

WORKER_POINTS = (1, 2, 4)
CLIENT_PROCESSES = 4
PASSES = 4
MAX_QUERIES = 48


def _drive_one(port, texts, passes, out):
    """One load-generator process: a keep-alive client sweeping batches."""
    served = 0
    with EndpointClient(port=port) as client:
        for _ in range(passes):
            values = client.estimate_batch("SSPlays", texts)
            served += len(values)
        out.put((served, client.connects_total))


def _drive(port, texts, processes=CLIENT_PROCESSES, passes=PASSES):
    """Fan the sweep across processes; returns (qps, served, connects)."""
    out = multiprocessing.Queue()
    drivers = [
        multiprocessing.Process(
            target=_drive_one, args=(port, texts, passes, out)
        )
        for _ in range(processes)
    ]
    start = time.perf_counter()
    for driver in drivers:
        driver.start()
    results = [out.get(timeout=300) for _ in drivers]
    for driver in drivers:
        driver.join(timeout=60)
    elapsed = time.perf_counter() - start
    served = sum(count for count, _ in results)
    connects = sum(connects for _, connects in results)
    return served / elapsed, served, connects


def _converge(pool, timeout_s=30.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline and not pool.reload_converged():
        time.sleep(0.05)
    assert pool.reload_converged(), "workers never remapped"


def test_service_worker_scaling(ctx, benchmark, tmp_path_factory,
                                points=WORKER_POINTS):
    system = ctx.factory("SSPlays").system(0, 0)
    workload = ctx.workload("SSPlays")
    items = (workload.simple + workload.branch)[:MAX_QUERIES]
    texts = [item.text for item in items]
    direct = [system.estimate(item.query) for item in items]

    snapshot_dir = tmp_path_factory.mktemp("worker-bench")
    persist.save(system, str(snapshot_dir / "SSPlays.json"))

    rows = []
    qps_by_workers = {}
    for workers in points:
        config = ServerConfig(port=0, workers=workers, reload_interval_s=5.0)
        with WorkerPool(
            str(snapshot_dir), workers=workers, config=config,
            reload_poll_s=0.05,
        ) as pool:
            # Correctness first: the pool serves the direct numbers.
            with EndpointClient(port=pool.port) as probe:
                assert probe.estimate_batch("SSPlays", texts) == direct

            if workers == points[0]:
                benchmark.pedantic(
                    lambda: _drive(pool.port, texts, processes=1, passes=1),
                    rounds=1, iterations=1,
                )
            qps, served, connects = _drive(pool.port, texts)
            aggregate = pool.arena.aggregate()
            latency = aggregate["totals"]["latency_ms"]

            # Hot reload: stage fresh packs, workers remap zero-copy —
            # no worker recompiles (pack misses stay zero) and serving
            # never pauses.
            pool.reload(force=True)
            _converge(pool)
            with EndpointClient(port=pool.port) as probe:
                assert probe.estimate("SSPlays", texts[0]) == direct[0]
            after = pool.arena.aggregate()["totals"]
            assert after["pack_misses"] == 0, "a worker recompiled"
            assert after["remaps"] >= workers

            qps_by_workers[workers] = qps
            rows.append([
                str(workers), str(served), "%.0f" % qps,
                "%.2f" % latency["p50_ms"], "%.2f" % latency["p99_ms"],
                str(connects),
            ])

    base = qps_by_workers[points[0]]
    for workers in points[1:]:
        rows.append([
            "%d vs %d" % (workers, points[0]), "-",
            "%.2fx" % (qps_by_workers[workers] / max(base, 1e-9)), "-", "-", "-",
        ])
    record_result(
        "service_workers",
        format_table(
            ["Workers", "#served", "QPS", "p50 (ms)", "p99 (ms)", "connects"],
            rows,
            title="Extra: worker-pool scaling, %d client processes "
            "(%d-core host, SSPlays workload)"
            % (CLIENT_PROCESSES, os.cpu_count() or 1),
        ),
    )

    # Keep-alive proof: each client process opened exactly one TCP
    # connection per sweep (connects == processes).
    # The scaling bar needs the cores to exist.
    if (os.cpu_count() or 1) >= 4 and 4 in qps_by_workers:
        assert qps_by_workers[4] >= 3.0 * qps_by_workers[1], (
            "4 workers must deliver >=3x the single-worker QPS on a "
            ">=4-core host: %r" % qps_by_workers
        )
