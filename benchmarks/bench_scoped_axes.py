"""Extra experiment — scoped following/preceding axes (Example 5.3).

The paper demonstrates the ``foll``/``pre`` rewrite on one example and
does not evaluate it; this bench does, over a generated scoped-axis
workload (sibling-order queries with the ordered branch collapsed onto
its deepest node, which the rewrite must reconstruct from path ids).

Expected shape: the rewrite is *sound* (no positive query estimates to
zero — the chains recovered from path ids always include the real one)
and accurate in the median; the mean carries the over-estimation of
summing over alternative chains.
"""

from benchmarks.conftest import DATASETS
from repro.harness.metrics import ErrorSummary, relative_error
from repro.harness.tables import format_table, record_result
from repro.workload import WorkloadGenerator


def test_scoped_axis_rewrite_accuracy(ctx, benchmark):
    document = ctx.document("SSPlays")
    generator = WorkloadGenerator(document, seed=29)
    items = generator.scoped_order_queries(150)
    system = ctx.factory("SSPlays").system(0, 0)
    benchmark.pedantic(
        lambda: [system.estimate(i.query) for i in items[:40]], rounds=1, iterations=1
    )

    rows = []
    for name in DATASETS:
        generator = WorkloadGenerator(ctx.document(name), seed=29)
        items = generator.scoped_order_queries(300)
        system = ctx.factory(name).system(0, 0)
        estimates = [system.estimate(item.query) for item in items]
        errors = [
            relative_error(estimate, item.actual)
            for estimate, item in zip(estimates, items)
        ]
        summary = ErrorSummary.from_errors(errors)
        zero_on_positive = sum(1 for e in estimates if e == 0)
        rows.append(
            [
                name,
                len(items),
                "%.4f" % summary.mean,
                "%.4f" % summary.median,
                "%.4f" % summary.p90,
                zero_on_positive,
            ]
        )
        # Soundness: a positive scoped query never estimates to zero.
        assert zero_on_positive == 0
        # Median accuracy stays tight.
        assert summary.median < 0.2
    record_result(
        "scoped_axes",
        format_table(
            ["Dataset", "#queries", "mean err", "median err", "p90 err", "zero-estimates"],
            rows,
            title="Extra: scoped foll/pre rewrite accuracy (Example 5.3 at scale)",
        ),
    )
