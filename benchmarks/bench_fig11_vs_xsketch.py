"""Figure 11 — p-histogram approach vs XSketch at matched memory.

For each p-histogram variance setting, our total memory (encoding table +
binary tree + p-histogram) defines the byte budget handed to XSketch; both
estimators then run the no-order workload.

Paper shapes to reproduce:

* with ample memory our method clearly beats XSketch (our maximum memory
  point has (near-)zero simple-query error);
* XSketch is competitive at the low-memory end (its label-split core
  already captures coarse structure).
"""

from benchmarks.conftest import DATASETS
from repro.baselines import XSketch
from repro.harness.metrics import relative_error
from repro.harness.tables import format_table, record_result

VARIANCES = [14, 6, 2, 0]


def mean_error(estimate, items):
    errors = [relative_error(estimate(i.query), i.actual) for i in items]
    return sum(errors) / len(errors) if errors else 0.0


def test_fig11_vs_xsketch(ctx, benchmark):
    document = ctx.document("SSPlays")
    benchmark.pedantic(
        lambda: XSketch.build(document, budget_bytes=2048), rounds=1, iterations=1
    )

    rows = []
    ours_at_max = {}
    sketch_at_max = {}
    for name in DATASETS:
        factory = ctx.factory(name)
        items = ctx.workload(name).no_order()
        for variance in VARIANCES:
            system = factory.system(p_variance=variance)
            sizes = system.summary_sizes()
            budget = int(
                sizes["encoding_table"] + sizes["binary_tree"] + sizes["p_histogram"]
            )
            sketch = XSketch.build(ctx.document(name), budget_bytes=budget)
            our_error = mean_error(system.estimate, items)
            sketch_error = mean_error(sketch.estimate, items)
            if variance == 0:
                ours_at_max[name] = our_error
                sketch_at_max[name] = sketch_error
            rows.append(
                [
                    name,
                    variance,
                    "%.2f KB" % (budget / 1024.0),
                    "%.4f" % our_error,
                    "%.4f" % sketch_error,
                ]
            )
    record_result(
        "fig11_vs_xsketch",
        format_table(
            ["Dataset", "p-variance", "Total Memory", "p-histo err", "xsketch err"],
            rows,
            title="Figure 11: P-Histogram vs XSketch (error at matched memory)",
        ),
    )
    # With the full-memory p-histogram we beat XSketch on every dataset.
    for name in DATASETS:
        assert ours_at_max[name] < sketch_at_max[name]
