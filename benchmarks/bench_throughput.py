"""Extra experiment — estimation latency vs exact evaluation.

The reason estimators exist: an optimizer cannot afford to *evaluate* a
query to learn its cardinality.  Two claims are measured:

1. on the regular datasets the estimator is several times faster than
   exact evaluation even at bench scale;
2. estimation latency is (near) document-size independent — it works on
   the synopsis — while evaluation cost grows linearly with the document,
   so the gap widens with scale (the paper's corpora are 10-100x larger).

XMark at bench scale is the adversarial case: ~1000 distinct path ids
make the join itself non-trivial while the document is still small enough
to evaluate quickly.  The scaling measurement runs on DBLP, whose path-id
inventory *saturates* (74 paths regardless of size): growing the corpus
leaves the synopsis — and the estimation latency — nearly unchanged while
evaluation cost grows with the document.  (XMark's recursion keeps
instantiating new path types as it grows, so its synopsis is not
scale-free; that caveat is the honest footnote to the crossover
argument.)
"""

import time

from repro.datasets import generate
from repro.harness import SystemFactory
from repro.harness.tables import format_table, record_result
from repro.workload import WorkloadGenerator
from repro.xpath import Evaluator


def _latencies(document, count=250, factory=None, workload=None):
    factory = factory or SystemFactory(document)
    system = factory.system(0, 0)
    if workload is None:
        generator = WorkloadGenerator(document, seed=17)
        workload = generator.full_workload(300, 300, 0).no_order()
    workload = workload[:count]
    evaluator = Evaluator(document)
    for item in workload:  # warm every per-document cache (steady state)
        system.estimate(item.query)

    start = time.perf_counter()
    for item in workload:
        system.estimate(item.query)
    estimate_ms = (time.perf_counter() - start) / len(workload) * 1000

    start = time.perf_counter()
    for item in workload:
        evaluator.selectivity(item.query)
    evaluate_ms = (time.perf_counter() - start) / len(workload) * 1000
    return estimate_ms, evaluate_ms, len(workload)


def test_estimation_throughput(ctx, benchmark):
    system = ctx.factory("SSPlays").system(0, 0)
    items = ctx.workload("SSPlays").no_order()[:200]
    benchmark.pedantic(
        lambda: [system.estimate(i.query) for i in items], rounds=1, iterations=1
    )

    rows = []
    speedups = {}
    for name in ("SSPlays", "DBLP", "XMark"):
        estimate_ms, evaluate_ms, count = _latencies(
            ctx.document(name),
            factory=ctx.factory(name),
            workload=ctx.workload(name).no_order(),
        )
        speedups[name] = evaluate_ms / max(estimate_ms, 1e-9)
        rows.append(
            [name, count, "%.2f ms" % estimate_ms, "%.2f ms" % evaluate_ms,
             "%.1fx" % speedups[name]]
        )

    # Scaling: estimation is synopsis-bound, evaluation document-bound —
    # measured on DBLP, whose path-id inventory saturates with size.
    small = _latencies(generate("DBLP", scale=0.3))
    large = _latencies(generate("DBLP", scale=1.2))
    estimate_growth = large[0] / max(small[0], 1e-9)
    evaluate_growth = large[1] / max(small[1], 1e-9)
    rows.append(
        ["DBLP 0.3->1.2 scale", "-", "grows %.1fx" % estimate_growth,
         "grows %.1fx" % evaluate_growth, "-"]
    )
    record_result(
        "throughput",
        format_table(
            ["Dataset", "#queries", "estimate/query", "evaluate/query", "speedup"],
            rows,
            title="Extra: estimation latency vs exact evaluation",
        ),
    )
    # Regular datasets: the estimator wins outright even at bench scale.
    assert speedups["SSPlays"] > 2 and speedups["DBLP"] > 2
    # Evaluation cost must grow markedly faster with document size than
    # estimation cost (the crossover argument for XMark).
    assert evaluate_growth > estimate_growth * 1.3