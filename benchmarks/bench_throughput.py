"""Extra experiment — estimation latency vs exact evaluation.

The reason estimators exist: an optimizer cannot afford to *evaluate* a
query to learn its cardinality.  Two claims are measured:

1. on the regular datasets the estimator is several times faster than
   exact evaluation even at bench scale;
2. estimation latency is (near) document-size independent — it works on
   the synopsis — while evaluation cost grows linearly with the document,
   so the gap widens with scale (the paper's corpora are 10-100x larger).

XMark at bench scale is the adversarial case: ~1000 distinct path ids
make the join itself non-trivial while the document is still small enough
to evaluate quickly.  The scaling measurement runs on DBLP, whose path-id
inventory *saturates* (74 paths regardless of size): growing the corpus
leaves the synopsis — and the estimation latency — nearly unchanged while
evaluation cost grows with the document.  (XMark's recursion keeps
instantiating new path types as it grows, so its synopsis is not
scale-free; that caveat is the honest footnote to the crossover
argument.)
"""

import os
import time

from repro.datasets import generate
from repro.harness import SystemFactory
from repro.harness.tables import format_table, record_result
from repro.workload import WorkloadGenerator
from repro.xpath import Evaluator

#: Hard gate for the compiled-kernel join vs the legacy join on the
#: XMark workload.  The CI perf-smoke job runs at reduced scale where
#: the margin is thinner and overrides this to "no slower than legacy".
KERNEL_MIN_SPEEDUP = float(os.environ.get("REPRO_KERNEL_MIN_SPEEDUP", "2.0"))
KERNEL_REPEATS = 5


def _best_loop_s(actions, repeats):
    """Best-of-N loop time per action, samples interleaved round-robin
    (same low-noise harness as ``bench_obs_overhead``)."""
    best = [float("inf")] * len(actions)
    for _ in range(repeats):
        for index, action in enumerate(actions):
            start = time.perf_counter()
            action()
            elapsed = time.perf_counter() - start
            if elapsed < best[index]:
                best[index] = elapsed
    return best


def _kernel_vs_legacy(system, items, repeats=None):
    """Best-of sweep times (kernel path, legacy path) over ``items``.

    One system, toggled between sweeps: both arms share the parse cache,
    the clone caches and the provider, so the only difference is the
    join representation.
    """

    def sweep_kernel():
        system.kernel_enabled = True
        for item in items:
            system.estimate(item.query)

    def sweep_legacy():
        system.kernel_enabled = False
        try:
            for item in items:
                system.estimate(item.query)
        finally:
            system.kernel_enabled = True

    sweep_kernel()  # warm: compiles tag tables, pairs and query plans
    sweep_legacy()  # warm: fills the legacy support caches
    return _best_loop_s(
        [sweep_kernel, sweep_legacy], KERNEL_REPEATS if repeats is None else repeats
    )


def _latencies(document, count=250, factory=None, workload=None):
    factory = factory or SystemFactory(document)
    system = factory.system(0, 0)
    if workload is None:
        generator = WorkloadGenerator(document, seed=17)
        workload = generator.full_workload(300, 300, 0).no_order()
    workload = workload[:count]
    evaluator = Evaluator(document)
    for item in workload:  # warm every per-document cache (steady state)
        system.estimate(item.query)

    start = time.perf_counter()
    for item in workload:
        system.estimate(item.query)
    estimate_ms = (time.perf_counter() - start) / len(workload) * 1000

    start = time.perf_counter()
    for item in workload:
        evaluator.selectivity(item.query)
    evaluate_ms = (time.perf_counter() - start) / len(workload) * 1000
    return estimate_ms, evaluate_ms, len(workload)


def test_estimation_throughput(ctx, benchmark):
    system = ctx.factory("SSPlays").system(0, 0)
    items = ctx.workload("SSPlays").no_order()[:200]
    benchmark.pedantic(
        lambda: [system.estimate(i.query) for i in items], rounds=1, iterations=1
    )

    rows = []
    speedups = {}
    for name in ("SSPlays", "DBLP", "XMark"):
        estimate_ms, evaluate_ms, count = _latencies(
            ctx.document(name),
            factory=ctx.factory(name),
            workload=ctx.workload(name).no_order(),
        )
        speedups[name] = evaluate_ms / max(estimate_ms, 1e-9)
        rows.append(
            [name, count, "%.2f ms" % estimate_ms, "%.2f ms" % evaluate_ms,
             "%.1fx" % speedups[name]]
        )

    # Compiled kernel vs legacy join on the adversarial dataset: XMark's
    # ~1000 path ids are exactly what the containment bitmatrices and
    # the shared support memo are for.
    xmark_system = ctx.factory("XMark").system(0, 0)
    xmark_items = ctx.workload("XMark").no_order()[:250]
    kernel_s, legacy_s = _kernel_vs_legacy(xmark_system, xmark_items)
    kernel_speedup = legacy_s / max(kernel_s, 1e-9)
    rows.append(
        ["XMark join: kernel", len(xmark_items),
         "%.3f ms" % (1e3 * kernel_s / len(xmark_items)), "-",
         "%.1fx vs legacy" % kernel_speedup]
    )
    rows.append(
        ["XMark join: legacy", len(xmark_items),
         "%.3f ms" % (1e3 * legacy_s / len(xmark_items)), "-", "-"]
    )

    # Scaling: estimation is synopsis-bound, evaluation document-bound —
    # measured on DBLP, whose path-id inventory saturates with size.
    small = _latencies(generate("DBLP", scale=0.3))
    large = _latencies(generate("DBLP", scale=1.2))
    estimate_growth = large[0] / max(small[0], 1e-9)
    evaluate_growth = large[1] / max(small[1], 1e-9)
    rows.append(
        ["DBLP 0.3->1.2 scale", "-", "grows %.1fx" % estimate_growth,
         "grows %.1fx" % evaluate_growth, "-"]
    )
    record_result(
        "throughput",
        format_table(
            ["Dataset", "#queries", "estimate/query", "evaluate/query", "speedup"],
            rows,
            title="Extra: estimation latency vs exact evaluation",
        ),
    )
    # Regular datasets: the estimator wins outright even at bench scale.
    assert speedups["SSPlays"] > 2 and speedups["DBLP"] > 2
    # The compiled kernel flips the adversarial dataset: estimation now
    # beats exact evaluation on XMark too.
    assert speedups["XMark"] > 1
    # And the kernel join itself must clear its margin over the legacy
    # join (CI smoke relaxes the factor via REPRO_KERNEL_MIN_SPEEDUP).
    assert kernel_speedup >= KERNEL_MIN_SPEEDUP, (
        "kernel join only %.2fx faster than legacy (need %.1fx)"
        % (kernel_speedup, KERNEL_MIN_SPEEDUP)
    )
    # Evaluation cost must grow markedly faster with document size than
    # estimation cost (the crossover argument for XMark).
    assert evaluate_growth > estimate_growth * 1.3