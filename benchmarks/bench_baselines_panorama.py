"""Extra experiment — all estimators side by side on the no-order workload.

Not a table of the paper, but the natural completion of its related-work
section: the reproduced system against XSketch [12], an order-2 Markov
path model [5, 11], a DataGuide path tree [5, 7] and position histograms
[16], with each summary's memory footprint reported alongside its error.

Expected ordering (per the paper's related-work arguments):

* this system (v=0) is the most accurate — exact on simple queries,
  Eq.-2-corrected on branches;
* the path tree matches it on simple queries but over-estimates branches;
* Markov and XSketch sit in between, depending on schema regularity;
* position histograms trail on child-heavy workloads (they cannot
  distinguish parent-child from ancestor-descendant).
"""

from benchmarks.conftest import DATASETS
from repro.baselines import MarkovPathModel, PathTree, PositionHistogram, XSketch
from repro.harness.metrics import relative_error
from repro.harness.tables import format_table, record_result


def mean_error(estimate, items):
    errors = [relative_error(estimate(i.query), i.actual) for i in items]
    return sum(errors) / len(errors) if errors else 0.0


def test_baselines_panorama(ctx, benchmark):
    document = ctx.document("SSPlays")
    benchmark.pedantic(
        lambda: PositionHistogram(document, grid=16), rounds=1, iterations=1
    )

    rows = []
    per_dataset = {}
    for name in DATASETS:
        document = ctx.document(name)
        items = ctx.workload(name).no_order()
        system = ctx.factory(name).system(0, 0)
        sizes = system.summary_sizes()
        ours_bytes = sizes["encoding_table"] + sizes["binary_tree"] + sizes["p_histogram"]

        estimators = [
            ("this system (v=0)", system.estimate, ours_bytes),
        ]
        sketch = XSketch.build(document, budget_bytes=int(ours_bytes))
        estimators.append(("xsketch", sketch.estimate, sketch.size_bytes()))
        markov = MarkovPathModel.build(document, order=2)
        estimators.append(("markov-2", markov.estimate, markov.size_bytes()))
        tree = PathTree.build(document)
        estimators.append(("path tree", tree.estimate, tree.size_bytes()))
        position = PositionHistogram(document, grid=16)
        estimators.append(("position histo", position.estimate, position.size_bytes()))

        errors = {}
        for label, estimate, size in estimators:
            err = mean_error(estimate, items)
            errors[label] = err
            rows.append([name, label, "%.2f KB" % (size / 1024.0), "%.4f" % err])
        per_dataset[name] = errors

    record_result(
        "baselines_panorama",
        format_table(
            ["Dataset", "Estimator", "Memory", "Mean rel. error"],
            rows,
            title="Extra: all estimators on the no-order workload",
        ),
    )
    for name in DATASETS:
        errors = per_dataset[name]
        best = min(errors.values())
        assert errors["this system (v=0)"] <= best + 1e-9
