"""Ablation D — depth-refined statistics vs the paper's (tag, pid) tables.

The residual error on recursive schemas comes from (tag, pid) groups that
mix elements at different depths (DESIGN.md §5): the group's frequency
cannot be split once collected.  Keying frequencies by (pid, *depth*)
removes the ambiguity; the join already propagates per-depth survival, so
no other machinery changes.

Expected shape: on XMark the refinement cuts the simple-query error
substantially at a tiny table-size cost; on the depth-unique schemas
(SSPlays, DBLP) the two statistics are identical.
"""

from benchmarks.conftest import DATASETS
from repro.core.noorder import estimate_no_order
from repro.core.providers import ExactPathStats
from repro.harness.metrics import relative_error
from repro.harness.tables import format_table, record_result
from repro.stats.depth_refined import DepthRefinedPathStats


def mean_error(provider, table, items):
    errors = [
        relative_error(estimate_no_order(i.query, provider, table), i.actual)
        for i in items
    ]
    return sum(errors) / len(errors) if errors else 0.0


def test_ablation_depth_refined_statistics(ctx, benchmark):
    labeled = ctx.factory("XMark").labeled
    benchmark.pedantic(
        lambda: DepthRefinedPathStats.collect(labeled), rounds=1, iterations=1
    )

    rows = []
    results = {}
    for name in DATASETS:
        factory = ctx.factory(name)
        labeled = factory.labeled
        table = labeled.encoding_table
        plain = ExactPathStats(factory.pathid_table)
        refined = DepthRefinedPathStats.collect(labeled)
        workload = ctx.workload(name)
        simple_plain = mean_error(plain, table, workload.simple)
        simple_refined = mean_error(refined, table, workload.simple)
        branch_plain = mean_error(plain, table, workload.branch)
        branch_refined = mean_error(refined, table, workload.branch)
        results[name] = (simple_plain, simple_refined)
        rows.append(
            [
                name,
                "%.4f" % simple_plain,
                "%.4f" % simple_refined,
                "%.4f" % branch_plain,
                "%.4f" % branch_refined,
                refined.extra_entries(),
            ]
        )
    record_result(
        "ablation_depth_refined",
        format_table(
            ["Dataset", "simple (pid)", "simple (pid,depth)",
             "branch (pid)", "branch (pid,depth)", "extra entries"],
            rows,
            title="Ablation D: depth-refined statistics vs the paper's tables",
        ),
    )
    # Identical where schemas are depth-unique; strictly better on XMark.
    for name in ("SSPlays", "DBLP"):
        plain_err, refined_err = results[name]
        assert refined_err <= plain_err + 1e-9
    xmark_plain, xmark_refined = results["XMark"]
    assert xmark_refined < xmark_plain * 0.8
