"""Table 2 — query workload sizes after dedup + negative elimination.

Paper (4000 raw candidates per class):

    Dataset  Simple  Branch  Total  With Order
    SSPlays  188     2328    2516   1168
    DBLP     202     1013    1215   646
    XMark    1358    2686    4044   1654

Shapes to reproduce: far fewer *distinct* simple queries on the path-poor
datasets (SSPlays/DBLP) than raw candidates; XMark yields the most simple
queries (most distinct paths); every class non-empty.
"""

from benchmarks.conftest import BENCH_RAW, DATASETS
from repro.harness.tables import format_table, record_result
from repro.workload import WorkloadGenerator


def test_table2_workload_sizes(ctx, benchmark):
    # Timing kernel: generation on the smallest dataset at reduced count.
    document = ctx.document("SSPlays")

    def kernel():
        return WorkloadGenerator(document, seed=5).full_workload(50, 50, 50)

    benchmark.pedantic(kernel, rounds=1, iterations=1)

    rows = []
    workloads = {}
    for name in DATASETS:
        workload = ctx.workload(name)
        workloads[name] = workload
        row = workload.table2_row()
        rows.append(
            [name, row["simple"], row["branch"], row["total"], row["with_order"]]
        )
    record_result(
        "table2_workload",
        format_table(
            ["Dataset", "Simple", "Branch", "Total", "With Order"],
            rows,
            title="Table 2: Query Workload (raw=%d per class)" % BENCH_RAW,
        ),
    )
    for name in DATASETS:
        row = workloads[name].table2_row()
        assert row["simple"] > 0 and row["branch"] > 0 and row["with_order"] > 0
    # Path-rich XMark admits the most distinct simple queries.
    assert workloads["XMark"].table2_row()["simple"] >= workloads["SSPlays"].table2_row()["simple"]
