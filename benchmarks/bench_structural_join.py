"""Extra experiment — path-id pruning inside structural joins (ref. [8]).

The path encoding scheme was introduced to accelerate structural joins:
pruning candidate lists to surviving (tag, path id) groups keeps
irrelevant subtrees out of the merges.  This bench evaluates the no-order
workload through the structural-join processor with and without path-id
prefiltering and reports join-input sizes and wall time.

Expected shape: pruning removes a substantial fraction of join inputs on
branch-heavy workloads, results stay identical, and end-to-end time does
not regress (the path join itself is synopsis-cheap).

A third lane runs the same workload through the planned adaptive
executor (``system.execute``, pruning on): it must agree exactly with
the raw processor; its per-query planning and drift-instrumentation
overhead is reported in the same time column.
"""

import time

from benchmarks.conftest import DATASETS
from repro.harness.tables import format_table, record_result
from repro.queryproc import StructuralJoinProcessor


def test_structural_join_pruning(ctx, benchmark):
    document = ctx.document("SSPlays")
    processor = StructuralJoinProcessor(document, labeled=ctx.factory("SSPlays").labeled)
    items = ctx.workload("SSPlays").branch[:60]
    benchmark.pedantic(
        lambda: [processor.count(i.query) for i in items], rounds=1, iterations=1
    )

    rows = []
    reductions = {}
    for name in DATASETS:
        processor = StructuralJoinProcessor(
            ctx.document(name), labeled=ctx.factory(name).labeled
        )
        items = ctx.workload(name).no_order()

        pruned_inputs = 0
        unpruned_inputs = 0
        mismatches = 0
        start = time.perf_counter()
        for item in items:
            count = processor.count(item.query, use_path_ids=True)
            pruned_inputs += processor.last_candidate_count
            if count != item.actual:
                mismatches += 1
        pruned_seconds = time.perf_counter() - start

        start = time.perf_counter()
        for item in items:
            count = processor.count(item.query, use_path_ids=False)
            unpruned_inputs += processor.last_candidate_count
            if count != item.actual:
                mismatches += 1
        unpruned_seconds = time.perf_counter() - start

        system = ctx.factory(name).system(0, 0)
        start = time.perf_counter()
        for item in items:
            if system.execute(item.text).match_count != item.actual:
                mismatches += 1
        planned_seconds = time.perf_counter() - start

        reduction = 1.0 - pruned_inputs / max(unpruned_inputs, 1)
        reductions[name] = reduction
        rows.append(
            [
                name,
                len(items),
                unpruned_inputs,
                pruned_inputs,
                "%.1f%%" % (reduction * 100),
                "%.2fs / %.2fs / %.2fs" % (
                    unpruned_seconds, pruned_seconds, planned_seconds
                ),
                mismatches,
            ]
        )
    record_result(
        "structural_join_pruning",
        format_table(
            ["Dataset", "#queries", "join inputs", "with pid pruning",
             "input reduction", "time (plain / pruned / planned)", "mismatches"],
            rows,
            title="Extra: path-id pruning in structural joins (ref. [8])",
        ),
    )
    # Exactness everywhere, meaningful pruning somewhere.
    assert all(row[-1] == 0 for row in rows)
    assert max(reductions.values()) > 0.2
